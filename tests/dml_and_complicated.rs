//! Integration tests for complicated-query generation (paper §7.6):
//! nested, insert, update and delete statements, constrained and applied.

use learned_sqlgen::core::{Constraint, GenConfig, LearnedSqlGen};
use learned_sqlgen::engine::{Executor, Statement, StatementKind};
use learned_sqlgen::fsm::FsmConfig;
use learned_sqlgen::storage::gen::Benchmark;

#[test]
fn generates_nested_queries_on_demand() {
    let db = Benchmark::TpcH.build(0.15, 404);
    let cfg = GenConfig::fast().with_seed(9).with_fsm(FsmConfig {
        max_subquery_depth: 1,
        ..FsmConfig::default()
    });
    let mut g = LearnedSqlGen::new(&db, Constraint::cardinality_range(1.0, 1e6), cfg);
    g.train(100);
    let qs = g.generate(200);
    let nested = qs
        .iter()
        .filter(|q| q.statement.as_select().is_some_and(|s| s.has_subquery()))
        .count();
    assert!(nested > 0, "no nested queries among 200 generations");
}

#[test]
fn insert_only_fsm_generates_applicable_inserts() {
    let db = Benchmark::XueTang.build(0.15, 405);
    let cfg = GenConfig::fast()
        .with_seed(10)
        .with_fsm(FsmConfig::default().with_statements(&[StatementKind::Insert]));
    let mut g = LearnedSqlGen::new(&db, Constraint::cost_range(0.001, 10.0), cfg);
    g.train(50);
    let qs = g.generate(20);
    let mut scratch = db.clone();
    let before = scratch.total_rows();
    for q in &qs {
        assert_eq!(q.statement.kind(), StatementKind::Insert, "{}", q.sql);
        let n = Executor::apply(&q.statement, &mut scratch).unwrap();
        assert_eq!(n, 1);
    }
    assert_eq!(scratch.total_rows(), before + qs.len());
}

#[test]
fn delete_constrained_by_cost_touches_expected_rows() {
    let db = Benchmark::TpcH.build(0.15, 406);
    let cfg = GenConfig::fast()
        .with_seed(11)
        .with_fsm(FsmConfig::default().with_statements(&[StatementKind::Delete]));
    let mut g = LearnedSqlGen::new(&db, Constraint::cost_range(0.1, 500.0), cfg);
    g.train(80);
    let qs = g.generate(20);
    for q in &qs {
        assert_eq!(q.statement.kind(), StatementKind::Delete);
        // Dry-run count matches a fresh apply on a copy.
        let ex = Executor::new(&db);
        let dry = ex.cardinality(&q.statement).unwrap();
        let mut copy = db.clone();
        let wet = Executor::apply(&q.statement, &mut copy).unwrap();
        assert_eq!(dry, wet, "{}", q.sql);
    }
}

#[test]
fn update_statements_roundtrip_through_sql_text() {
    let db = Benchmark::XueTang.build(0.15, 407);
    let cfg = GenConfig::fast()
        .with_seed(12)
        .with_fsm(FsmConfig::default().with_statements(&[StatementKind::Update]));
    let mut g = LearnedSqlGen::new(&db, Constraint::cost_range(0.01, 1_000.0), cfg);
    g.train(50);
    for q in g.generate(15) {
        assert_eq!(q.statement.kind(), StatementKind::Update);
        let reparsed = learned_sqlgen::engine::parse(&q.sql).unwrap();
        assert_eq!(learned_sqlgen::engine::render(&reparsed), q.sql);
        // Updates actually mutate matched rows on a copy.
        let mut copy = db.clone();
        Executor::apply(&q.statement, &mut copy).unwrap();
    }
}

#[test]
fn mixed_workload_is_replayable_in_order() {
    let db = Benchmark::TpcH.build(0.15, 408);
    let cfg = GenConfig::fast().with_seed(13).with_fsm(FsmConfig::full());
    let mut g = LearnedSqlGen::new(&db, Constraint::cost_range(0.01, 5_000.0), cfg);
    g.train(60);
    let workload = g.generate(40);
    let kinds: std::collections::HashSet<StatementKind> =
        workload.iter().map(|q| q.statement.kind()).collect();
    assert!(kinds.len() >= 2, "workload not mixed: {kinds:?}");

    let mut scratch = db.clone();
    for q in &workload {
        // DML earlier in the stream may delete rows later statements would
        // have touched — the stream must still apply cleanly.
        if let Err(e) = Executor::apply(&q.statement, &mut scratch) {
            panic!("replay failed: {e}\n{}", q.sql);
        }
    }
}

#[test]
fn subquery_semantics_match_engine() {
    // Hand-check one nested pattern the FSM emits: IN-subquery filtering.
    let db = Benchmark::TpcH.build(0.15, 409);
    let ex = Executor::new(&db);
    let all = ex
        .cardinality(
            &learned_sqlgen::engine::parse("SELECT orders.o_orderkey FROM orders").unwrap(),
        )
        .unwrap();
    let filtered = ex
        .cardinality(
            &learned_sqlgen::engine::parse(
                "SELECT orders.o_orderkey FROM orders WHERE orders.o_custkey IN \
                 (SELECT customer.c_custkey FROM customer WHERE customer.c_mktsegment = 'BUILDING')",
            )
            .unwrap(),
        )
        .unwrap();
    assert!(filtered < all);
    assert!(filtered > 0);
}

#[test]
fn statement_kind_distribution_is_controllable() {
    // Figure 10(e)'s premise: the FSM config controls which kinds appear.
    let db = Benchmark::TpcH.build(0.1, 410);
    for kind in StatementKind::ALL {
        let cfg = GenConfig::fast()
            .with_seed(14)
            .with_fsm(FsmConfig::default().with_statements(&[kind]));
        let mut g = LearnedSqlGen::new(&db, Constraint::cost_range(0.001, 1e6), cfg);
        g.train(20);
        for q in g.generate(5) {
            assert_eq!(q.statement.kind(), kind);
        }
    }
}

#[test]
fn nested_queries_execute_identically_to_reparse() {
    let db = Benchmark::TpcH.build(0.15, 411);
    let cfg = GenConfig::fast().with_seed(15).with_fsm(FsmConfig {
        max_subquery_depth: 1,
        ..FsmConfig::default()
    });
    let mut g = LearnedSqlGen::new(&db, Constraint::cardinality_range(1.0, 1e6), cfg);
    g.train(60);
    let ex = Executor::new(&db);
    for q in g.generate(40) {
        if let Statement::Select(s) = &q.statement {
            if s.has_subquery() {
                let direct = ex.cardinality(&q.statement).unwrap();
                let reparsed = learned_sqlgen::engine::parse(&q.sql).unwrap();
                let via_text = ex.cardinality(&reparsed).unwrap();
                assert_eq!(direct, via_text, "{}", q.sql);
            }
        }
    }
}
