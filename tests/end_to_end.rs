//! End-to-end integration: data generation → action space → RL training →
//! query generation → independent validation → real execution.

use learned_sqlgen::core::{Constraint, GenConfig, LearnedSqlGen};
use learned_sqlgen::engine::{parse, render, validate, ExecOptions, Executor};
use learned_sqlgen::storage::gen::Benchmark;

#[test]
fn full_pipeline_on_tpch() {
    let db = Benchmark::TpcH.build(0.2, 99);
    let constraint = Constraint::cardinality_range(10.0, 5_000.0);
    let mut g = LearnedSqlGen::new(&db, constraint, GenConfig::fast().with_seed(1));
    g.train(300);

    let queries = g.generate(30);
    assert_eq!(queries.len(), 30);
    let ex = Executor::with_options(
        &db,
        ExecOptions {
            max_rows: 3_000_000,
            deadline: None,
        },
    );
    let mut satisfied = 0;
    for q in &queries {
        // Every generated statement passes independent semantic validation.
        validate(&db, &q.statement).unwrap_or_else(|e| panic!("{e}: {}", q.sql));
        // Renders canonically and round-trips through the parser.
        let reparsed = parse(&q.sql).unwrap();
        assert_eq!(render(&reparsed), q.sql);
        // Executes for real without error.
        ex.cardinality(&q.statement)
            .unwrap_or_else(|e| panic!("{e}: {}", q.sql));
        satisfied += usize::from(q.satisfied);
    }
    // A trained policy should land a decent share inside a generous range.
    assert!(
        satisfied >= 5,
        "only {satisfied}/30 satisfied after training"
    );
}

#[test]
fn estimator_agrees_with_execution_on_generated_queries() {
    // The reward oracle is an estimate; sanity-check its q-error
    // distribution over machine-generated (not hand-picked) queries.
    let db = Benchmark::TpcH.build(0.2, 7);
    let constraint = Constraint::cardinality_range(1.0, 100_000.0);
    let mut g = LearnedSqlGen::new(&db, constraint, GenConfig::fast().with_seed(2));
    g.train(100);
    let ex = Executor::with_options(
        &db,
        ExecOptions {
            max_rows: 3_000_000,
            deadline: None,
        },
    );

    let mut qerrors = Vec::new();
    for q in g.generate(40) {
        let real = ex.cardinality(&q.statement).unwrap() as f64;
        let est = q.measured;
        let qe = (est.max(1.0) / real.max(1.0)).max(real.max(1.0) / est.max(1.0));
        qerrors.push(qe);
    }
    qerrors.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = qerrors[qerrors.len() / 2];
    assert!(
        median < 5.0,
        "median q-error {median:.1} too high; estimator unusable as oracle"
    );
}

#[test]
fn works_on_all_three_benchmarks() {
    for benchmark in Benchmark::ALL {
        let db = benchmark.build(0.15, 5);
        let mut g = LearnedSqlGen::new(
            &db,
            Constraint::cardinality_range(1.0, 50_000.0),
            GenConfig::fast().with_seed(3),
        );
        g.train(60);
        let qs = g.generate(10);
        for q in &qs {
            validate(&db, &q.statement)
                .unwrap_or_else(|e| panic!("{}: {e}: {}", benchmark.name(), q.sql));
        }
    }
}

#[test]
fn cost_constraints_work_end_to_end() {
    let db = Benchmark::TpcH.build(0.2, 13);
    let constraint = Constraint::cost_range(10.0, 10_000.0);
    let mut g = LearnedSqlGen::new(&db, constraint, GenConfig::fast().with_seed(4));
    g.train(200);
    let qs = g.generate(20);
    let hits = qs.iter().filter(|q| q.satisfied).count();
    assert!(hits > 0, "no query hit a broad cost band");
    for q in &qs {
        assert!(q.measured >= 0.0 && q.measured.is_finite());
    }
}

#[test]
fn training_trace_is_recorded_and_reward_bounded() {
    let db = Benchmark::TpcH.build(0.15, 21);
    let mut g = LearnedSqlGen::new(
        &db,
        Constraint::cardinality_point(100.0),
        GenConfig::fast().with_seed(5),
    );
    g.train(80);
    assert_eq!(g.stats.reward_trace.len(), 80);
    for &r in &g.stats.reward_trace {
        assert!((0.0..=2.0).contains(&r), "per-step avg reward {r}");
    }
}
