//! Integration tests for the headline claim: LearnedSQLGen beats the
//! random and template baselines on constrained generation (Figures 4-7's
//! qualitative shape, asserted at test scale).

use learned_sqlgen::baselines::{RandomGen, TemplateGen};
use learned_sqlgen::core::{Constraint, GenConfig, LearnedSqlGen};
use learned_sqlgen::engine::Estimator;
use learned_sqlgen::fsm::{FsmConfig, Vocabulary};
use learned_sqlgen::rl::SqlGenEnv;
use learned_sqlgen::storage::gen::Benchmark;
use learned_sqlgen::storage::sample::SampleConfig;

fn setup() -> (learned_sqlgen::storage::Database, Vocabulary, Estimator) {
    let db = Benchmark::TpcH.build(0.25, 314);
    let vocab = Vocabulary::build(
        &db,
        &SampleConfig {
            k: 20,
            ..Default::default()
        },
    );
    let est = Estimator::build(&db);
    (db, vocab, est)
}

/// A tight range on moderate cardinalities: random rarely hits it, the
/// trained policy should hit it much more often (the Figure 4 gap).
#[test]
fn learned_beats_random_on_accuracy() {
    let (db, vocab, est) = setup();
    let constraint = Constraint::cardinality_range(200.0, 400.0);
    let env = SqlGenEnv::new(&vocab, &est, constraint);

    let mut random = RandomGen::new(9);
    let random_acc = random.accuracy(&env, 150);

    let mut learned = LearnedSqlGen::new(&db, constraint, GenConfig::fast().with_seed(6));
    learned.train(800);
    let queries = learned.generate(150);
    let learned_acc = queries.iter().filter(|q| q.satisfied).count() as f64 / queries.len() as f64;

    assert!(
        learned_acc > random_acc + 0.05,
        "learned {learned_acc:.3} vs random {random_acc:.3}"
    );
}

/// Template tuning beats pure random on point constraints it can reach
/// (the paper's Template-vs-SQLSmith ordering).
#[test]
fn template_beats_random_on_reachable_points() {
    let (_db, vocab, est) = setup();
    let constraint = Constraint::cardinality_point(500.0);
    let env = SqlGenEnv::new(&vocab, &est, constraint);

    let mut random = RandomGen::new(10);
    let random_acc = random.accuracy(&env, 120);

    let mut template = TemplateGen::from_rollouts(&vocab, &FsmConfig::default(), 12, 11);
    let template_acc = template.accuracy(&env, 120);

    assert!(
        template_acc > random_acc,
        "template {template_acc:.3} vs random {random_acc:.3}"
    );
}

/// The Figure 6 anecdote: a fixed template pool cannot reach constraints
/// outside its structural range, while the learned generator can explore
/// structures (joins) that do reach them.
#[test]
fn learned_explores_structures_templates_cannot() {
    let (db, vocab, est) = setup();
    // A cardinality above every single table's row count on this data:
    // only fact-fact joins through a shared dimension (e.g. part ⋈ partsupp
    // ⋈ lineitem) multiply past it.
    let constraint = Constraint::cardinality_range(3_000.0, 5_000_000.0);
    let env = SqlGenEnv::new(&vocab, &est, constraint);

    // Template pool restricted to single-table SPJ skeletons.
    let spj_single = FsmConfig {
        max_joins: 0,
        ..FsmConfig::spj()
    };
    let mut template = TemplateGen::from_rollouts(&vocab, &spj_single, 10, 12);
    let (found, _) = template.find_satisfied(&env, 3, 60);
    assert!(
        found.is_empty(),
        "single-table templates cannot reach join-scale cardinalities"
    );

    let mut learned = LearnedSqlGen::new(&db, constraint, GenConfig::fast().with_seed(8));
    learned.train(700);
    let (found, _) = learned.generate_satisfied(3, 800);
    assert!(
        !found.is_empty(),
        "learned generator failed to discover join structures"
    );
}

/// Both baselines and the learned method must emit only valid statements.
#[test]
fn all_methods_emit_valid_sql() {
    let (db, vocab, est) = setup();
    let constraint = Constraint::cardinality_range(1.0, 1e6);
    let env = SqlGenEnv::new(&vocab, &est, constraint);

    let mut random = RandomGen::new(13);
    for _ in 0..40 {
        let stmt = random.generate(&vocab, &env.fsm_config);
        learned_sqlgen::engine::validate(&db, &stmt).unwrap();
    }
    let mut template = TemplateGen::from_rollouts(&vocab, &FsmConfig::default(), 8, 14);
    for _ in 0..20 {
        let stmt = template.generate(&env);
        learned_sqlgen::engine::validate(&db, &stmt).unwrap();
    }
}
