//! Property-based tests for the system's core invariants.
//!
//! The load-bearing guarantee (paper challenge C3): every FSM-reachable
//! statement is valid, renderable, parseable and executable. Plus
//! estimator laws: predicates never increase estimated cardinality,
//! selectivities stay in [0, 1], rewards stay in [0, 1].

use learned_sqlgen::engine::{
    parse, render, validate, CmpOp, ColRef, Estimator, ExecOptions, Executor, Predicate, Rhs,
    SelectQuery, Statement,
};
use learned_sqlgen::fsm::{random_statement, FsmConfig, Vocabulary};
use learned_sqlgen::rl::Constraint;
use learned_sqlgen::storage::gen::Benchmark;
use learned_sqlgen::storage::sample::SampleConfig;
use learned_sqlgen::storage::Value;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

struct Fixture {
    db: learned_sqlgen::storage::Database,
    vocab: Vocabulary,
    est: Estimator,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let db = Benchmark::TpcH.build(0.15, 1234);
        let vocab = Vocabulary::build(
            &db,
            &SampleConfig {
                k: 12,
                ..Default::default()
            },
        );
        let est = Estimator::build(&db);
        Fixture { db, vocab, est }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any seed's FSM rollout is valid, round-trips, and executes.
    #[test]
    fn rollouts_are_valid_and_executable(seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let (stmt, _) = random_statement(&f.vocab, &FsmConfig::full(), &mut rng);
        let sql = render(&stmt);
        prop_assert!(validate(&f.db, &stmt).is_ok(), "invalid: {sql}");
        let reparsed = parse(&sql).map_err(|e| TestCaseError::fail(format!("{e}: {sql}")))?;
        prop_assert_eq!(render(&reparsed), sql.clone());
        let ex = Executor::with_options(&f.db, ExecOptions { max_rows: 2_000_000, deadline: None });
        prop_assert!(ex.cardinality(&stmt).is_ok(), "exec failed: {sql}");
    }

    /// Estimated selectivity of any rollout's predicate is within [0, 1],
    /// and the estimated cardinality is finite and non-negative.
    #[test]
    fn estimates_are_bounded(seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let (stmt, _) = random_statement(&f.vocab, &FsmConfig::default(), &mut rng);
        let card = f.est.cardinality(&stmt);
        prop_assert!(card.is_finite() && card >= 0.0);
        if let Statement::Select(q) = &stmt {
            if let Some(p) = &q.predicate {
                let s = f.est.selectivity(p);
                prop_assert!((0.0..=1.0).contains(&s), "selectivity {s}");
            }
        }
    }

    /// Adding a conjunct never increases the estimated cardinality
    /// (monotonicity under the independence assumption).
    #[test]
    fn and_conjunct_is_monotone(seed in any::<u64>(), threshold in 1i64..50) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        // Find a SELECT whose FROM includes lineitem, or build one.
        let mut q = SelectQuery::scan(
            "lineitem",
            vec![learned_sqlgen::engine::SelectItem::Column(ColRef::new(
                "lineitem",
                "l_quantity",
            ))],
        );
        let (extra, _) = random_statement(&f.vocab, &FsmConfig::spj(), &mut rng);
        let base_card = f.est.select_cardinality(&q);
        let conj = Predicate::Cmp {
            col: ColRef::new("lineitem", "l_quantity"),
            op: CmpOp::Lt,
            rhs: Rhs::Value(Value::Int(threshold)),
        };
        q.predicate = Some(conj);
        let filtered = f.est.select_cardinality(&q);
        prop_assert!(filtered <= base_card + 1e-9, "{filtered} > {base_card}");
        let _ = extra; // keep the rollout exercised for coverage
    }

    /// Rewards are always in [0, 1] for any constraint/measurement combo.
    #[test]
    fn rewards_bounded(measured in 0.0f64..1e12, lo in 1.0f64..1e6, width in 1.0f64..1e6) {
        let c = Constraint::cardinality_range(lo, lo + width);
        let r = c.reward(measured);
        prop_assert!((0.0..=1.0).contains(&r));
        let p = Constraint::cost_point(lo);
        let r = p.reward(measured);
        prop_assert!((0.0..=1.0).contains(&r));
    }

    /// Range rewards are 1 exactly inside the range.
    #[test]
    fn range_reward_one_inside(lo in 1.0f64..1e6, width in 1.0f64..1e6, t in 0.0f64..1.0) {
        let c = Constraint::cardinality_range(lo, lo + width);
        let inside = lo + t * width;
        prop_assert_eq!(c.reward(inside), 1.0);
        prop_assert!(c.satisfied(inside));
    }

    /// Point rewards decrease as the measurement moves away from the point.
    #[test]
    fn point_reward_monotone(c in 10.0f64..1e6, f1 in 1.0f64..10.0, f2 in 10.0f64..100.0) {
        let p = Constraint::cardinality_point(c);
        prop_assert!(p.reward(c * f1) >= p.reward(c * f2) - 1e-12);
        prop_assert!(p.reward(c / f1) >= p.reward(c / f2) - 1e-12);
    }
}

/// Deterministic sanity outside proptest: the executor and the validator
/// agree on FSM output across all benchmarks (validator accepts ⇒ executor
/// succeeds).
#[test]
fn validator_acceptance_implies_executability() {
    for benchmark in Benchmark::ALL {
        let db = benchmark.build(0.1, 77);
        let vocab = Vocabulary::build(
            &db,
            &SampleConfig {
                k: 8,
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(3);
        let ex = Executor::with_options(
            &db,
            ExecOptions {
                max_rows: 2_000_000,
                deadline: None,
            },
        );
        for _ in 0..60 {
            let (stmt, _) = random_statement(&vocab, &FsmConfig::full(), &mut rng);
            validate(&db, &stmt).unwrap();
            ex.cardinality(&stmt).unwrap();
        }
    }
}
