//! Integration test for §6: the pre-trained meta-critic adapts to an
//! unseen constraint faster than training from scratch (the Figure 9
//! claim, asserted at test scale on reward progress).

use learned_sqlgen::engine::Estimator;
use learned_sqlgen::fsm::{FsmConfig, Vocabulary};
use learned_sqlgen::rl::{
    ActorCritic, Constraint, MetaCriticTrainer, NetConfig, SqlGenEnv, TrainConfig,
};
use learned_sqlgen::storage::gen::Benchmark;
use learned_sqlgen::storage::sample::SampleConfig;

fn cfg(seed: u64) -> TrainConfig {
    TrainConfig {
        net: NetConfig {
            embed_dim: 16,
            hidden: 16,
            layers: 1,
            dropout: 0.0,
        },
        seed,
        ..Default::default()
    }
}

#[test]
fn meta_critic_transfers_to_new_constraint() {
    let db = Benchmark::TpcH.build(0.2, 555);
    let vocab = Vocabulary::build(
        &db,
        &SampleConfig {
            k: 12,
            ..Default::default()
        },
    );
    let est = Estimator::build(&db);

    // Pre-training tasks: two halves of a domain; new task straddles them.
    let pretrain = vec![
        Constraint::cardinality_range(10.0, 500.0),
        Constraint::cardinality_range(500.0, 5_000.0),
    ];
    let new_task = Constraint::cardinality_range(200.0, 2_000.0);
    let spj = FsmConfig::spj();
    let adapt_budget = 160;
    let window = 60; // compare the late-adaptation window
    let late = |t: &[f32]| -> f32 { t[t.len() - window..].iter().sum::<f32>() / window as f32 };

    // Per-episode reward at test scale is dominated by sampling noise, so a
    // single seed is a coin flip; assert on the mean over several seeds.
    let mut meta_mean = 0.0f32;
    let mut scratch_mean = 0.0f32;
    let seeds: [u64; 3] = [1, 2, 3];
    for &seed in &seeds {
        let mut meta = MetaCriticTrainer::new(vocab.size(), pretrain.clone(), cfg(seed));
        for _ in 0..150 {
            for (i, &c) in pretrain.iter().enumerate() {
                let env = SqlGenEnv::new(&vocab, &est, c).with_fsm_config(spj.clone());
                meta.train_task(i, &env);
            }
        }

        // Adapt to the unseen constraint.
        let env = SqlGenEnv::new(&vocab, &est, new_task).with_fsm_config(spj.clone());
        let idx = meta.add_task(vocab.size(), new_task);
        let mut meta_trace = Vec::with_capacity(adapt_budget);
        for _ in 0..adapt_budget {
            let ep = meta.train_task(idx, &env);
            meta_trace.push(ep.total_reward() / ep.len().max(1) as f32);
        }

        // Scratch with the same budget and the same network seed.
        let mut scratch = ActorCritic::new(vocab.size(), cfg(seed));
        let mut scratch_trace = Vec::with_capacity(adapt_budget);
        for _ in 0..adapt_budget {
            let ep = scratch.train_episode(&env);
            scratch_trace.push(ep.total_reward() / ep.len().max(1) as f32);
        }

        meta_mean += late(&meta_trace) / seeds.len() as f32;
        scratch_mean += late(&scratch_trace) / seeds.len() as f32;
    }

    // The warm meta-critic should not be *worse* late in adaptation; allow
    // tolerance for stochasticity, but catch regressions where transfer
    // actively hurts.
    assert!(
        meta_mean > scratch_mean * 0.75,
        "meta-critic adaptation ({meta_mean:.3}) much worse than scratch \
         ({scratch_mean:.3})"
    );
}
