//! Vendored drop-in subset of `serde_json`, backed by the serde shim's JSON
//! data model (`serde::json`). Provides `to_string`, `from_str`, `Value` and
//! `Error` — the surface this workspace uses.

pub use serde::json::{parse as parse_value, Map, Number, Value};
pub use serde::Error;

/// Serializes a value as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize(&mut out);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = serde::json::parse(s)?;
    T::deserialize(&value)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    let text = to_string(value)?;
    serde::json::parse(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Point {
        x: i64,
        y: f64,
        label: String,
        tags: Vec<String>,
        parent: Option<Box<Point>>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Shape {
        Empty,
        Dot(Point),
        Pair(i64, i64),
        Rect { w: f64, h: f64 },
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct WithDefaults {
        required: i64,
        #[serde(default)]
        optional: Vec<i64>,
        #[serde(skip, default = "default_marker")]
        marker: String,
    }

    fn default_marker() -> String {
        "reset".to_string()
    }

    fn p() -> Point {
        Point {
            x: -3,
            y: 2.5,
            label: "a \"quoted\" λ".into(),
            tags: vec!["t1".into(), "t2".into()],
            parent: None,
        }
    }

    #[test]
    fn struct_roundtrip() {
        let v = Point {
            parent: Some(Box::new(p())),
            ..p()
        };
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Point>(&json).unwrap(), v);
    }

    #[test]
    fn enum_representations_match_upstream() {
        assert_eq!(to_string(&Shape::Empty).unwrap(), "\"Empty\"");
        assert_eq!(to_string(&Shape::Pair(1, 2)).unwrap(), "{\"Pair\":[1,2]}");
        assert_eq!(
            to_string(&Shape::Rect { w: 1.0, h: 2.0 }).unwrap(),
            "{\"Rect\":{\"w\":1.0,\"h\":2.0}}"
        );
        for s in [
            Shape::Empty,
            Shape::Dot(p()),
            Shape::Pair(-7, 9),
            Shape::Rect { w: 0.5, h: 1.5 },
        ] {
            let json = to_string(&s).unwrap();
            assert_eq!(from_str::<Shape>(&json).unwrap(), s);
        }
    }

    #[test]
    fn default_and_skip_attributes() {
        let v: WithDefaults = from_str("{\"required\":5}").unwrap();
        assert_eq!(v.required, 5);
        assert!(v.optional.is_empty());
        assert_eq!(v.marker, "reset");
        // skip fields never serialize
        let out = to_string(&WithDefaults {
            required: 1,
            optional: vec![2],
            marker: "live".into(),
        })
        .unwrap();
        assert!(!out.contains("marker"), "{out}");
    }

    #[test]
    fn value_api() {
        let v: Value = from_str("{\"a\":{\"b\":[1,2.5,\"x\",null,true]}}").unwrap();
        let arr = v.get("a").unwrap().get("b").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_i64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert!(arr[3].is_null());
        assert_eq!(arr[4].as_bool(), Some(true));
        let back = to_string(&v).unwrap();
        assert_eq!(from_str::<Value>(&back).unwrap(), v);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<Point>("{\"x\":1}").is_err()); // missing fields
        assert!(from_str::<Point>("not json").is_err());
        assert!(from_str::<Shape>("{\"Nope\":1}").is_err());
    }
}
