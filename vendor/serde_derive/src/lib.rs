//! Vendored `#[derive(Serialize, Deserialize)]` for the serde shim.
//!
//! Parses the derive input by walking the raw token stream (no `syn`/`quote`
//! — the registry is unreachable in this build environment) and emits impls
//! of the shim's JSON-backed `serde::Serialize`/`serde::Deserialize` traits.
//!
//! Supported shapes — exactly what this workspace uses:
//! - structs with named fields
//! - enums with unit, tuple and struct variants
//! - field attributes `#[serde(default)]`, `#[serde(default = "path")]`,
//!   `#[serde(skip)]` (skip implies default)
//!
//! Unsupported shapes (generics, tuple structs, container attributes) fail
//! with a `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    skip: bool,
    /// `None`: required. `Some(None)`: `Default::default()`.
    /// `Some(Some(path))`: call `path()`.
    default: Option<Option<String>>,
}

impl Field {
    fn default_expr(&self) -> String {
        match &self.default {
            Some(Some(path)) => format!("{path}()"),
            _ => "::core::default::Default::default()".to_string(),
        }
    }
}

enum Shape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Data {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    data: Data,
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c)
    }

    fn peek_ident(&self, s: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == s)
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!("expected identifier, got {other:?}")),
        }
    }

    /// Consumes leading attributes, returning the accumulated serde field
    /// options (skip / default).
    fn take_attrs(&mut self) -> Result<(bool, Option<Option<String>>), String> {
        let mut skip = false;
        let mut default: Option<Option<String>> = None;
        while self.peek_punct('#') {
            self.next();
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                other => return Err(format!("expected [...] after '#', got {other:?}")),
            };
            let mut inner = Cursor::new(g_stream(&group));
            if !inner.peek_ident("serde") {
                continue; // doc comments, other derives, etc.
            }
            inner.next();
            let args = match inner.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
                other => return Err(format!("expected serde(...), got {other:?}")),
            };
            let mut a = Cursor::new(g_stream(&args));
            while !a.at_end() {
                let key = a.expect_ident()?;
                match key.as_str() {
                    "skip" => skip = true,
                    "default" => {
                        if a.peek_punct('=') {
                            a.next();
                            match a.next() {
                                Some(TokenTree::Literal(l)) => {
                                    let s = l.to_string();
                                    let path = s
                                        .strip_prefix('"')
                                        .and_then(|s| s.strip_suffix('"'))
                                        .ok_or_else(|| {
                                            format!("serde(default = ...) expects a string literal, got {s}")
                                        })?;
                                    default = Some(Some(path.to_string()));
                                }
                                other => {
                                    return Err(format!(
                                        "serde(default = ...) expects a literal, got {other:?}"
                                    ))
                                }
                            }
                        } else {
                            default = Some(None);
                        }
                    }
                    other => return Err(format!("unsupported serde attribute `{other}`")),
                }
                if a.peek_punct(',') {
                    a.next();
                }
            }
        }
        if skip && default.is_none() {
            default = Some(None);
        }
        Ok((skip, default))
    }

    /// Skips a type (field type or discriminant) up to a top-level comma,
    /// tracking angle-bracket depth so `Map<K, V>` commas don't terminate.
    fn skip_type(&mut self) {
        let mut angle: i32 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                _ => {}
            }
            self.next();
        }
    }
}

fn g_stream(g: &proc_macro::Group) -> TokenStream {
    g.stream()
}

fn parse_fields(ts: TokenStream) -> Result<Vec<Field>, String> {
    let mut c = Cursor::new(ts);
    let mut fields = Vec::new();
    while !c.at_end() {
        let (skip, default) = c.take_attrs()?;
        if c.at_end() {
            break; // trailing attribute-only garbage (shouldn't happen)
        }
        if c.peek_ident("pub") {
            c.next();
            if matches!(c.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                c.next(); // pub(crate) etc.
            }
        }
        let name = c.expect_ident()?;
        if !c.peek_punct(':') {
            return Err(format!("expected ':' after field `{name}`"));
        }
        c.next();
        c.skip_type();
        if c.peek_punct(',') {
            c.next();
        }
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    Ok(fields)
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut c = Cursor::new(ts);
    let mut n = 0;
    while !c.at_end() {
        c.skip_type();
        n += 1;
        if c.peek_punct(',') {
            c.next();
        }
    }
    n
}

fn parse_variants(ts: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(ts);
    let mut variants = Vec::new();
    while !c.at_end() {
        let _ = c.take_attrs()?;
        if c.at_end() {
            break;
        }
        let name = c.expect_ident()?;
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.next();
                Shape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream())?;
                c.next();
                Shape::Struct(fields)
            }
            _ => Shape::Unit,
        };
        if c.peek_punct('=') {
            return Err(format!("explicit discriminant on `{name}` not supported"));
        }
        if c.peek_punct(',') {
            c.next();
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut c = Cursor::new(input);
    loop {
        if c.peek_punct('#') {
            c.next();
            c.next(); // the [...] group
            continue;
        }
        if c.peek_ident("pub") {
            c.next();
            if matches!(c.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                c.next();
            }
            continue;
        }
        break;
    }
    let kind = c.expect_ident()?;
    let name = c.expect_ident()?;
    if c.peek_punct('<') {
        return Err(format!(
            "generic type `{name}` not supported by the vendored serde_derive"
        ));
    }
    match (kind.as_str(), c.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => Ok(Input {
            name,
            data: Data::Struct(parse_fields(g.stream())?),
        }),
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => Ok(Input {
            name,
            data: Data::Enum(parse_variants(g.stream())?),
        }),
        (k, _) => Err(format!(
            "`{k} {name}` has an unsupported shape for the vendored serde_derive (named-field structs and enums only)"
        )),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let mut body = String::new();
    match &input.data {
        Data::Struct(fields) => {
            body.push_str("out.push('{');\n");
            let mut first = true;
            for f in fields.iter().filter(|f| !f.skip) {
                let prefix = if first { "" } else { "," };
                first = false;
                body.push_str(&format!(
                    "out.push_str(\"{prefix}\\\"{fname}\\\":\");\n\
                     ::serde::Serialize::serialize(&self.{fname}, out);\n",
                    fname = f.name
                ));
            }
            body.push_str("out.push('}');\n");
        }
        Data::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => body.push_str(&format!(
                        "{name}::{vname} => out.push_str(\"\\\"{vname}\\\"\"),\n"
                    )),
                    Shape::Tuple(1) => body.push_str(&format!(
                        "{name}::{vname}(f0) => {{\n\
                         out.push_str(\"{{\\\"{vname}\\\":\");\n\
                         ::serde::Serialize::serialize(f0, out);\n\
                         out.push('}}');\n}}\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        body.push_str(&format!(
                            "{name}::{vname}({}) => {{\n\
                             out.push_str(\"{{\\\"{vname}\\\":[\");\n",
                            binds.join(", ")
                        ));
                        for (i, b) in binds.iter().enumerate() {
                            if i > 0 {
                                body.push_str("out.push(',');\n");
                            }
                            body.push_str(&format!("::serde::Serialize::serialize({b}, out);\n"));
                        }
                        body.push_str("out.push_str(\"]}\");\n}\n");
                    }
                    Shape::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        body.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n\
                             out.push_str(\"{{\\\"{vname}\\\":{{\");\n",
                            binds.join(", ")
                        ));
                        let mut first = true;
                        for f in fields.iter().filter(|f| !f.skip) {
                            let prefix = if first { "" } else { "," };
                            first = false;
                            body.push_str(&format!(
                                "out.push_str(\"{prefix}\\\"{fname}\\\":\");\n\
                                 ::serde::Serialize::serialize({fname}, out);\n",
                                fname = f.name
                            ));
                        }
                        // Suppress unused-variable warnings for skipped fields.
                        for f in fields.iter().filter(|f| f.skip) {
                            body.push_str(&format!("let _ = {};\n", f.name));
                        }
                        body.push_str("out.push_str(\"}}\");\n}\n");
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self, out: &mut ::std::string::String) {{\n{body}}}\n}}\n"
    )
}

/// `match obj.get("f") {{ Some → deserialize, None → default/Null }}`.
fn field_get_expr(f: &Field, source: &str) -> String {
    if f.skip {
        return f.default_expr();
    }
    let missing = match &f.default {
        Some(_) => f.default_expr(),
        // Deserializing Null lets `Option<T>` fields degrade to `None` on a
        // missing key, like upstream serde; other types report the mismatch.
        None => "::serde::Deserialize::deserialize(&::serde::json::Value::Null)?".to_string(),
    };
    format!(
        "match {source}.get(\"{fname}\") {{\n\
         ::core::option::Option::Some(x) => ::serde::Deserialize::deserialize(x)?,\n\
         ::core::option::Option::None => {missing},\n}}",
        fname = f.name
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::Struct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!("{}: {},\n", f.name, field_get_expr(f, "obj")));
            }
            format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::Error::custom(\
                 format!(\"expected object for {name}, got {{}}\", v.kind())))?;\n\
                 ::core::result::Result::Ok({name} {{\n{inits}}})\n"
            )
        }
        Data::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut obj_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                    )),
                    Shape::Tuple(1) => obj_arms.push_str(&format!(
                        "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::deserialize(inner)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::deserialize(&arr[{i}])?"))
                            .collect();
                        obj_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let arr = inner.as_array().ok_or_else(|| ::serde::Error::custom(\
                             \"expected array for variant {vname}\"))?;\n\
                             if arr.len() != {n} {{\n\
                             return ::core::result::Result::Err(::serde::Error::custom(\
                             format!(\"variant {vname} expects {n} elements, got {{}}\", arr.len())));\n}}\n\
                             ::core::result::Result::Ok({name}::{vname}({}))\n}}\n",
                            elems.join(", ")
                        ));
                    }
                    Shape::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{}: {},\n",
                                f.name,
                                field_get_expr(f, "vobj")
                            ));
                        }
                        obj_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let vobj = inner.as_object().ok_or_else(|| ::serde::Error::custom(\
                             \"expected object for variant {vname}\"))?;\n\
                             ::core::result::Result::Ok({name}::{vname} {{\n{inits}}})\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::json::Value::String(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::core::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown unit variant {{other}} for {name}\"))),\n}},\n\
                 ::serde::json::Value::Object(map) if map.len() == 1 => {{\n\
                 let (tag, inner) = map.iter().next().expect(\"len checked\");\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                 {obj_arms}\
                 other => ::core::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown variant {{other}} for {name}\"))),\n}}\n}},\n\
                 other => ::core::result::Result::Err(::serde::Error::custom(\
                 format!(\"expected enum representation for {name}, got {{}}\", other.kind()))),\n}}\n"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(v: &::serde::json::Value) -> \
         ::core::result::Result<Self, ::serde::Error> {{\n{body}}}\n}}\n"
    )
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => {
            let code = gen(&parsed);
            code.parse().unwrap_or_else(|e| {
                let msg = format!("vendored serde_derive generated invalid code: {e}");
                format!("compile_error!({msg:?});").parse().unwrap()
            })
        }
        Err(msg) => {
            let msg = format!("vendored serde_derive: {msg}");
            format!("compile_error!({msg:?});").parse().unwrap()
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}
