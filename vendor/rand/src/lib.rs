//! Vendored drop-in subset of the `rand` 0.9 API.
//!
//! This build environment has no access to the crates.io registry, so the
//! workspace ships the slice of `rand` it actually uses: `RngCore`, `Rng`
//! (`random`, `random_range`, `random_bool`), `SeedableRng::seed_from_u64`,
//! `rngs::StdRng` and the free function `rng()`. The generator is
//! xoshiro256++ seeded through SplitMix64 — statistically solid for
//! benchmark-data generation and RL exploration, though its streams differ
//! from upstream `rand`'s ChaCha12-based `StdRng`.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;

    /// Derives a generator from OS-ish entropy (time + a process counter).
    fn from_os_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

fn entropy_seed() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x9e3779b97f4a7c15);
    t ^ COUNTER.fetch_add(0x2545f4914f6cdd1d, Ordering::Relaxed)
}

/// Values samplable uniformly from the generator's "standard" distribution
/// (`[0, 1)` for floats, the full domain for integers and `bool`).
pub trait StandardSample: Sized {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let u = <$t as StandardSample>::standard_sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Non-deterministic generator returned by [`crate::rng`].
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// A fresh, non-deterministically seeded generator (mirrors `rand::rng()`).
pub fn rng() -> rngs::ThreadRng {
    rngs::ThreadRng(rngs::StdRng::from_os_entropy())
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_distinct_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let x = r.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = r.random_range(-5..=5i64);
            assert!((-5..=5).contains(&y));
            let f = r.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u: f64 = r.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
