//! JSON value tree, parser and writer — the shim's entire data model.

use crate::Error;
use std::collections::BTreeMap;

/// Object representation (sorted map, deterministic output).
pub type Map = BTreeMap<String, Value>;

/// A JSON number, preserving integer-ness across round trips.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    Int(i64),
    UInt(u64),
    Float(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(v) => v as f64,
            Number::UInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    pub fn as_i128(&self) -> Option<i128> {
        match *self {
            Number::Int(v) => Some(v as i128),
            Number::UInt(v) => Some(v as i128),
            Number::Float(v) if v.fract() == 0.0 && v.abs() < 9.0e18 => Some(v as i128),
            Number::Float(_) => None,
        }
    }
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    /// Human-readable type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Value::Number(n) => n.as_i128(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        self.as_i128().and_then(|v| i64::try_from(v).ok())
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_i128().and_then(|v| u64::try_from(v).ok())
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object-key lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Serializes this value as compact JSON.
    pub fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(Number::Int(v)) => out.push_str(&v.to_string()),
            Value::Number(Number::UInt(v)) => out.push_str(&v.to_string()),
            Value::Number(Number::Float(v)) => write_f64(out, *v),
            Value::String(s) => write_escaped_str(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

/// Writes a float as JSON: shortest round-trippable form; non-finite values
/// (which JSON cannot express) degrade to `null`, as in upstream serde_json.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's `{:?}` for floats is the shortest representation that
        // round-trips, and always contains `.` or `e` (valid JSON either way).
        use std::fmt::Write;
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

/// Writes a JSON string literal with escaping.
pub fn write_escaped_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone surrogate"));
                                }
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = text.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("short \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(v)));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::UInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> String {
        let mut out = String::new();
        parse(src).unwrap().write(&mut out);
        out
    }

    #[test]
    fn parses_and_writes_scalars() {
        assert_eq!(roundtrip("null"), "null");
        assert_eq!(roundtrip("true"), "true");
        assert_eq!(roundtrip("-42"), "-42");
        assert_eq!(roundtrip("3.5"), "3.5");
        assert_eq!(roundtrip("\"a\\nb\""), "\"a\\nb\"");
        assert_eq!(roundtrip("1e3"), "1000.0");
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"x"}],"c":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert!(v.get("c").unwrap().is_null());
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""é😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "é😀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn float_roundtrip_precision() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 123456789.123456] {
            let mut s = String::new();
            write_f64(&mut s, x);
            assert_eq!(parse(&s).unwrap().as_f64().unwrap(), x);
        }
    }
}
