//! Vendored drop-in subset of `serde` specialised to JSON.
//!
//! The registry is unreachable in this build environment, so the workspace
//! ships the slice of serde it uses: `Serialize`/`Deserialize` traits with
//! `#[derive(Serialize, Deserialize)]` (including `#[serde(default)]` and
//! `#[serde(skip, default = "path")]` field attributes), driven through a
//! JSON `Value` data model in [`json`]. The `serde_json` shim crate layers
//! `to_string`/`from_str` on top.
//!
//! The wire format matches upstream `serde_json` for the shapes this
//! workspace serializes: structs → objects, unit enum variants → strings,
//! newtype/tuple/struct variants → single-key objects.

pub mod json;

pub use json::Value;
pub use serde_derive::{Deserialize, Serialize};

/// Serialization/deserialization error (string message, like `serde_json`'s).
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can write themselves as JSON.
pub trait Serialize {
    fn serialize(&self, out: &mut String);
}

/// Types constructible from a parsed JSON [`Value`].
pub trait Deserialize: Sized {
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, out: &mut String) {
        (**self).serialize(out)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self, out: &mut String) {
        (**self).serialize(out)
    }
}

impl Serialize for bool {
    fn serialize(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, out: &mut String) {
                out.push_str(itoa_buf(*self as i128).as_str());
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, out: &mut String) {
                let mut buf = String::new();
                {
                    use std::fmt::Write;
                    let _ = write!(buf, "{}", *self);
                }
                out.push_str(&buf);
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

fn itoa_buf(v: i128) -> String {
    v.to_string()
}

impl Serialize for f32 {
    fn serialize(&self, out: &mut String) {
        json::write_f64(out, *self as f64);
    }
}

impl Serialize for f64 {
    fn serialize(&self, out: &mut String) {
        json::write_f64(out, *self);
    }
}

impl Serialize for str {
    fn serialize(&self, out: &mut String) {
        json::write_escaped_str(out, self);
    }
}

impl Serialize for String {
    fn serialize(&self, out: &mut String) {
        json::write_escaped_str(out, self);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, out: &mut String) {
        self.as_slice().serialize(out)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.serialize(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize(out),
            None => out.push_str("null"),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self, out: &mut String) {
        out.push('[');
        self.0.serialize(out);
        out.push(',');
        self.1.serialize(out);
        out.push(']');
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self, out: &mut String) {
        out.push('[');
        self.0.serialize(out);
        out.push(',');
        self.1.serialize(out);
        out.push(',');
        self.2.serialize(out);
        out.push(']');
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_escaped_str(out, k);
            out.push(':');
            v.serialize(out);
        }
        out.push('}');
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn serialize(&self, out: &mut String) {
        // Sort for deterministic output.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        out.push('{');
        for (i, k) in keys.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_escaped_str(out, k);
            out.push(':');
            self[*k].serialize(out);
        }
        out.push('}');
    }
}

impl Serialize for Value {
    fn serialize(&self, out: &mut String) {
        self.write(out)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {}", v.kind())))
    }
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i128()
                    .ok_or_else(|| Error::custom(format!("expected integer, got {}", v.kind())))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {}", v.kind())))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        f64::deserialize(v).map(|x| x as f32)
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom(format!("expected string, got {}", v.kind())))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {}", v.kind())))?;
        arr.iter().map(T::deserialize).collect()
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected 2-tuple array, got {}", v.kind())))?;
        if arr.len() != 2 {
            return Err(Error::custom(format!(
                "expected 2 elements, got {}",
                arr.len()
            )));
        }
        Ok((A::deserialize(&arr[0])?, B::deserialize(&arr[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected 3-tuple array, got {}", v.kind())))?;
        if arr.len() != 3 {
            return Err(Error::custom(format!(
                "expected 3 elements, got {}",
                arr.len()
            )));
        }
        Ok((
            A::deserialize(&arr[0])?,
            B::deserialize(&arr[1])?,
            C::deserialize(&arr[2])?,
        ))
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {}", v.kind())))?;
        obj.iter()
            .map(|(k, val)| Ok((k.clone(), V::deserialize(val)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {}", v.kind())))?;
        obj.iter()
            .map(|(k, val)| Ok((k.clone(), V::deserialize(val)?)))
            .collect()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
