//! Vendored drop-in subset of `criterion`.
//!
//! Provides the surface the workspace's benches use — `Criterion`,
//! `benchmark_group`/`sample_size`/`bench_function`/`finish`, `Bencher::iter`
//! and the `criterion_group!`/`criterion_main!` macros — with genuine
//! wall-clock measurement: each function is warmed up, then timed over
//! `sample_size` samples with an adaptive per-sample iteration count, and
//! mean / median / min statistics are printed. No HTML reports or history.

use std::time::{Duration, Instant};

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            group: name.to_string(),
            sample_size: 100,
        }
    }
}

pub struct BenchmarkGroup {
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters_per_sample: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up + calibration: pick an iteration count so each sample
        // takes a measurable slice of time (~2ms) without dragging out
        // slow benches.
        let calibration_start = Instant::now();
        routine(&mut bencher);
        let one = calibration_start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(2);
        let iters = if one >= target {
            1
        } else {
            ((target.as_nanos() / one.as_nanos()).min(10_000) as u64).max(1)
        };

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iters_per_sample = iters;
            bencher.elapsed = Duration::ZERO;
            routine(&mut bencher);
            samples_ns.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timing"));
        let min = samples_ns[0];
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        println!(
            "  {}/{name:<28} mean {:>12}  median {:>12}  min {:>12}  ({} samples x {} iters)",
            self.group,
            fmt_ns(mean),
            fmt_ns(median),
            fmt_ns(min),
            self.sample_size,
            iters,
        );
        self
    }

    pub fn finish(&mut self) {}
}

pub struct Bencher {
    iters_per_sample: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Re-export so `use std::hint::black_box` and `criterion::black_box` both work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut count = 0u64;
        group.bench_function("spin", |b| {
            b.iter(|| {
                count = count.wrapping_add(1);
                count
            })
        });
        group.finish();
        assert!(count > 0);
    }
}
