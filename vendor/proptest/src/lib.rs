//! Vendored drop-in subset of `proptest`.
//!
//! The registry is unreachable in this build environment, so the workspace
//! ships the slice of proptest it uses: the `proptest!` macro,
//! `prop_assert*`, range/`any`/`collection::vec`/`sample::select` strategies
//! and regex-lite string strategies. Cases are generated from a
//! deterministic per-test RNG; there is no shrinking — a failure reports the
//! generated inputs instead.

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded from a test's fully-qualified name: stable across runs, so a
    /// failure is reproducible by re-running the same test binary.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

// ---------------------------------------------------------------------------
// Config and errors
// ---------------------------------------------------------------------------

/// Runner configuration (only `cases` is honoured by the shim).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 128 keeps the heavier property suites
        // fast while still exercising plenty of the input space.
        ProptestConfig { cases: 128 }
    }
}

/// A failed test case (what `prop_assert!` and `?` produce).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }

    /// Alias matching upstream's `TestCaseError::Reject` usage loosely.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A value generator. Unlike upstream there is no intermediate value tree —
/// `generate` directly yields the final value.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

/// `any::<T>()` — the full domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite, wide-range doubles.
        let m = rng.unit_f64() * 2.0 - 1.0;
        let e = (rng.below(613) as i32 - 306) as f64;
        m * 10f64.powf(e)
    }
}

impl Strategy for Any<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        let m = rng.unit_f64() as f32 * 2.0 - 1.0;
        let e = (rng.below(75) as i32 - 37) as f32;
        m * 10f32.powf(e)
    }
}

/// Regex-lite string strategy: supports literal characters, `[...]` classes
/// with ranges, the `\PC` printable-character class, and `{m,n}` / `{n}` /
/// `+` / `*` quantifiers. Covers every pattern this workspace's tests use.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

enum Atom {
    /// Inclusive char ranges to sample uniformly from.
    Class(Vec<(char, char)>),
    /// Any printable (non-control) character — `\PC`.
    Printable,
    Literal(char),
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut out = String::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '\\' => {
                if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                    i += 3;
                    Atom::Printable
                } else {
                    let c = *chars
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                    i += 2;
                    Atom::Literal(c)
                }
            }
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((chars[i], chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((chars[i], chars[i]));
                        i += 1;
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated character class in pattern {pattern:?}"
                );
                i += 1; // ']'
                Atom::Class(ranges)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Quantifier.
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| p + i)
                    .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("quantifier lower bound"),
                        n.trim().parse::<usize>().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("exact quantifier");
                        (n, n)
                    }
                }
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            _ => (1, 1),
        };
        let n = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..n {
            out.push(sample_atom(&atom, rng));
        }
    }
    out
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Printable => {
            // Mostly ASCII printable; occasionally multi-byte scalars so
            // byte-indexed consumers get exercised on UTF-8 boundaries.
            if rng.below(8) == 0 {
                const EXOTIC: &[char] = &['é', 'λ', '©', '中', '€', '𝔸', '😀', '\u{a0}'];
                EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
            } else {
                char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap()
            }
        }
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|&(a, b)| (b as u64).saturating_sub(a as u64) + 1)
                .sum();
            let mut pick = rng.below(total);
            for &(a, b) in ranges {
                let span = (b as u64) - (a as u64) + 1;
                if pick < span {
                    return char::from_u32(a as u32 + pick as u32).expect("class range");
                }
                pick -= span;
            }
            unreachable!("class sampling")
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Size specification for [`vec`]: an exact `usize` or a range.
    pub trait IntoSizeRange {
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    /// `proptest::collection::vec(element_strategy, size)`.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { elem, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    pub struct Select<T> {
        items: Vec<T>,
    }

    /// `prop::sample::select(vec![...])` — uniform choice of one element.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select over an empty vector");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };

    /// Namespace mirror so `prop::sample::select` etc. resolve.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}\n  {}",
            stringify!($left), stringify!($right), l, format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut __rng);)+
                    let __inputs = format!("{:?}", ($(&$arg,)+));
                    let __outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        { $body }
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = __outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            __case + 1,
                            __cfg.cases,
                            e,
                            __inputs
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_patterns_obey_shape() {
        let mut rng = crate::TestRng::deterministic("shape");
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-z]{2,5}", &mut rng);
            assert!((2..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let t = crate::Strategy::generate(&"[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!(t.chars().next().unwrap().is_ascii_lowercase());

            let u = crate::Strategy::generate(&"\\PC{0,12}", &mut rng);
            assert!(u.chars().all(|c| !c.is_control()), "{u:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in -5i64..5, y in 0usize..10, f in -1.0f32..1.0) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!(y < 10);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(0i64..3, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for x in &v {
                prop_assert!((0..3).contains(x));
            }
        }

        #[test]
        fn select_picks_members(kw in prop::sample::select(vec!["a", "b", "c"])) {
            prop_assert!(["a", "b", "c"].contains(&kw));
        }

        #[test]
        fn question_mark_works(n in 0u8..10) {
            let parsed: u8 = format!("{n}")
                .parse()
                .map_err(|e| TestCaseError::fail(format!("{e}")))?;
            prop_assert_eq!(parsed, n);
        }
    }
}
