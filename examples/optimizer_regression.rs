//! Optimizer regression testing with EXPLAIN-style plans (the paper's
//! "optimizer tuning" motivation: "to make database optimizer more robust,
//! it is important to feed the optimizer with a huge number of SQL
//! queries").
//!
//! Generates a constrained workload, explains every query, and diffs the
//! optimizer's estimates against ground-truth execution — exactly the loop
//! an optimizer regression suite runs, with the worst mis-estimates
//! surfaced for investigation.
//!
//! Run with:
//! ```sh
//! cargo run --release --example optimizer_regression
//! ```

use learned_sqlgen::core::{Constraint, GenConfig, LearnedSqlGen};
use learned_sqlgen::engine::{explain, CostModel, Estimator, ExecOptions, Executor};
use learned_sqlgen::storage::gen::Benchmark;

fn main() {
    let db = Benchmark::TpcH.build(0.4, 77);
    let est = Estimator::build(&db);
    let cost = CostModel::default();
    let ex = Executor::with_options(
        &db,
        ExecOptions {
            max_rows: 5_000_000,
            deadline: None,
        },
    );

    // Mid-cardinality SELECTs: the regime where join mis-estimates hide.
    let constraint = Constraint::cardinality_range(50.0, 5_000.0);
    let mut generator = LearnedSqlGen::new(&db, constraint, GenConfig::fast().with_seed(41));
    println!("Training workload generator for {constraint} ...");
    generator.train(400);
    let (workload, _) = generator.generate_satisfied(25, 2_000);
    println!("Workload: {} satisfied queries\n", workload.len());

    // Explain + execute every query; rank by q-error.
    let mut ranked: Vec<(f64, String, f64, u64)> = Vec::new();
    for q in &workload {
        let plan = explain(&est, &cost, &q.statement);
        let real = ex.cardinality(&q.statement).unwrap_or(0);
        let est_rows = plan.rows.max(1.0);
        let real_rows = real.max(1) as f64;
        let qerr = (est_rows / real_rows).max(real_rows / est_rows);
        ranked.push((qerr, q.sql.clone(), plan.rows, real));
    }
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));

    println!("Worst estimator q-errors in the workload:");
    for (qerr, sql, est_rows, real) in ranked.iter().take(5) {
        println!("  q-error {qerr:>7.2}  est {est_rows:>8.0}  real {real:>8}  {sql}");
    }

    let median = ranked[ranked.len() / 2].0;
    println!("\nMedian q-error: {median:.2}");

    // Show the full plan for the single worst offender — what a DBA would
    // paste into the regression ticket.
    let worst_sql = &ranked[0].1;
    let stmt = learned_sqlgen::engine::parse(worst_sql).expect("round-trip");
    println!(
        "\nEXPLAIN for the worst offender:\n{}",
        explain(&est, &cost, &stmt)
    );
}
