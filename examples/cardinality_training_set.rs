//! Building a training corpus for a learned cardinality estimator (the
//! paper's fourth motivating application, citing Han et al. [20]).
//!
//! Learned estimators need many (query, cardinality) pairs that *cover the
//! whole cardinality spectrum* — uniform random generation produces mostly
//! empty or tiny results. This example trains one LearnedSQLGen model per
//! cardinality band and emits a balanced, labelled CSV corpus.
//!
//! Run with:
//! ```sh
//! cargo run --release --example cardinality_training_set
//! ```

use learned_sqlgen::core::{Constraint, GenConfig, LearnedSqlGen};
use learned_sqlgen::engine::Executor;
use learned_sqlgen::storage::gen::Benchmark;
use std::fs;

fn main() {
    let db = Benchmark::Job.build(0.3, 17);
    println!("JOB/IMDB at scale 0.3: {} rows", db.total_rows());

    // Cardinality bands, one decade each.
    let bands = [(1.0, 10.0), (10.0, 100.0), (100.0, 1e3), (1e3, 1e4)];
    let per_band = 15usize;

    let mut csv = String::from("band,estimated_card,real_card,sql\n");
    let ex = Executor::new(&db);

    for (lo, hi) in bands {
        let constraint = Constraint::cardinality_range(lo, hi);
        println!("\nBand [{lo:.0}, {hi:.0}): training ...");
        let mut generator = LearnedSqlGen::new(&db, constraint, GenConfig::fast().with_seed(29));
        generator.train(350);
        let (queries, attempts) = generator.generate_satisfied(per_band, 1_500);
        println!(
            "  {} labelled queries ({} attempts)",
            queries.len(),
            attempts
        );
        for q in &queries {
            // The label a learned estimator trains on: the *real* count.
            let real = ex.cardinality(&q.statement).unwrap_or(0);
            csv.push_str(&format!(
                "[{lo:.0}-{hi:.0}),{:.0},{real},\"{}\"\n",
                q.measured,
                q.sql.replace('"', "\"\"")
            ));
        }
    }

    let path = "cardinality_corpus.csv";
    fs::write(path, &csv).expect("write corpus");
    println!(
        "\nWrote {} ({} lines) — a balanced corpus for estimator training.",
        path,
        csv.lines().count() - 1
    );
}
