//! One-shot fixture dumper: records the exact token streams the pre-kernel
//! code produces for fixed seeds. The output is committed as
//! `crates/sqlgen-rl/tests/fixtures/golden_tokens.json` and guarded by the
//! determinism tests — `threads = 1` must reproduce it bit-for-bit.

use sqlgen_engine::Estimator;
use sqlgen_fsm::Vocabulary;
use sqlgen_rl::{ActorCritic, Constraint, NetConfig, Reinforce, SqlGenEnv, TrainConfig};
use sqlgen_storage::gen::tpch_database;
use sqlgen_storage::sample::SampleConfig;

fn cfg() -> TrainConfig {
    TrainConfig {
        net: NetConfig {
            embed_dim: 16,
            hidden: 16,
            layers: 2,
            dropout: 0.3,
        },
        seed: 5,
        ..Default::default()
    }
}

fn main() {
    let db = tpch_database(0.2, 21);
    let vocab = Vocabulary::build(
        &db,
        &SampleConfig {
            k: 20,
            ..Default::default()
        },
    );
    let est = Estimator::build(&db);
    let env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(100.0, 800.0));

    let mut ac = ActorCritic::new(vocab.size(), cfg());
    let mut ac_train = Vec::new();
    for _ in 0..40 {
        let ep = ac.train_episode(&env);
        ac_train.push(ep.actions.clone());
    }
    let mut ac_generate = Vec::new();
    for _ in 0..10 {
        let ep = ac.generate(&env);
        ac_generate.push(ep.actions.clone());
    }

    let mut rf = Reinforce::new(vocab.size(), cfg());
    let mut rf_train = Vec::new();
    for _ in 0..20 {
        let ep = rf.train_episode(&env);
        rf_train.push(ep.actions.clone());
    }
    let mut rf_generate = Vec::new();
    for _ in 0..5 {
        let ep = rf.generate(&env);
        rf_generate.push(ep.actions.clone());
    }

    fn arr(eps: &[Vec<usize>]) -> String {
        let rows: Vec<String> = eps
            .iter()
            .map(|ep| {
                let toks: Vec<String> = ep.iter().map(|a| a.to_string()).collect();
                format!("[{}]", toks.join(","))
            })
            .collect();
        format!("[{}]", rows.join(","))
    }
    std::fs::write(
        "crates/sqlgen-rl/tests/fixtures/golden_tokens.json",
        format!(
            "{{\"ac_train\":{},\"ac_generate\":{},\"rf_train\":{},\"rf_generate\":{}}}\n",
            arr(&ac_train),
            arr(&ac_generate),
            arr(&rf_train),
            arr(&rf_generate)
        ),
    )
    .expect("write rl fixture");

    // Core-level fixture: the full pipeline (vocab build, training, SQL
    // rendering) for GenConfig::fast().with_seed(5).
    use sqlgen_core::{GenConfig, LearnedSqlGen};
    let mut g = LearnedSqlGen::new(
        &db,
        Constraint::cardinality_range(100.0, 500.0),
        GenConfig::fast().with_seed(5),
    );
    g.train(60);
    let trace_bits: Vec<String> = g
        .stats
        .reward_trace
        .iter()
        .map(|r| r.to_bits().to_string())
        .collect();
    let sql: Vec<String> = g
        .generate(8)
        .into_iter()
        .map(|q| format!("{:?}", q.sql))
        .collect();
    std::fs::write(
        "crates/sqlgen-core/tests/fixtures/golden_pipeline.json",
        format!(
            "{{\"reward_trace_bits\":[{}],\"sql\":[{}]}}\n",
            trace_bits.join(","),
            sql.join(",")
        ),
    )
    .expect("write core fixture");
    println!("fixtures written");
}
