//! Slow-SQL mining (the paper's first motivating application).
//!
//! "Slow SQL diagnosis requires a large volume of SQL queries" — here we
//! ask LearnedSQLGen for queries whose optimizer cost exceeds a threshold
//! band on TPC-H, the workload a DBA would replay against a staging system
//! to stress the optimizer.
//!
//! Run with:
//! ```sh
//! cargo run --release --example slow_query_mining
//! ```

use learned_sqlgen::core::{Constraint, GenConfig, LearnedSqlGen};
use learned_sqlgen::engine::Statement;
use learned_sqlgen::storage::gen::Benchmark;

fn main() {
    let db = Benchmark::TpcH.build(0.5, 11);
    println!("TPC-H at scale 0.5: {} rows", db.total_rows());

    // "Slow" on this scale: cost in the top band our cost model produces
    // for multi-join queries.
    let constraint = Constraint::cost_range(500.0, 50_000.0);
    println!("Mining queries with {constraint}");

    let mut generator = LearnedSqlGen::new(&db, constraint, GenConfig::fast().with_seed(3));
    generator.train(500);

    let (slow, attempts) = generator.generate_satisfied(20, 2_000);
    println!(
        "\nFound {} slow queries in {attempts} attempts:",
        slow.len()
    );
    let mut joins_hist = [0usize; 4];
    for q in &slow {
        if let Statement::Select(s) = &q.statement {
            joins_hist[s.join_count().min(3)] += 1;
        }
        println!("  cost {:>9.1}  {}", q.measured, q.sql);
    }
    println!("\nJoin profile of the mined workload:");
    for (j, n) in joins_hist.iter().enumerate() {
        println!("  {j} joins: {n} queries");
    }
    println!(
        "\nA DBA would now EXPLAIN/replay these against staging to find \
         optimizer blind spots."
    );
}
