//! Database testing with mixed DML workloads (the paper's second
//! motivating application and §7.6's complicated-query generation).
//!
//! Generates a mixed SELECT/INSERT/UPDATE/DELETE workload on the XueTang
//! OLTP schema with bounded per-statement cost — the kind of stream a DBMS
//! test harness replays for regression testing — then actually *applies*
//! the DML against an in-memory copy to prove the stream is executable.
//!
//! Run with:
//! ```sh
//! cargo run --release --example database_testing
//! ```

use learned_sqlgen::core::{Constraint, GenConfig, LearnedSqlGen};
use learned_sqlgen::engine::{Executor, StatementKind};
use learned_sqlgen::fsm::FsmConfig;
use learned_sqlgen::storage::gen::Benchmark;
use std::collections::BTreeMap;

fn main() {
    let db = Benchmark::XueTang.build(0.3, 23);
    println!("XueTang at scale 0.3: {} rows", db.total_rows());

    // Bounded-cost statements: fast enough for a tight regression loop.
    let constraint = Constraint::cost_range(0.01, 200.0);
    let config = GenConfig::fast().with_seed(31).with_fsm(FsmConfig::full());
    let mut generator = LearnedSqlGen::new(&db, constraint, config);
    println!("Training on {constraint} with all statement kinds enabled ...");
    generator.train(400);

    let workload = generator.generate(60);
    let mut by_kind: BTreeMap<&str, usize> = BTreeMap::new();
    for q in &workload {
        *by_kind.entry(q.statement.kind().name()).or_default() += 1;
    }
    println!("\nWorkload mix:");
    for (k, n) in &by_kind {
        println!("  {k:<7} {n}");
    }

    // Replay the stream against a scratch copy of the database.
    let mut scratch = db.clone();
    let mut applied = 0usize;
    let mut rows_touched = 0u64;
    for q in &workload {
        match Executor::apply(&q.statement, &mut scratch) {
            Ok(n) => {
                applied += 1;
                if q.statement.kind() != StatementKind::Select {
                    rows_touched += n;
                }
            }
            Err(e) => panic!("workload statement failed to apply: {e}\n{}", q.sql),
        }
    }
    println!(
        "\nReplayed {applied}/{} statements; DML touched {rows_touched} rows.",
        workload.len()
    );
    println!(
        "Database moved from {} to {} rows — a consistent, replayable test \
         stream.",
        db.total_rows(),
        scratch.total_rows()
    );

    println!("\nSample statements:");
    for q in workload.iter().take(8) {
        println!("  cost {:>8.2}  {}", q.measured, q.sql);
    }
}
