//! Quickstart: the paper's Figure 1 scenario end-to-end.
//!
//! Builds the Score/Student example database, asks for queries whose
//! cardinality lies in a range, trains LearnedSQLGen, and prints the
//! generated SQL with its estimated cardinality.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use learned_sqlgen::core::{Constraint, GenConfig, LearnedSqlGen};
use learned_sqlgen::storage::{ColumnDef, DataType, Database, Table, TableSchema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The two-relation database from Figure 1 of the paper, scaled up enough
/// that cardinality constraints have room to vary.
fn score_student_db() -> Database {
    let mut rng = StdRng::seed_from_u64(2022);
    let mut db = Database::new();

    let mut student = Table::new(
        TableSchema::new("student")
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::categorical("gender", DataType::Text)),
    );
    for i in 0..200i64 {
        student.push_row(vec![
            Value::Int(i),
            Value::Text(if rng.random_bool(0.5) { "F" } else { "M" }.into()),
        ]);
    }
    db.add_table(student);

    let mut score = Table::new(
        TableSchema::new("score")
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_foreign_key("student", "id")
            .with_column(ColumnDef::categorical("course", DataType::Text))
            .with_column(ColumnDef::new("grade", DataType::Float)),
    );
    let courses = ["math", "physics", "db", "ml"];
    for i in 0..2_000i64 {
        score.push_row(vec![
            Value::Int(i % 200),
            Value::Text(courses[rng.random_range(0..courses.len())].into()),
            Value::Float((rng.random_range(400..1000) as f64) / 10.0),
        ]);
    }
    db.add_table(score);
    db
}

fn main() {
    let db = score_student_db();
    println!(
        "Database: {} tables, {} rows total",
        db.len(),
        db.total_rows()
    );

    // The user constraint from Example 1: Cardinality in [100, 300].
    let constraint = Constraint::cardinality_range(100.0, 300.0);
    println!("Constraint: {constraint}");

    let mut generator = LearnedSqlGen::new(&db, constraint, GenConfig::fast().with_seed(7));
    println!("Training ...");
    let stats = generator.train(900);
    println!(
        "  {} episodes, {} satisfied queries discovered during training",
        stats.episodes,
        stats.satisfied_during_training.len()
    );

    println!("\nGenerated queries:");
    let queries = generator.generate(15);
    for q in &queries {
        println!(
            "  [{}] est. card {:>8.0}  {}",
            if q.satisfied { "ok" } else { "  " },
            q.measured,
            q.sql
        );
    }
    let hits = queries.iter().filter(|q| q.satisfied).count();
    println!(
        "\nGeneration accuracy: {}/{} = {:.1}%",
        hits,
        queries.len(),
        100.0 * hits as f64 / queries.len() as f64
    );
}
