//! `sqlgen` — command-line constraint-aware SQL generation.
//!
//! ```sh
//! sqlgen --benchmark tpch --range 1000 2000 --n 10
//! sqlgen --benchmark job --metric cost --point 500 --train 800 --profile
//! sqlgen --benchmark xuetang --range 10 500 --kinds select,delete --execute
//! sqlgen --benchmark tpch --range 1000 2000 --save model.json
//! sqlgen --benchmark tpch --range 1000 2000 --load model.json --train 0
//! sqlgen --benchmark tpch --range 1000 2000 --trace run.jsonl --metrics
//! sqlgen serve --addr 127.0.0.1:8080 --threads 4 --batch 8 --max-queue 64
//! ```

use learned_sqlgen::core::{profile, Constraint, ExecBudget, ExecDb, GenConfig, LearnedSqlGen};
use learned_sqlgen::engine::{ExecOptions, StatementKind};
use learned_sqlgen::fsm::FsmConfig;
use learned_sqlgen::storage::gen::Benchmark;
use learned_sqlgen::storage::{PagedDb, PagedDbWriter, DEFAULT_POOL_BYTES};
use sqlgen_obs::{obs_error, obs_info};
use std::process::exit;
use std::sync::Arc;

struct Args {
    benchmark: Benchmark,
    scale: f64,
    seed: u64,
    metric: String,
    point: Option<f64>,
    range: Option<(f64, f64)>,
    n: usize,
    train: usize,
    threads: usize,
    batch: usize,
    quant: bool,
    kinds: Option<Vec<StatementKind>>,
    execute: bool,
    profile: bool,
    save: Option<String>,
    load: Option<String>,
    db_file: Option<String>,
    reward: String,
    only_satisfied: bool,
    trace: Option<String>,
    metrics: bool,
    quiet: bool,
    json: bool,
}

const USAGE: &str = "\
sqlgen — constraint-aware SQL generation (LearnedSQLGen reproduction)

USAGE:
  sqlgen --benchmark <tpch|job|xuetang> (--point <v> | --range <lo> <hi>) [flags]
  sqlgen serve [serve flags]       run the HTTP generation service (see --help serve)
  sqlgen builddb [builddb flags]   stream a benchmark to a paged .db file

FLAGS:
  --metric <card|cost>    constrained metric (default: card)
  --n <count>             queries to generate (default: 10)
  --train <episodes>      RL training episodes (default: 500; 0 with --load)
  --threads <workers>     rollout worker threads (default: 1 = exact serial)
  --batch <lanes>         lockstep inference lanes (default: 1 = exact serial)
  --quant                 run inference on an int8 quantized weight snapshot
  --scale <sf>            data scale factor (default: 0.3)
  --seed <u64>            RNG seed (default: 42)
  --kinds <k1,k2,..>      statement kinds: select,insert,update,delete
  --only-satisfied        keep generating until --n satisfied queries
  --execute               also report the real (executed) cardinality
  --profile               print a diversity/complexity profile
  --save <path>           save the trained actor as JSON
  --load <path>           load an actor checkpoint before generating
  --db-file <path>        run against a paged database image (from
                          `sqlgen builddb`) instead of regenerating data
  --reward <est|exec>     cardinality reward signal: histogram estimates
                          (default) or real execution within a per-query
                          budget (DESIGN.md §14)
  --trace <path.jsonl>    write structured observability events (JSON lines)
  --metrics               collect latency metrics; print a summary table
  --json                  emit one JSON object per generated query
  --quiet                 suppress informational output";

fn parse_args() -> Args {
    let mut args = Args {
        benchmark: Benchmark::TpcH,
        scale: 0.3,
        seed: 42,
        metric: "card".into(),
        point: None,
        range: None,
        n: 10,
        train: 500,
        threads: 1,
        batch: 1,
        quant: false,
        kinds: None,
        execute: false,
        profile: false,
        save: None,
        load: None,
        db_file: None,
        reward: "est".into(),
        only_satisfied: false,
        trace: None,
        metrics: false,
        quiet: false,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    let fail = |m: &str| -> ! {
        eprintln!("error: {m}\n\n{USAGE}");
        exit(2)
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--benchmark" => {
                args.benchmark = value("--benchmark")
                    .parse()
                    .unwrap_or_else(|e: String| fail(&e))
            }
            "--scale" => args.scale = value("--scale").parse().unwrap_or_else(|_| fail("--scale")),
            "--seed" => args.seed = value("--seed").parse().unwrap_or_else(|_| fail("--seed")),
            "--metric" => args.metric = value("--metric"),
            "--point" => {
                args.point = Some(value("--point").parse().unwrap_or_else(|_| fail("--point")))
            }
            "--range" => {
                let lo = value("--range")
                    .parse()
                    .unwrap_or_else(|_| fail("--range lo"));
                let hi = value("--range")
                    .parse()
                    .unwrap_or_else(|_| fail("--range hi"));
                args.range = Some((lo, hi));
            }
            "--n" => args.n = value("--n").parse().unwrap_or_else(|_| fail("--n")),
            "--train" => args.train = value("--train").parse().unwrap_or_else(|_| fail("--train")),
            "--threads" => {
                args.threads = value("--threads")
                    .parse::<usize>()
                    .unwrap_or_else(|_| fail("--threads"))
                    .max(1)
            }
            "--batch" => {
                args.batch = value("--batch")
                    .parse::<usize>()
                    .unwrap_or_else(|_| fail("--batch"))
                    .max(1)
            }
            "--kinds" => {
                let kinds = value("--kinds")
                    .split(',')
                    .map(|k| match k.trim().to_ascii_lowercase().as_str() {
                        "select" => StatementKind::Select,
                        "insert" => StatementKind::Insert,
                        "update" => StatementKind::Update,
                        "delete" => StatementKind::Delete,
                        other => fail(&format!("unknown kind {other}")),
                    })
                    .collect();
                args.kinds = Some(kinds);
            }
            "--quant" => args.quant = true,
            "--execute" => args.execute = true,
            "--profile" => args.profile = true,
            "--only-satisfied" => args.only_satisfied = true,
            "--save" => args.save = Some(value("--save")),
            "--load" => args.load = Some(value("--load")),
            "--db-file" => args.db_file = Some(value("--db-file")),
            "--reward" => args.reward = value("--reward"),
            "--trace" => args.trace = Some(value("--trace")),
            "--metrics" => args.metrics = true,
            "--json" => args.json = true,
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other => fail(&format!("unknown flag {other}")),
        }
    }
    if args.point.is_none() && args.range.is_none() {
        fail("one of --point or --range is required");
    }
    if args.point.is_some() && args.range.is_some() {
        fail("--point and --range are mutually exclusive");
    }
    if args.reward != "est" && args.reward != "exec" {
        fail("--reward must be est or exec");
    }
    args
}

/// Renders one generated query as a single JSON object line.
fn query_json(
    q: &learned_sqlgen::core::GeneratedQuery,
    real: Option<&Result<u64, String>>,
) -> String {
    let mut fields = serde_json::Map::new();
    fields.insert("sql".to_string(), serde_json::Value::String(q.sql.clone()));
    fields.insert(
        "measured".to_string(),
        serde_json::Value::Number(serde_json::Number::Float(q.measured)),
    );
    fields.insert(
        "satisfied".to_string(),
        serde_json::Value::Bool(q.satisfied),
    );
    match real {
        Some(Ok(rows)) => {
            fields.insert(
                "real".to_string(),
                serde_json::Value::Number(serde_json::Number::UInt(*rows)),
            );
        }
        Some(Err(e)) => {
            fields.insert("real".to_string(), serde_json::Value::Null);
            fields.insert(
                "real_error".to_string(),
                serde_json::Value::String(e.clone()),
            );
        }
        None => {}
    }
    serde_json::Value::Object(fields).to_string()
}

const SERVE_USAGE: &str = "\
sqlgen serve — constraint-aware SQL generation over HTTP

USAGE:
  sqlgen serve [flags]

FLAGS:
  --addr <host:port>      bind address (default: 127.0.0.1:8080; port 0 = ephemeral)
  --event-threads <n>     epoll event-loop threads (default: 2)
  --shards <n>            generation shard workers behind the consistent-hash
                          router on (schema, model-version) (default: 1)
  --cache-mb <mib>        result-cache budget per schema, MiB; 0 disables
                          caching (default: 64)
  --pin-cpus              pin shard workers to CPUs round-robin
  --legacy-pool           use the pre-event-loop thread-per-connection pool
  --threads <workers>     HTTP worker threads, legacy pool only (default: 4)
  --batch <lanes>         lockstep GEMM lanes per generation window (default: 8)
  --quant                 serve int8 quantized snapshots of every model
  --max-queue <n>         admission queue capacity; beyond it 429 (default: 64)
  --max-wait-ms <ms>      batcher window coalescing wait (default: 5)
  --benchmark <name>      served schema: tpch|job|xuetang (default: tpch)
  --scale <sf>            data scale factor (default: 0.3)
  --seed <u64>            RNG seed (default: 42)
  --db-file <path>        cold-start the schema from a paged database image
                          (see `sqlgen builddb`) instead of regenerating;
                          --scale is ignored, --seed still seeds the policy
  --train <episodes>      pre-train the policy before serving (default: 0);
                          needs --point or --range for the training constraint
  --metric <card|cost>    training constraint metric (default: card)
  --point <v>             training constraint: point target
  --range <lo> <hi>       training constraint: range target
  --model-dir <dir>       hot-load *.ckpt checkpoints from this directory
  --trace <path.jsonl>    write structured observability events (JSON lines)
  --trace-ring <n>        completed-trace ring capacity (default: 512)
  --trace-sample <pct>    percent of ordinary traces retained; errors and
                          slowest-decile requests are always kept (default: 10)
  --quiet                 suppress informational output

ENDPOINTS:
  POST /generate   {\"constraint\": {\"metric\": \"cardinality\", \"min\": 1, \"max\": 500},
                    \"n\": 4, \"seed\": 7, \"timeout_ms\": 2000}
  GET  /healthz    200 while accepting, 503 while draining
  GET  /metrics    Prometheus-style text metrics
  GET  /models     the served model per schema
  POST /models/reload  re-scan --model-dir now
  GET  /debug/traces        recent sampled request traces (summaries)
  GET  /debug/traces/<id>   full span tree for one X-Request-Id
  GET  /debug/slowest       slowest retained traces";

fn serve_main(argv: Vec<String>) -> ! {
    let fail = |m: &str| -> ! {
        eprintln!("error: {m}\n\n{SERVE_USAGE}");
        exit(2)
    };
    let mut config = learned_sqlgen::serve::ServeConfig::default();
    let mut benchmark = Benchmark::TpcH;
    let mut scale = 0.3f64;
    let mut seed = 42u64;
    let mut train = 0usize;
    let mut metric = String::from("card");
    let mut point: Option<f64> = None;
    let mut range: Option<(f64, f64)> = None;
    let mut model_dir: Option<String> = None;
    let mut db_file: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut quant = false;
    let mut quiet = false;
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--threads" => {
                config.threads = value("--threads")
                    .parse::<usize>()
                    .unwrap_or_else(|_| fail("--threads"))
                    .max(1)
            }
            "--batch" => {
                config.batch = value("--batch")
                    .parse::<usize>()
                    .unwrap_or_else(|_| fail("--batch"))
                    .max(1)
            }
            "--max-queue" => {
                config.max_queue = value("--max-queue")
                    .parse::<usize>()
                    .unwrap_or_else(|_| fail("--max-queue"))
                    .max(1)
            }
            "--max-wait-ms" => {
                config.max_wait_ms = value("--max-wait-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--max-wait-ms"))
            }
            "--event-threads" => {
                config.event_threads = value("--event-threads")
                    .parse::<usize>()
                    .unwrap_or_else(|_| fail("--event-threads"))
                    .max(1)
            }
            "--shards" => {
                config.shards = value("--shards")
                    .parse::<usize>()
                    .unwrap_or_else(|_| fail("--shards"))
                    .max(1)
            }
            "--cache-mb" => {
                config.cache_mb = value("--cache-mb")
                    .parse::<usize>()
                    .unwrap_or_else(|_| fail("--cache-mb"))
            }
            "--pin-cpus" => config.pin_cpus = true,
            "--legacy-pool" => config.legacy_pool = true,
            "--benchmark" => {
                benchmark = value("--benchmark")
                    .parse()
                    .unwrap_or_else(|e: String| fail(&e))
            }
            "--scale" => scale = value("--scale").parse().unwrap_or_else(|_| fail("--scale")),
            "--seed" => seed = value("--seed").parse().unwrap_or_else(|_| fail("--seed")),
            "--train" => train = value("--train").parse().unwrap_or_else(|_| fail("--train")),
            "--metric" => metric = value("--metric"),
            "--point" => point = Some(value("--point").parse().unwrap_or_else(|_| fail("--point"))),
            "--range" => {
                let lo = value("--range")
                    .parse()
                    .unwrap_or_else(|_| fail("--range lo"));
                let hi = value("--range")
                    .parse()
                    .unwrap_or_else(|_| fail("--range hi"));
                range = Some((lo, hi));
            }
            "--model-dir" => model_dir = Some(value("--model-dir")),
            "--db-file" => db_file = Some(value("--db-file")),
            "--quant" => quant = true,
            "--trace" => trace = Some(value("--trace")),
            "--trace-ring" => {
                config.trace_capacity = value("--trace-ring")
                    .parse::<usize>()
                    .unwrap_or_else(|_| fail("--trace-ring"))
                    .max(1)
            }
            "--trace-sample" => {
                config.trace_sample_pct = value("--trace-sample")
                    .parse::<u64>()
                    .unwrap_or_else(|_| fail("--trace-sample"))
                    .min(100)
            }
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!("{SERVE_USAGE}");
                exit(0);
            }
            other => fail(&format!("unknown serve flag {other}")),
        }
    }

    if quiet {
        sqlgen_obs::set_level(sqlgen_obs::Level::Warn);
    }
    // /metrics is part of the service surface; always collect.
    sqlgen_obs::enable_metrics();
    if let Some(path) = &trace {
        let sink = sqlgen_obs::JsonlSink::create(std::path::Path::new(path)).unwrap_or_else(|e| {
            obs_error!("cannot create trace file {path}: {e}");
            exit(1);
        });
        sqlgen_obs::install_sink(Arc::new(sink));
    }

    // Cold-start from a persisted image when given one: loading columnar
    // tables from slotted pages skips the (much slower) row generation +
    // statistics resampling of a fresh build.
    let db = match &db_file {
        Some(path) => {
            obs_info!("cold-starting {} from {path} ...", benchmark.name());
            let t0 = std::time::Instant::now();
            let paged = PagedDb::open(std::path::Path::new(path), DEFAULT_POOL_BYTES)
                .unwrap_or_else(|e| {
                    obs_error!("cannot open {path}: {e}");
                    exit(1);
                });
            let db = paged.load_database().unwrap_or_else(|e| {
                obs_error!("cannot load {path}: {e}");
                exit(1);
            });
            obs_info!(
                "loaded {} rows in {:.0} ms",
                db.total_rows(),
                t0.elapsed().as_secs_f64() * 1e3
            );
            db
        }
        None => {
            obs_info!(
                "building {} at scale {scale} (seed {seed}) ...",
                benchmark.name()
            );
            benchmark.build(scale, seed)
        }
    };
    let gen_config = GenConfig::default().with_seed(seed).with_quantize(quant);

    let schema = learned_sqlgen::serve::Schema::build(
        benchmark.name(),
        &db,
        &gen_config,
        model_dir.map(std::path::PathBuf::from),
        config.max_queue,
    );

    if train > 0 {
        let constraint = match (metric.as_str(), point, range) {
            ("card", Some(p), _) => Constraint::cardinality_point(p),
            ("card", _, Some((lo, hi))) => Constraint::cardinality_range(lo, hi),
            ("cost", Some(p), _) => Constraint::cost_point(p),
            ("cost", _, Some((lo, hi))) => Constraint::cost_range(lo, hi),
            ("card" | "cost", None, None) => {
                fail("--train needs a training constraint (--point or --range)")
            }
            (m, _, _) => fail(&format!("unknown metric {m} (card|cost)")),
        };
        obs_info!("training {train} episodes for {constraint} before serving ...");
        let mut generator = LearnedSqlGen::new(&db, constraint, gen_config.clone());
        generator.train(train);
        schema.publish_actor("trained", 1, generator.checkpoint().actor);
    }

    let addr = config.addr.clone();
    let handle = learned_sqlgen::serve::serve(config, vec![schema]).unwrap_or_else(|e| {
        obs_error!("cannot bind {addr}: {e}");
        exit(1);
    });
    obs_info!("serving on http://{}", handle.addr());
    obs_info!(
        "try: curl -s http://{}/generate -d \
         '{{\"constraint\":{{\"metric\":\"cardinality\",\"min\":1,\"max\":500}},\"n\":2}}'",
        handle.addr()
    );
    // Serve until the process is killed; there is no portable std-only
    // signal hook, so drain-on-SIGTERM is the container runtime's job.
    loop {
        std::thread::park();
    }
}

const BUILDDB_USAGE: &str = "\
sqlgen builddb — stream a benchmark database to a paged .db image

The generators stream row-by-row into the slotted-page writer, holding one
page per table in memory, so scale factors far beyond RAM are buildable.
The image cold-starts `sqlgen --db-file`, `sqlgen serve --db-file` and the
execution-reward mode without regenerating data.

USAGE:
  sqlgen builddb --out <path.db> [flags]

FLAGS:
  --out <path>            output file (required)
  --benchmark <name>      tpch|job|xuetang (default: tpch)
  --scale <sf>            data scale factor (default: 0.3)
  --seed <u64>            RNG seed (default: 42)
  --quiet                 suppress informational output";

fn builddb_main(argv: Vec<String>) -> ! {
    let fail = |m: &str| -> ! {
        eprintln!("error: {m}\n\n{BUILDDB_USAGE}");
        exit(2)
    };
    let mut benchmark = Benchmark::TpcH;
    let mut scale = 0.3f64;
    let mut seed = 42u64;
    let mut out: Option<String> = None;
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--benchmark" => {
                benchmark = value("--benchmark")
                    .parse()
                    .unwrap_or_else(|e: String| fail(&e))
            }
            "--scale" => scale = value("--scale").parse().unwrap_or_else(|_| fail("--scale")),
            "--seed" => seed = value("--seed").parse().unwrap_or_else(|_| fail("--seed")),
            "--out" => out = Some(value("--out")),
            "--quiet" | "-q" => sqlgen_obs::set_level(sqlgen_obs::Level::Warn),
            "--help" | "-h" => {
                println!("{BUILDDB_USAGE}");
                exit(0);
            }
            other => fail(&format!("unknown builddb flag {other}")),
        }
    }
    let Some(out) = out else {
        fail("--out is required");
    };
    let path = std::path::Path::new(&out);
    obs_info!(
        "streaming {} at scale {scale} (seed {seed}) to {out} ...",
        benchmark.name()
    );
    let mut writer = PagedDbWriter::create(path).unwrap_or_else(|e| {
        obs_error!("cannot create {out}: {e}");
        exit(1);
    });
    benchmark
        .build_into(scale, seed, &mut writer)
        .and_then(|()| writer.finish())
        .unwrap_or_else(|e| {
            obs_error!("builddb failed: {e}");
            exit(1);
        });
    // Reopen read-only to verify every checksum before declaring success.
    let db = PagedDb::open(path, DEFAULT_POOL_BYTES).unwrap_or_else(|e| {
        obs_error!("reopen failed: {e}");
        exit(1);
    });
    if let Err(e) = db.verify() {
        obs_error!("verification failed: {e}");
        exit(1);
    }
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    obs_info!(
        "wrote {out}: {} tables, {} rows, {:.1} MiB (checksums verified)",
        learned_sqlgen::storage::DbRead::table_names(&db).len(),
        db.total_rows(),
        bytes as f64 / (1024.0 * 1024.0)
    );
    exit(0)
}

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("serve") {
        argv.remove(0);
        serve_main(argv);
    }
    if argv.first().map(String::as_str) == Some("builddb") {
        argv.remove(0);
        builddb_main(argv);
    }
    let args = parse_args();
    if args.quiet {
        sqlgen_obs::set_level(sqlgen_obs::Level::Warn);
    }
    if args.metrics {
        sqlgen_obs::enable_metrics();
    }
    if let Some(path) = &args.trace {
        let sink = sqlgen_obs::JsonlSink::create(std::path::Path::new(path)).unwrap_or_else(|e| {
            obs_error!("cannot create trace file {path}: {e}");
            exit(1);
        });
        sqlgen_obs::install_sink(Arc::new(sink));
    }

    let constraint = match (args.metric.as_str(), args.point, args.range) {
        ("card", Some(p), _) => Constraint::cardinality_point(p),
        ("card", _, Some((lo, hi))) => Constraint::cardinality_range(lo, hi),
        ("cost", Some(p), _) => Constraint::cost_point(p),
        ("cost", _, Some((lo, hi))) => Constraint::cost_range(lo, hi),
        (m, _, _) => {
            obs_error!("unknown metric {m} (card|cost)");
            exit(2);
        }
    };

    // The store the generator trains against: a cold-started paged image
    // (`--db-file`) or the freshly generated in-memory benchmark. Both go
    // through `ExecDb` so `--reward exec` and `--execute` work on either.
    let exec_db: Arc<ExecDb> = match &args.db_file {
        Some(path) => {
            obs_info!("opening paged database {path} ...");
            let paged = PagedDb::open(std::path::Path::new(path), DEFAULT_POOL_BYTES)
                .unwrap_or_else(|e| {
                    obs_error!("cannot open {path}: {e}");
                    exit(1);
                });
            Arc::new(ExecDb::Paged(paged))
        }
        None => {
            obs_info!(
                "building {} at scale {} (seed {}) ...",
                args.benchmark.name(),
                args.scale,
                args.seed
            );
            let _s = sqlgen_obs::obs_span!("cli.build_db");
            Arc::new(ExecDb::Mem(args.benchmark.build(args.scale, args.seed)))
        }
    };

    let mut config = GenConfig::default()
        .with_seed(args.seed)
        .with_threads(args.threads)
        .with_batch_size(args.batch)
        .with_quantize(args.quant);
    if let Some(kinds) = &args.kinds {
        config.fsm = FsmConfig::default().with_statements(kinds);
    }
    if args.reward == "exec" {
        config = config.with_execute_rewards(ExecBudget::default());
    }
    let mut generator = LearnedSqlGen::from_exec_db(exec_db.clone(), constraint, config);

    if let Some(path) = &args.load {
        let json = std::fs::read_to_string(path).unwrap_or_else(|e| {
            obs_error!("cannot read {path}: {e}");
            exit(1);
        });
        generator.load_actor(&json).unwrap_or_else(|e| {
            obs_error!("bad checkpoint {path}: {e}");
            exit(1);
        });
        obs_info!("loaded actor from {path}");
    }

    let train = if args.load.is_some() && args.train == 500 {
        0 // default to no re-training when a checkpoint was loaded
    } else {
        args.train
    };
    if train > 0 {
        obs_info!("training {train} episodes for {constraint} ...");
        let stats = generator.train(train);
        obs_info!(
            "  {} satisfied queries found during training",
            stats.satisfied_during_training.len()
        );
    }

    let queries = if args.only_satisfied {
        let (qs, attempts) = generator.generate_satisfied(args.n, args.n * 200);
        obs_info!("{} satisfied in {attempts} attempts", qs.len());
        qs
    } else {
        generator.generate(args.n)
    };

    let exec_opts = ExecOptions {
        max_rows: 5_000_000,
        deadline: None,
    };
    for q in &queries {
        let real = args.execute.then(|| {
            exec_db
                .cardinality(&q.statement, exec_opts.clone())
                .map_err(|e| e.to_string())
        });
        if args.json {
            println!("{}", query_json(q, real.as_ref()));
        } else {
            let mark = if q.satisfied { "ok" } else { "--" };
            match real {
                Some(Ok(rows)) => {
                    println!("[{mark}] est={:.0} real={rows}\t{}", q.measured, q.sql)
                }
                Some(Err(e)) => {
                    println!("[{mark}] est={:.0} real=error: {e}\t{}", q.measured, q.sql)
                }
                None => println!("[{mark}] est={:.0}\t{}", q.measured, q.sql),
            }
        }
    }
    let hits = queries.iter().filter(|q| q.satisfied).count();
    obs_info!(
        "accuracy: {hits}/{} = {:.1}%",
        queries.len(),
        100.0 * hits as f64 / queries.len().max(1) as f64
    );

    if args.profile {
        let r = profile(&queries);
        obs_info!("\nworkload profile:");
        obs_info!("  distinct SQL ratio : {:.2}", r.distinct_ratio);
        obs_info!("  structure entropy  : {:.2} bits", r.structure_entropy);
        obs_info!(
            "  multi-join share   : {:.1}%",
            100.0 * r.multi_join_share()
        );
        obs_info!("  nested share       : {:.1}%", 100.0 * r.nested_share());
        obs_info!(
            "  aggregated share   : {:.1}%",
            100.0 * r.aggregated_share()
        );
        obs_info!("  statement kinds    : {:?}", r.kinds);
    }

    if let Some(path) = &args.save {
        generator
            .write_checkpoint(std::path::Path::new(path))
            .unwrap_or_else(|e| {
                obs_error!("cannot write {path}: {e}");
                exit(1);
            });
        obs_info!("saved checkpoint to {path}");
    }

    if args.metrics {
        let table = sqlgen_obs::metrics::summary_table();
        if args.json {
            // Keep stdout pure JSON lines; the table goes to stderr.
            eprint!("{}", table.to_markdown());
        } else {
            table.print();
        }
    }
    if args.trace.is_some() {
        sqlgen_obs::metrics::emit_summary_events();
        sqlgen_obs::clear_sink();
        obs_info!("wrote trace to {}", args.trace.as_deref().unwrap_or(""));
    }
}
