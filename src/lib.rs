//! # LearnedSQLGen — constraint-aware SQL generation using reinforcement learning
//!
//! A from-scratch Rust reproduction of the SIGMOD'22 paper
//! *"LearnedSQLGen: Constraint-aware SQL Generation using Reinforcement
//! Learning"* (Zhang, Chai, Zhou, Li).
//!
//! This facade crate re-exports the workspace crates so downstream users can
//! depend on a single package:
//!
//! * [`storage`] — in-memory columnar tables, statistics and the three
//!   benchmark data generators (TPC-H, JOB/IMDB, XueTang shapes).
//! * [`engine`] — SQL AST, renderer, parser, executor, cardinality
//!   estimator and cost model.
//! * [`nn`] — the pure-Rust neural-network substrate (LSTM, Adam, ...).
//! * [`fsm`] — the finite-state machine guaranteeing query validity.
//! * [`rl`] — REINFORCE, actor-critic and meta-critic algorithms.
//! * [`core`] — the `LearnedSqlGen` generator itself.
//! * [`serve`] — the HTTP generation service (dynamic batching, admission
//!   control, model registry).
//! * [`baselines`] — SQLsmith-style random and template-based baselines.
//!
//! ## Quickstart
//!
//! ```no_run
//! use learned_sqlgen::core::{Constraint, GenConfig, LearnedSqlGen};
//! use learned_sqlgen::storage::gen::Benchmark;
//!
//! let db = Benchmark::TpcH.build(1.0, 42);
//! let constraint = Constraint::cardinality_range(1_000.0, 2_000.0);
//! let mut generator = LearnedSqlGen::new(&db, constraint, GenConfig::default());
//! generator.train(200);
//! for q in generator.generate(10) {
//!     println!("{}", q.sql);
//! }
//! ```

pub use sqlgen_baselines as baselines;
pub use sqlgen_core as core;
pub use sqlgen_engine as engine;
pub use sqlgen_fsm as fsm;
pub use sqlgen_nn as nn;
pub use sqlgen_rl as rl;
pub use sqlgen_serve as serve;
pub use sqlgen_storage as storage;
