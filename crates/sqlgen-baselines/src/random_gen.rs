//! SQLsmith-style random baseline (paper §7.1 "SQLSmith").
//!
//! "Randomly generated SQLs based on a parse tree, from which we picked the
//! queries satisfying the constraints." Our random walk runs over the same
//! FSM the RL agent uses, so every query is valid — strictly *stronger*
//! than the original SQLsmith, which makes the reported accuracy gaps
//! conservative.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqlgen_engine::Statement;
use sqlgen_fsm::{random_statement, FsmConfig, Vocabulary};
use sqlgen_rl::SqlGenEnv;

/// Uniform-random query generator.
pub struct RandomGen {
    rng: StdRng,
}

impl RandomGen {
    pub fn new(seed: u64) -> Self {
        RandomGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generates one random valid statement.
    pub fn generate(&mut self, vocab: &Vocabulary, cfg: &FsmConfig) -> Statement {
        random_statement(vocab, cfg, &mut self.rng).0
    }

    /// Generate-and-filter: keep sampling until `n` satisfied queries are
    /// found or `max_attempts` is exhausted. Returns `(satisfied, attempts)`.
    pub fn find_satisfied(
        &mut self,
        env: &SqlGenEnv,
        n: usize,
        max_attempts: usize,
    ) -> (Vec<Statement>, usize) {
        let mut out = Vec::with_capacity(n);
        let mut attempts = 0;
        while out.len() < n && attempts < max_attempts {
            attempts += 1;
            let stmt = self.generate(env.vocab, &env.fsm_config);
            if env.satisfies(&stmt) {
                out.push(stmt);
            }
        }
        (out, attempts)
    }

    /// Accuracy over `n` random queries (fraction satisfying the
    /// constraint) — the paper's metric for the SQLSmith row.
    pub fn accuracy(&mut self, env: &SqlGenEnv, n: usize) -> f64 {
        let mut hits = 0;
        for _ in 0..n {
            let stmt = self.generate(env.vocab, &env.fsm_config);
            if env.satisfies(&stmt) {
                hits += 1;
            }
        }
        hits as f64 / n.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlgen_engine::Estimator;
    use sqlgen_rl::Constraint;
    use sqlgen_storage::gen::tpch_database;
    use sqlgen_storage::sample::SampleConfig;

    fn setup() -> (sqlgen_storage::Database, Vocabulary, Estimator) {
        let db = tpch_database(0.2, 4);
        let vocab = Vocabulary::build(
            &db,
            &SampleConfig {
                k: 10,
                ..Default::default()
            },
        );
        let est = Estimator::build(&db);
        (db, vocab, est)
    }

    #[test]
    fn random_statements_are_valid() {
        let (db, vocab, _) = setup();
        let mut g = RandomGen::new(1);
        for _ in 0..50 {
            let stmt = g.generate(&vocab, &FsmConfig::default());
            sqlgen_engine::validate(&db, &stmt).unwrap();
        }
    }

    #[test]
    fn find_satisfied_filters_correctly() {
        let (_db, vocab, est) = setup();
        let env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(1.0, 1e9));
        let mut g = RandomGen::new(2);
        let (found, attempts) = g.find_satisfied(&env, 5, 100);
        assert_eq!(found.len(), 5, "loose constraint should be easy");
        assert!(attempts >= 5);
        for s in &found {
            assert!(env.satisfies(s));
        }
    }

    #[test]
    fn impossible_constraint_exhausts_budget() {
        let (_db, vocab, est) = setup();
        let env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(1e14, 1e15));
        let mut g = RandomGen::new(3);
        let (found, attempts) = g.find_satisfied(&env, 1, 50);
        assert!(found.is_empty());
        assert_eq!(attempts, 50);
    }

    #[test]
    fn tight_constraints_have_lower_accuracy() {
        let (_db, vocab, est) = setup();
        let mut g = RandomGen::new(4);
        let loose = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(1.0, 1e9));
        let tight = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(777.0, 779.0));
        let acc_loose = g.accuracy(&loose, 100);
        let acc_tight = g.accuracy(&tight, 100);
        assert!(acc_loose > acc_tight);
    }
}
