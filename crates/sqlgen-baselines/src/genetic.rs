//! Genetic-algorithm baseline after Bati et al. [8] (paper related work:
//! "a genetic approach for random testing of database systems").
//!
//! Bati et al. evolve a population of queries through random mutations
//! (addition/removal of predicates, operand tweaks) selected by a fitness
//! function. The paper cites it as a constraint-blind random tester; here
//! the fitness *is* the constraint reward, making it a third, stronger
//! baseline between pure random search and the learned policy:
//!
//! * population of valid statements (seeded from FSM rollouts),
//! * mutations: re-tune a predicate literal, add/drop a predicate atom,
//!   regenerate the whole statement (structure-level mutation),
//! * tournament selection by §4.2 reward, elitism for the best individual.

use crate::template::{hole_columns, set_holes, visit_statement_values};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlgen_engine::Statement;
use sqlgen_fsm::{random_statement, FsmConfig, Token, Vocabulary};
use sqlgen_rl::SqlGenEnv;
use sqlgen_storage::Value;

/// GA hyper-parameters.
#[derive(Debug, Clone)]
pub struct GeneticConfig {
    pub population: usize,
    pub generations_per_attempt: usize,
    /// Probability of a structural mutation (full regeneration) vs a
    /// literal mutation.
    pub structure_mutation_rate: f64,
    pub tournament: usize,
}

impl Default for GeneticConfig {
    fn default() -> Self {
        GeneticConfig {
            population: 16,
            generations_per_attempt: 6,
            structure_mutation_rate: 0.25,
            tournament: 3,
        }
    }
}

/// The genetic baseline generator.
pub struct GeneticGen {
    pub cfg: GeneticConfig,
    rng: StdRng,
    population: Vec<Statement>,
}

impl GeneticGen {
    /// Seeds the population with FSM rollouts.
    pub fn new(vocab: &Vocabulary, fsm: &FsmConfig, cfg: GeneticConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6e6e);
        let population = (0..cfg.population)
            .map(|_| random_statement(vocab, fsm, &mut rng).0)
            .collect();
        GeneticGen {
            cfg,
            rng,
            population,
        }
    }

    fn fitness(env: &SqlGenEnv, stmt: &Statement) -> f64 {
        env.constraint.reward(env.measure(stmt))
    }

    /// One literal mutation: replace a random hole with a random candidate
    /// from the vocabulary's value pool for that column.
    fn mutate_literal(&mut self, env: &SqlGenEnv, stmt: &mut Statement) {
        let holes = hole_columns(stmt);
        if holes.is_empty() {
            return;
        }
        let target = self.rng.random_range(0..holes.len());
        // Current hole values, with the target replaced.
        let mut values: Vec<Value> = Vec::with_capacity(holes.len());
        visit_statement_values(stmt, &mut |_, v| values.push(v.clone()));
        let vocab = env.vocab;
        let col = &holes[target];
        if let Some(cid) = vocab
            .columns
            .iter()
            .position(|c| vocab.tables[c.table as usize] == col.table && c.name == col.column)
        {
            let pool = vocab.value_tokens_of(cid as u32);
            if !pool.is_empty() {
                let pick = pool[self.rng.random_range(0..pool.len())];
                if let Token::Value(vid) = vocab.token(pick as usize) {
                    values[target] = vocab.values[*vid as usize].1.clone();
                }
            }
        }
        set_holes(stmt, &values);
    }

    /// One evolution round over the population; returns the best individual
    /// and its fitness.
    pub fn evolve(&mut self, env: &SqlGenEnv) -> (Statement, f64) {
        for _ in 0..self.cfg.generations_per_attempt {
            let scored: Vec<f64> = self
                .population
                .iter()
                .map(|s| Self::fitness(env, s))
                .collect();
            let best_idx = scored
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .unwrap_or(0);

            let mut next = Vec::with_capacity(self.population.len());
            // Elitism: the champion survives unchanged.
            next.push(self.population[best_idx].clone());
            while next.len() < self.population.len() {
                // Tournament selection.
                let mut winner = self.rng.random_range(0..self.population.len());
                for _ in 1..self.cfg.tournament {
                    let challenger = self.rng.random_range(0..self.population.len());
                    if scored[challenger] > scored[winner] {
                        winner = challenger;
                    }
                }
                let mut child = self.population[winner].clone();
                if self.rng.random::<f64>() < self.cfg.structure_mutation_rate {
                    // Structural mutation: brand-new individual.
                    child = random_statement(env.vocab, &env.fsm_config, &mut self.rng).0;
                } else {
                    self.mutate_literal(env, &mut child);
                }
                next.push(child);
            }
            self.population = next;
        }
        let (best, fit) = self
            .population
            .iter()
            .map(|s| (s, Self::fitness(env, s)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty population");
        (best.clone(), fit)
    }

    /// Generate-until-satisfied driver, mirroring the other baselines.
    pub fn find_satisfied(
        &mut self,
        env: &SqlGenEnv,
        n: usize,
        max_attempts: usize,
    ) -> (Vec<Statement>, usize) {
        let mut out: Vec<Statement> = Vec::with_capacity(n);
        let mut attempts = 0;
        while out.len() < n && attempts < max_attempts {
            attempts += 1;
            let (best, _) = self.evolve(env);
            if env.satisfies(&best) && !out.contains(&best) {
                out.push(best);
            }
        }
        (out, attempts)
    }

    /// Fraction of evolution attempts whose champion satisfies the
    /// constraint.
    pub fn accuracy(&mut self, env: &SqlGenEnv, n: usize) -> f64 {
        let mut hits = 0;
        for _ in 0..n {
            let (best, _) = self.evolve(env);
            if env.satisfies(&best) {
                hits += 1;
            }
        }
        hits as f64 / n.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlgen_engine::Estimator;
    use sqlgen_rl::Constraint;
    use sqlgen_storage::gen::tpch_database;
    use sqlgen_storage::sample::SampleConfig;

    fn setup() -> (sqlgen_storage::Database, Vocabulary, Estimator) {
        let db = tpch_database(0.25, 4);
        let vocab = Vocabulary::build(
            &db,
            &SampleConfig {
                k: 20,
                ..Default::default()
            },
        );
        let est = Estimator::build(&db);
        (db, vocab, est)
    }

    #[test]
    fn population_individuals_are_valid() {
        let (db, vocab, est) = setup();
        let env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(1.0, 1e6));
        let mut g = GeneticGen::new(&vocab, &env.fsm_config, GeneticConfig::default(), 1);
        for _ in 0..3 {
            let (best, _) = g.evolve(&env);
            sqlgen_engine::validate(&db, &best).unwrap();
        }
        for s in &g.population {
            sqlgen_engine::validate(&db, s).unwrap();
        }
    }

    #[test]
    fn evolution_improves_fitness_over_random() {
        let (_db, vocab, est) = setup();
        let constraint = Constraint::cardinality_range(200.0, 400.0);
        let env = SqlGenEnv::new(&vocab, &est, constraint);
        // Random champion fitness: best of population without evolution.
        let mut g = GeneticGen::new(&vocab, &env.fsm_config, GeneticConfig::default(), 2);
        let random_best: f64 = g
            .population
            .iter()
            .map(|s| GeneticGen::fitness(&env, s))
            .fold(0.0, f64::max);
        let (_, evolved) = g.evolve(&env);
        assert!(
            evolved >= random_best,
            "evolution regressed: {evolved} < {random_best}"
        );
    }

    #[test]
    fn beats_pure_random_on_point_constraints() {
        let (_db, vocab, est) = setup();
        let constraint = Constraint::cardinality_point(500.0);
        let env = SqlGenEnv::new(&vocab, &est, constraint);
        let mut genetic = GeneticGen::new(&vocab, &env.fsm_config, GeneticConfig::default(), 3);
        let genetic_acc = genetic.accuracy(&env, 20);
        let mut random = crate::RandomGen::new(3);
        let random_acc = random.accuracy(&env, 20 * 16 * 6); // same query budget
        assert!(
            genetic_acc > random_acc,
            "genetic {genetic_acc:.3} vs random {random_acc:.3}"
        );
    }

    #[test]
    fn find_satisfied_respects_budget_and_dedups() {
        let (_db, vocab, est) = setup();
        let env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(1e13, 1e14));
        let mut g = GeneticGen::new(&vocab, &env.fsm_config, GeneticConfig::default(), 4);
        let (found, attempts) = g.find_satisfied(&env, 2, 5);
        assert!(found.is_empty());
        assert_eq!(attempts, 5);
    }
}
