//! Baseline generators the paper compares against (§7.1).
//!
//! * [`random_gen`] — SQLsmith-equivalent: uniform random walks over the
//!   validity FSM, generate-and-filter;
//! * [`template`] — Bruno/Mishra-style template tuning: hill climbing over
//!   predicate values with top-k space pruning;
//! * [`genetic`] — a Bati-style genetic algorithm (related-work [8]),
//!   included as an extension baseline.

pub mod genetic;
pub mod random_gen;
pub mod template;

pub use genetic::{GeneticConfig, GeneticGen};
pub use random_gen::RandomGen;
pub use template::{hole_columns, set_holes, visit_statement_values, TemplateGen};
