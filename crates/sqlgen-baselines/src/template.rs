//! Template-based baseline (paper §7.1 "Template", after Bruno et al. [10]
//! and Mishra et al. [38]).
//!
//! A template is a statement whose predicate literals are tunable holes
//! ("the x in R.a < x"). Tuning combines the two published techniques:
//!
//! * **Mishra-style space pruning**: probe a batch of random hole
//!   assignments, keep the top-k by closeness to the constraint;
//! * **Bruno-style hill climbing**: from each surviving assignment, greedily
//!   move individual holes up/down the sorted candidate-value lists while
//!   the constraint distance shrinks.
//!
//! The template pool is built by "reassembling the predicates" of FSM
//! rollouts (as the paper constructs its template sets from the benchmarks'
//! provided templates), or supplied directly as SQL text.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlgen_engine::{ColRef, Predicate, Rhs, SelectQuery, Statement};
use sqlgen_fsm::{random_statement, FsmConfig, Vocabulary};
use sqlgen_rl::SqlGenEnv;
use sqlgen_storage::Value;

/// Visits every tunable literal (column, value) pair in a predicate,
/// including inside nested subqueries.
fn visit_pred_values<F: FnMut(&ColRef, &mut Value)>(p: &mut Predicate, f: &mut F) {
    match p {
        Predicate::Cmp { col, rhs, .. } => match rhs {
            Rhs::Value(v) => f(col, v),
            Rhs::Subquery(sub) => visit_select_values(sub, f),
        },
        Predicate::Like { .. } => {} // patterns are not value-pool tunable
        Predicate::In { sub, .. } | Predicate::Exists { sub } => visit_select_values(sub, f),
        Predicate::Not(inner) => visit_pred_values(inner, f),
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            visit_pred_values(a, f);
            visit_pred_values(b, f);
        }
    }
}

fn visit_select_values<F: FnMut(&ColRef, &mut Value)>(q: &mut SelectQuery, f: &mut F) {
    if let Some(p) = &mut q.predicate {
        visit_pred_values(p, f);
    }
    if let Some(h) = &mut q.having {
        match &mut h.rhs {
            Rhs::Value(v) => f(&h.col, v),
            Rhs::Subquery(sub) => visit_select_values(sub, f),
        }
    }
}

/// Visits every tunable literal in a statement.
pub fn visit_statement_values<F: FnMut(&ColRef, &mut Value)>(s: &mut Statement, f: &mut F) {
    match s {
        Statement::Select(q) => visit_select_values(q, f),
        Statement::Update(u) => {
            if let Some(p) = &mut u.predicate {
                visit_pred_values(p, f);
            }
        }
        Statement::Delete(d) => {
            if let Some(p) = &mut d.predicate {
                visit_pred_values(p, f);
            }
        }
        Statement::Insert(_) => {}
    }
}

/// The column of every hole, in visit order.
pub fn hole_columns(s: &Statement) -> Vec<ColRef> {
    let mut out = Vec::new();
    let mut clone = s.clone();
    visit_statement_values(&mut clone, &mut |col, _| out.push(col.clone()));
    out
}

/// Overwrites the statement's holes with `values` (in visit order).
pub fn set_holes(s: &mut Statement, values: &[Value]) {
    let mut i = 0;
    visit_statement_values(s, &mut |_, v| {
        if let Some(nv) = values.get(i) {
            *v = nv.clone();
        }
        i += 1;
    });
    debug_assert_eq!(i, values.len(), "hole count mismatch");
}

/// Template-based generator.
pub struct TemplateGen {
    pub templates: Vec<Statement>,
    rng: StdRng,
    /// Random probes for the Mishra pruning phase.
    pub probes: usize,
    /// Assignments kept after pruning (hill-climb starts).
    pub top_k: usize,
    /// Maximum hill-climbing sweeps per start.
    pub climb_sweeps: usize,
    next_template: usize,
}

impl TemplateGen {
    /// Builds a template pool from FSM rollouts: statements with at least
    /// one tunable hole, deduplicated by structure.
    pub fn from_rollouts(vocab: &Vocabulary, cfg: &FsmConfig, n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut templates = Vec::with_capacity(n);
        let mut guard = 0;
        while templates.len() < n && guard < n * 50 {
            guard += 1;
            let (stmt, _) = random_statement(vocab, cfg, &mut rng);
            if !hole_columns(&stmt).is_empty() {
                templates.push(stmt);
            }
        }
        TemplateGen::from_statements(templates, seed ^ 0x7e3a)
    }

    pub fn from_statements(templates: Vec<Statement>, seed: u64) -> Self {
        TemplateGen {
            templates,
            rng: StdRng::seed_from_u64(seed),
            probes: 12,
            top_k: 3,
            climb_sweeps: 8,
            next_template: 0,
        }
    }

    /// Sorted candidate values for a hole's column, from the action space.
    fn candidates(env: &SqlGenEnv, col: &ColRef) -> Vec<Value> {
        let vocab = env.vocab;
        let Some(cid) = vocab
            .columns
            .iter()
            .position(|c| vocab.tables[c.table as usize] == col.table && c.name == col.column)
        else {
            return Vec::new();
        };
        vocab
            .value_tokens_of(cid as u32)
            .iter()
            .map(|&t| match vocab.token(t as usize) {
                sqlgen_fsm::Token::Value(v) => vocab.values[*v as usize].1.clone(),
                other => unreachable!("value token expected, got {other:?}"),
            })
            .collect()
    }

    /// Constraint reward of an assignment (higher = closer).
    fn score(env: &SqlGenEnv, template: &Statement, cands: &[Vec<Value>], idx: &[usize]) -> f64 {
        let mut stmt = template.clone();
        let values: Vec<Value> = idx.iter().zip(cands).map(|(&i, c)| c[i].clone()).collect();
        set_holes(&mut stmt, &values);
        env.constraint.reward(env.measure(&stmt))
    }

    /// Tunes one template toward the constraint: pruning + hill climbing.
    /// Returns the best concrete statement found (satisfied or not).
    pub fn tune(&mut self, env: &SqlGenEnv, template: &Statement) -> Statement {
        let holes = hole_columns(template);
        let cands: Vec<Vec<Value>> = holes.iter().map(|c| Self::candidates(env, c)).collect();
        if holes.is_empty() || cands.iter().any(Vec::is_empty) {
            return template.clone();
        }

        // Phase 1: Mishra-style probing.
        let mut starts: Vec<(f64, Vec<usize>)> = (0..self.probes)
            .map(|_| {
                let idx: Vec<usize> = cands
                    .iter()
                    .map(|c| self.rng.random_range(0..c.len()))
                    .collect();
                (Self::score(env, template, &cands, &idx), idx)
            })
            .collect();
        starts.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));
        starts.truncate(self.top_k);

        // Phase 2: Bruno-style hill climbing from each survivor.
        let mut best = starts[0].clone();
        for (score0, idx0) in starts {
            let mut cur = (score0, idx0);
            for _ in 0..self.climb_sweeps {
                let mut improved = false;
                for h in 0..cur.1.len() {
                    for step in [-1isize, 1] {
                        let ni = cur.1[h] as isize + step;
                        if ni < 0 || ni as usize >= cands[h].len() {
                            continue;
                        }
                        let mut idx = cur.1.clone();
                        idx[h] = ni as usize;
                        let s = Self::score(env, template, &cands, &idx);
                        if s > cur.0 {
                            cur = (s, idx);
                            improved = true;
                        }
                    }
                }
                if !improved || cur.0 >= 1.0 {
                    break;
                }
            }
            if cur.0 > best.0 {
                best = cur;
            }
        }

        let mut stmt = template.clone();
        let values: Vec<Value> = best
            .1
            .iter()
            .zip(&cands)
            .map(|(&i, c)| c[i].clone())
            .collect();
        set_holes(&mut stmt, &values);
        stmt
    }

    /// One tuning attempt on the next template (round-robin).
    pub fn generate(&mut self, env: &SqlGenEnv) -> Statement {
        assert!(!self.templates.is_empty(), "template pool is empty");
        let t = self.templates[self.next_template % self.templates.len()].clone();
        self.next_template += 1;
        self.tune(env, &t)
    }

    /// Tune until `n` satisfied statements or `max_attempts` tuning runs.
    pub fn find_satisfied(
        &mut self,
        env: &SqlGenEnv,
        n: usize,
        max_attempts: usize,
    ) -> (Vec<Statement>, usize) {
        let mut out = Vec::with_capacity(n);
        let mut attempts = 0;
        while out.len() < n && attempts < max_attempts {
            attempts += 1;
            let stmt = self.generate(env);
            if env.satisfies(&stmt) {
                out.push(stmt);
            }
        }
        (out, attempts)
    }

    /// Fraction of tuning attempts that land inside the constraint.
    pub fn accuracy(&mut self, env: &SqlGenEnv, n: usize) -> f64 {
        let mut hits = 0;
        for _ in 0..n {
            if env.satisfies(&self.generate(env)) {
                hits += 1;
            }
        }
        hits as f64 / n.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlgen_engine::{parse, Estimator};
    use sqlgen_rl::Constraint;
    use sqlgen_storage::gen::tpch_database;
    use sqlgen_storage::sample::SampleConfig;

    fn setup() -> (sqlgen_storage::Database, Vocabulary, Estimator) {
        let db = tpch_database(0.5, 4);
        let vocab = Vocabulary::build(
            &db,
            &SampleConfig {
                k: 30,
                ..Default::default()
            },
        );
        let est = Estimator::build(&db);
        (db, vocab, est)
    }

    #[test]
    fn hole_detection_and_substitution() {
        let mut stmt = parse(
            "SELECT lineitem.l_quantity FROM lineitem \
             WHERE lineitem.l_quantity < 10 AND lineitem.l_shipmode = 'AIR'",
        )
        .unwrap();
        let holes = hole_columns(&stmt);
        assert_eq!(holes.len(), 2);
        assert_eq!(holes[0].column, "l_quantity");
        set_holes(&mut stmt, &[Value::Int(42), Value::Text("RAIL".into())]);
        let sql = sqlgen_engine::render(&stmt);
        assert!(sql.contains("< 42") && sql.contains("'RAIL'"), "{sql}");
    }

    #[test]
    fn holes_inside_subqueries_are_found() {
        let stmt = parse(
            "SELECT orders.o_orderkey FROM orders WHERE orders.o_custkey IN \
             (SELECT customer.c_custkey FROM customer WHERE customer.c_acctbal > 100.0)",
        )
        .unwrap();
        assert_eq!(hole_columns(&stmt).len(), 1);
    }

    #[test]
    fn tuning_moves_toward_the_constraint() {
        let (_db, vocab, est) = setup();
        let template =
            parse("SELECT lineitem.l_quantity FROM lineitem WHERE lineitem.l_quantity < 1")
                .unwrap();
        // Target roughly half the table.
        let total = est.cardinality(&parse("SELECT lineitem.l_quantity FROM lineitem").unwrap());
        let target = total / 2.0;
        let env = SqlGenEnv::new(
            &vocab,
            &est,
            Constraint::cardinality_range(target * 0.7, target * 1.3),
        );
        let mut tg = TemplateGen::from_statements(vec![template.clone()], 1);
        let tuned = tg.tune(&env, &template);
        let before = env.constraint.reward(env.measure(&template));
        let after = env.constraint.reward(env.measure(&tuned));
        assert!(after > before, "tuning regressed: {before} -> {after}");
        assert!(after > 0.6, "hill climb should get close, got {after}");
    }

    #[test]
    fn template_pool_from_rollouts_has_holes() {
        let (_db, vocab, _est) = setup();
        let tg = TemplateGen::from_rollouts(&vocab, &FsmConfig::default(), 10, 7);
        assert_eq!(tg.templates.len(), 10);
        for t in &tg.templates {
            assert!(!hole_columns(t).is_empty());
        }
    }

    #[test]
    fn template_fails_when_structure_cannot_reach_target() {
        // The paper's Figure 6 anecdote: a template over a small table can
        // never reach a huge cardinality no matter the predicate values.
        let (_db, vocab, est) = setup();
        let template =
            parse("SELECT region.r_name FROM region WHERE region.r_regionkey < 3").unwrap();
        let env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_point(1e8));
        let mut tg = TemplateGen::from_statements(vec![template], 1);
        let (found, attempts) = tg.find_satisfied(&env, 1, 10);
        assert!(found.is_empty());
        assert_eq!(attempts, 10);
    }

    #[test]
    fn find_satisfied_on_reachable_constraint() {
        let (_db, vocab, est) = setup();
        let env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(10.0, 100_000.0));
        let mut tg = TemplateGen::from_rollouts(&vocab, &FsmConfig::default(), 8, 3);
        let (found, _) = tg.find_satisfied(&env, 3, 50);
        assert!(!found.is_empty());
        for s in &found {
            assert!(env.satisfies(s));
        }
    }
}
