//! Property tests for the neural-network substrate: softmax/sampling laws,
//! optimizer behaviour, and gradient checks on randomized shapes.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqlgen_nn::{
    actor_logit_grad, entropy, masked_softmax, sample_categorical, Adam, Linear, LstmStack, Mat,
    Optimizer, Param,
};

proptest! {
    /// Masked softmax: probabilities sum to 1 over the unmasked set, masked
    /// entries are exactly 0, and all entries are non-negative — for any
    /// finite logits and any non-empty mask.
    #[test]
    fn masked_softmax_laws(
        logits in proptest::collection::vec(-50.0f32..50.0, 1..40),
        mask_bits in proptest::collection::vec(any::<bool>(), 1..40),
    ) {
        let n = logits.len().min(mask_bits.len());
        let mut l = logits[..n].to_vec();
        let mut mask = mask_bits[..n].to_vec();
        if !mask.iter().any(|&m| m) {
            mask[0] = true; // keep at least one entry unmasked
        }
        let count = masked_softmax(&mut l, &mask);
        prop_assert_eq!(count, mask.iter().filter(|&&m| m).count());
        let sum: f32 = l.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
        for (p, m) in l.iter().zip(&mask) {
            prop_assert!(*p >= 0.0);
            if !m {
                prop_assert_eq!(*p, 0.0);
            }
        }
    }

    /// Entropy is non-negative and at most log(n) for any softmax output.
    #[test]
    fn entropy_bounds(logits in proptest::collection::vec(-20.0f32..20.0, 2..30)) {
        let mut p = logits.clone();
        let mask = vec![true; p.len()];
        masked_softmax(&mut p, &mask);
        let h = entropy(&p);
        prop_assert!(h >= -1e-6);
        prop_assert!(h <= (p.len() as f32).ln() + 1e-4);
    }

    /// Sampling only ever returns unmasked indices.
    #[test]
    fn sampling_respects_mask(
        logits in proptest::collection::vec(-5.0f32..5.0, 2..25),
        mask_bits in proptest::collection::vec(any::<bool>(), 2..25),
        seed in any::<u64>(),
    ) {
        let n = logits.len().min(mask_bits.len());
        let mut l = logits[..n].to_vec();
        let mut mask = mask_bits[..n].to_vec();
        if !mask.iter().any(|&m| m) {
            mask[n - 1] = true;
        }
        masked_softmax(&mut l, &mask);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..16 {
            let a = sample_categorical(&l, &mut rng);
            prop_assert!(mask[a], "sampled masked index {a}");
        }
    }

    /// Policy-gradient logit gradients sum to ~0 over the simplex
    /// (softmax gradients live in the tangent space) and are zero on
    /// masked entries.
    #[test]
    fn policy_grad_tangent_law(
        logits in proptest::collection::vec(-5.0f32..5.0, 2..20),
        advantage in -3.0f32..3.0,
        seed in any::<u64>(),
    ) {
        let mut p = logits.clone();
        let mask = vec![true; p.len()];
        masked_softmax(&mut p, &mask);
        let mut rng = StdRng::seed_from_u64(seed);
        let action = sample_categorical(&p, &mut rng);
        let g = actor_logit_grad(&p, action, advantage, 0.01);
        let sum: f32 = g.iter().sum();
        prop_assert!(sum.abs() < 1e-3, "gradient sum {sum}");
    }

    /// Adam steps strictly decrease a positive-definite quadratic from any
    /// starting point (small enough lr).
    #[test]
    fn adam_descends_quadratics(x0 in -10.0f32..10.0, target in -10.0f32..10.0) {
        let mut p = Param::new(Mat::zeros(1, 1));
        p.value.data[0] = x0;
        // Adam's per-step displacement is bounded by ~lr (and shrinks as
        // the second-moment history decays), so assert strong relative
        // progress rather than absolute convergence.
        let mut adam = Adam::new(0.1);
        let loss = |x: f32| (x - target) * (x - target);
        let before = loss(p.value.data[0]);
        for _ in 0..800 {
            p.zero_grad();
            p.grad.data[0] = 2.0 * (p.value.data[0] - target);
            adam.step(&mut [&mut p]);
        }
        let after = loss(p.value.data[0]);
        prop_assert!(after <= before + 1e-6, "{before} -> {after}");
        prop_assert!(
            after < 0.05 * before + 1e-3,
            "insufficient progress: {before} -> {after}"
        );
    }

    /// LSTM forward is deterministic and finite for any bounded input
    /// sequence.
    #[test]
    fn lstm_forward_finite_and_deterministic(
        seed in any::<u64>(),
        xs in proptest::collection::vec(
            proptest::collection::vec(-3.0f32..3.0, 4),
            1..12,
        ),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let stack = LstmStack::new(4, 6, 2, &mut rng);
        let run = || {
            let mut state = stack.zero_state();
            let mut last = Vec::new();
            for x in &xs {
                let (top, _) = stack.forward_step(x, &mut state);
                last = top;
            }
            last
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.clone(), b);
        for v in a {
            prop_assert!(v.is_finite());
            // tanh(x)·sigmoid(y) is bounded by 1 in magnitude.
            prop_assert!(v.abs() <= 1.0 + 1e-5);
        }
    }

    /// Linear layer gradients match finite differences on random shapes.
    #[test]
    fn linear_gradcheck_random_shapes(
        seed in any::<u64>(),
        inp in 1usize..6,
        out in 1usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layer = Linear::new(inp, out, &mut rng);
        let x: Vec<f32> = (0..inp).map(|i| (i as f32 * 0.37).sin()).collect();
        let coef: Vec<f32> = (0..out).map(|i| 1.0 - 0.3 * i as f32).collect();
        layer.zero_grad();
        layer.backward(&x, &coef);
        let eps = 1e-2f32;
        let loss = |l: &Linear| -> f32 {
            l.forward(&x).iter().zip(&coef).map(|(y, c)| y * c).sum()
        };
        for i in 0..(inp * out).min(4) {
            let orig = layer.w.value.data[i];
            layer.w.value.data[i] = orig + eps;
            let up = loss(&layer);
            layer.w.value.data[i] = orig - eps;
            let dn = loss(&layer);
            layer.w.value.data[i] = orig;
            let num = (up - dn) / (2.0 * eps);
            prop_assert!(
                (num - layer.w.grad.data[i]).abs() < 0.05,
                "idx {i}: numeric {num} vs analytic {}",
                layer.w.grad.data[i]
            );
        }
    }
}
