//! A small multi-layer perceptron with tanh activations.
//!
//! Used by the meta-critic's meta-value network, which maps
//! `(state encoding ⊕ action embedding ⊕ constraint encoding)` to a scalar
//! V-value.

use crate::linear::Linear;
use crate::param::Param;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// `Linear → tanh → ... → Linear` (no activation on the output layer).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    pub layers: Vec<Linear>,
}

/// Forward cache: the input and every post-activation vector.
#[derive(Debug, Clone)]
pub struct MlpCache {
    inputs: Vec<Vec<f32>>,
    activations: Vec<Vec<f32>>,
}

impl Mlp {
    /// Builds an MLP with the given layer sizes, e.g. `[64, 32, 1]`.
    pub fn new<R: Rng + ?Sized>(sizes: &[usize], rng: &mut R) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let layers = sizes
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Mlp { layers }
    }

    pub fn input_dim(&self) -> usize {
        self.layers[0].input_dim()
    }

    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").output_dim()
    }

    /// Forward pass with cache for the backward pass.
    pub fn forward(&self, x: &[f32]) -> (Vec<f32>, MlpCache) {
        let mut cache = MlpCache {
            inputs: Vec::with_capacity(self.layers.len()),
            activations: Vec::with_capacity(self.layers.len()),
        };
        let mut cur = x.to_vec();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            cache.inputs.push(cur.clone());
            let mut y = layer.forward(&cur);
            if i != last {
                for v in &mut y {
                    *v = v.tanh();
                }
            }
            cache.activations.push(y.clone());
            cur = y;
        }
        (cur, cache)
    }

    /// Backward pass; returns `dL/dx`.
    pub fn backward(&mut self, cache: &MlpCache, dy: &[f32]) -> Vec<f32> {
        let last = self.layers.len() - 1;
        let mut grad = dy.to_vec();
        for i in (0..self.layers.len()).rev() {
            if i != last {
                // Undo the tanh: dL/dz = dL/da * (1 - a^2).
                for (g, a) in grad.iter_mut().zip(&cache.activations[i]) {
                    *g *= 1.0 - a * a;
                }
            }
            grad = self.layers[i].backward(&cache.inputs[i], &grad);
        }
        grad
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    pub fn zero_grad(&mut self) {
        self.layers.iter_mut().for_each(Linear::zero_grad);
    }

    pub fn restore_buffers(&mut self) {
        self.layers.iter_mut().for_each(Linear::restore_buffers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Mlp::new(&[4, 8, 1], &mut rng);
        assert_eq!(m.input_dim(), 4);
        assert_eq!(m.output_dim(), 1);
        let (y, _) = m.forward(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(y.len(), 1);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = Mlp::new(&[3, 5, 2], &mut rng);
        let x = vec![0.2, -0.4, 0.6];
        let coef = [1.0f32, -2.0];
        let loss = |m: &Mlp, x: &[f32]| -> f32 {
            m.forward(x).0.iter().zip(coef).map(|(y, c)| y * c).sum()
        };

        m.zero_grad();
        let (_, cache) = m.forward(&x);
        let dx = m.backward(&cache, &coef);

        let eps = 1e-3;
        // Check a sample of weights across both layers.
        for li in 0..2 {
            for wi in [0usize, 3] {
                let analytic = m.layers[li].w.grad.data[wi];
                let orig = m.layers[li].w.value.data[wi];
                m.layers[li].w.value.data[wi] = orig + eps;
                let up = loss(&m, &x);
                m.layers[li].w.value.data[wi] = orig - eps;
                let dn = loss(&m, &x);
                m.layers[li].w.value.data[wi] = orig;
                let num = (up - dn) / (2.0 * eps);
                assert!(
                    (num - analytic).abs() < 1e-2,
                    "layer {li} w[{wi}]: numeric {num} vs analytic {analytic}"
                );
            }
        }
        for i in 0..3 {
            let mut xp = x.clone();
            xp[i] += eps;
            let up = loss(&m, &xp);
            xp[i] -= 2.0 * eps;
            let dn = loss(&m, &xp);
            let num = (up - dn) / (2.0 * eps);
            assert!((num - dx[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn can_fit_xor() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = Mlp::new(&[2, 8, 1], &mut rng);
        let mut adam = Adam::new(0.05);
        let data = [
            ([0.0f32, 0.0], 0.0f32),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        for _ in 0..800 {
            m.zero_grad();
            for (x, t) in &data {
                let (y, cache) = m.forward(x);
                let err = y[0] - t;
                m.backward(&cache, &[2.0 * err]);
            }
            adam.step(&mut m.params_mut());
        }
        for (x, t) in &data {
            let (y, _) = m.forward(x);
            assert!((y[0] - t).abs() < 0.2, "xor({x:?}) = {} want {t}", y[0]);
        }
    }
}
