//! Pure-Rust neural-network substrate for LearnedSQLGen.
//!
//! The paper trains 2-layer, 30-cell LSTMs with dropout 0.3 under Adam-style
//! updates on a GPU; the allowed dependency set here contains no ML
//! framework, so this crate implements the required pieces from scratch:
//!
//! * [`tensor`] — row-major matrices, matrix-vector kernels, masked softmax,
//! * [`param`] — trainable parameters, SGD/Adam, gradient clipping,
//! * [`embedding`] — token embedding (≡ the paper's one-hot input layer),
//! * [`lstm`] — LSTM layers/stacks with backpropagation through time,
//! * [`linear`], [`mlp`] — dense layers and small MLPs,
//! * [`dropout`] — inverted dropout,
//! * [`policy_loss`] — policy-gradient + entropy-regularization gradients,
//! * [`quant`] — int8 per-output-channel quantized inference kernels.
//!
//! Every backward pass is validated against finite differences in the unit
//! tests, which is the load-bearing correctness argument for the whole RL
//! stack above this crate.

pub mod dropout;
pub mod embedding;
pub mod linear;
pub mod lstm;
pub mod mlp;
pub mod param;
pub mod policy_loss;
pub mod quant;
pub mod tensor;

pub use dropout::Dropout;
pub use embedding::Embedding;
pub use linear::{Linear, LinearGrads};
pub use lstm::{
    ragged_order, LstmBatchState, LstmCache, LstmLayer, LstmLayerGrads, LstmStack, LstmStackGrads,
    LstmState, StackCache, StackState,
};
pub use mlp::{Mlp, MlpCache};
pub use param::{clip_grad_norm, Adam, Optimizer, Param, Sgd};
pub use policy_loss::{actor_logit_grad, actor_logit_grad_into, entropy_grad, policy_grad};
pub use quant::{QuantizedLinear, QuantizedLstmLayer, QuantizedLstmStack, QuantizedMat};
pub use tensor::{
    argmax, entropy, masked_softmax, masked_softmax_rows, sample_categorical, softmax_dense, Mat,
};
