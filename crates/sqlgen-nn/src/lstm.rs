//! Long Short-Term Memory layers with full backpropagation through time.
//!
//! Gate order in the packed weight matrices is `[i, f, g, o]` (input,
//! forget, cell candidate, output). Forward steps return a cache that the
//! caller stores per time step; `backward_step` consumes caches in reverse
//! order. Gradients are verified against finite differences in the tests.

use crate::param::Param;
use crate::tensor::{dsigmoid, dtanh, sigmoid, Mat};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hidden state of one LSTM layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmState {
    pub h: Vec<f32>,
    pub c: Vec<f32>,
}

impl LstmState {
    pub fn zeros(hidden: usize) -> Self {
        LstmState {
            h: vec![0.0; hidden],
            c: vec![0.0; hidden],
        }
    }

    pub fn reset(&mut self) {
        self.h.iter_mut().for_each(|v| *v = 0.0);
        self.c.iter_mut().for_each(|v| *v = 0.0);
    }
}

/// Hidden states for `batch` independent lanes across a whole stack,
/// stored as one row-major `[batch × hidden]` plane per layer so the
/// batched kernels read each lane's state contiguously. Layer `l + 1`
/// consumes layer `l`'s `h` plane directly as its input block — no
/// per-lane gather/scatter anywhere on the batched path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LstmBatchState {
    pub batch: usize,
    /// Per layer: hidden outputs, `[batch × hidden]`.
    pub h: Vec<Vec<f32>>,
    /// Per layer: cell states, `[batch × hidden]`.
    pub c: Vec<Vec<f32>>,
}

impl LstmBatchState {
    /// Zeroes one lane's `h`/`c` rows in every layer (continuous lane
    /// refill: a finished lane restarts from the zero state while its
    /// neighbours keep generating).
    pub fn reset_lane(&mut self, lane: usize) {
        debug_assert!(lane < self.batch);
        for plane in self.h.iter_mut().chain(self.c.iter_mut()) {
            let hidden = plane.len() / self.batch;
            plane[lane * hidden..(lane + 1) * hidden]
                .iter_mut()
                .for_each(|v| *v = 0.0);
        }
    }

    /// One lane's hidden output in layer `layer` (test/diagnostic access).
    pub fn lane_h(&self, layer: usize, lane: usize) -> &[f32] {
        let hidden = self.h[layer].len() / self.batch;
        &self.h[layer][lane * hidden..(lane + 1) * hidden]
    }

    /// One lane's cell state in layer `layer` (test/diagnostic access).
    pub fn lane_c(&self, layer: usize, lane: usize) -> &[f32] {
        let hidden = self.c[layer].len() / self.batch;
        &self.c[layer][lane * hidden..(lane + 1) * hidden]
    }

    /// Removes one lane by swapping the last lane's rows into its slot and
    /// shrinking the state to `batch - 1` lanes — the batched-kernel
    /// sibling of `Vec::swap_remove`. Lane identities move: the caller
    /// owns the physical-slot-to-logical-lane mapping. Shrinking keeps
    /// ragged rollouts from dragging finished lanes through the GEMMs.
    pub fn swap_remove_lane(&mut self, lane: usize) {
        debug_assert!(lane < self.batch);
        let last = self.batch - 1;
        for plane in self.h.iter_mut().chain(self.c.iter_mut()) {
            let hidden = plane.len() / (last + 1);
            if lane != last {
                let (head, tail) = plane.split_at_mut(last * hidden);
                head[lane * hidden..(lane + 1) * hidden].swap_with_slice(&mut tail[..hidden]);
            }
            plane.truncate(last * hidden);
        }
        self.batch = last;
    }

    /// Shrinks the state to its first `n` lanes (for ragged batches whose
    /// lanes are pre-sorted by descending length, where finished lanes are
    /// always a suffix).
    pub fn truncate_lanes(&mut self, n: usize) {
        debug_assert!(n <= self.batch);
        for plane in self.h.iter_mut().chain(self.c.iter_mut()) {
            let hidden = plane.len() / self.batch;
            plane.truncate(n * hidden);
        }
        self.batch = n;
    }
}

/// Stable lane ordering by **descending** sequence length (ties keep
/// ascending lane order). Processing a ragged batch in this order makes
/// the still-active lanes at every global step a contiguous prefix, so
/// batched kernels run at the live width instead of masking finished
/// lanes through full-width GEMMs. The forward/backward walks and the
/// per-lane arenas both derive the same order from the same lengths, so
/// physical slots line up across phases without any scatter.
pub fn ragged_order(lens: &[usize]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..lens.len()).collect();
    order.sort_by(|&a, &b| lens[b].cmp(&lens[a]).then(a.cmp(&b)));
    order
}

/// Per-step forward cache for one layer.
#[derive(Debug, Clone, Default)]
pub struct LstmCache {
    x: Vec<f32>,
    h_prev: Vec<f32>,
    c_prev: Vec<f32>,
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    tanh_c: Vec<f32>,
}

/// Detached parameter-gradient buffers for one layer. The lane-batched
/// BPTT accumulates each lane's gradients into its own `LstmLayerGrads`
/// (bitwise equal to a serial backward of that lane alone) and the caller
/// reduces them into `Param::grad` in ascending lane order, so the final
/// sum is deterministic.
#[derive(Debug, Clone)]
pub struct LstmLayerGrads {
    pub w_ih: Mat,
    pub w_hh: Mat,
    pub b: Mat,
}

impl LstmLayerGrads {
    pub fn reset(&mut self) {
        self.w_ih.fill(0.0);
        self.w_hh.fill(0.0);
        self.b.fill(0.0);
    }
}

/// Per-lane gradient buffers for a whole stack (one entry per layer).
pub type LstmStackGrads = Vec<LstmLayerGrads>;

/// Copies `src` into `dst`, reusing `dst`'s allocation when it is already
/// the right size (the steady-state case for arena-recycled caches).
#[inline]
fn copy_into(dst: &mut Vec<f32>, src: &[f32]) {
    dst.clear();
    dst.extend_from_slice(src);
}

/// Resizes `v` to `n` without caring about contents (values are overwritten).
#[inline]
fn ensure_len(v: &mut Vec<f32>, n: usize) {
    v.resize(n, 0.0);
}

/// One LSTM layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmLayer {
    pub input: usize,
    pub hidden: usize,
    pub w_ih: Param, // 4H × I
    pub w_hh: Param, // 4H × H
    pub b: Param,    // 4H × 1
}

impl LstmLayer {
    pub fn new<R: Rng + ?Sized>(input: usize, hidden: usize, rng: &mut R) -> Self {
        let mut b = Param::new(Mat::zeros(4 * hidden, 1));
        // Forget-gate bias init to 1.0 — the standard trick that keeps
        // gradients flowing early in training.
        for v in &mut b.value.data[hidden..2 * hidden] {
            *v = 1.0;
        }
        LstmLayer {
            input,
            hidden,
            w_ih: Param::new(Mat::xavier(4 * hidden, input, rng)),
            w_hh: Param::new(Mat::xavier(4 * hidden, hidden, rng)),
            b,
        }
    }

    /// Fused gate pre-activations: `z[r] = (b[r] + w_ih[r]·x) + w_hh[r]·h`.
    ///
    /// One pass over the two weight matrices, four rows at a time, with no
    /// temporary buffers. Per row the additions happen in exactly the order
    /// the unfused path used (`z = b; z += w_ih·x; z += w_hh·h`), so the
    /// result is bit-identical to three separate kernels.
    fn gates_into(&self, x: &[f32], h_prev: &[f32], z: &mut [f32]) {
        let rows = 4 * self.hidden;
        let (ic, hc) = (self.input, self.hidden);
        debug_assert_eq!(x.len(), ic);
        debug_assert_eq!(h_prev.len(), hc);
        debug_assert_eq!(z.len(), rows);
        let wi = &self.w_ih.value.data;
        let wh = &self.w_hh.value.data;
        let b = &self.b.value.data;
        let mut blocks = z.chunks_exact_mut(4);
        let mut r = 0usize;
        for block in &mut blocks {
            let wi4 = &wi[r * ic..(r + 4) * ic];
            let (i0, rest) = wi4.split_at(ic);
            let (i1, rest) = rest.split_at(ic);
            let (i2, i3) = rest.split_at(ic);
            let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for j in 0..ic {
                let xj = x[j];
                a0 += i0[j] * xj;
                a1 += i1[j] * xj;
                a2 += i2[j] * xj;
                a3 += i3[j] * xj;
            }
            let s0 = b[r] + a0;
            let s1 = b[r + 1] + a1;
            let s2 = b[r + 2] + a2;
            let s3 = b[r + 3] + a3;
            let wh4 = &wh[r * hc..(r + 4) * hc];
            let (h0, rest) = wh4.split_at(hc);
            let (h1, rest) = rest.split_at(hc);
            let (h2, h3) = rest.split_at(hc);
            let (mut c0, mut c1, mut c2, mut c3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for j in 0..hc {
                let hj = h_prev[j];
                c0 += h0[j] * hj;
                c1 += h1[j] * hj;
                c2 += h2[j] * hj;
                c3 += h3[j] * hj;
            }
            block[0] = s0 + c0;
            block[1] = s1 + c1;
            block[2] = s2 + c2;
            block[3] = s3 + c3;
            r += 4;
        }
        for zr in blocks.into_remainder() {
            let mut a = 0.0f32;
            for (w, xi) in wi[r * ic..(r + 1) * ic].iter().zip(x) {
                a += w * xi;
            }
            let s = b[r] + a;
            let mut c = 0.0f32;
            for (w, hi) in wh[r * hc..(r + 1) * hc].iter().zip(h_prev) {
                c += w * hi;
            }
            *zr = s + c;
            r += 1;
        }
    }

    /// Batched fused gate pre-activations over `batch` lanes:
    /// `z[lane][r] = (b[r] + w_ih[r]·x[lane]) + w_hh[r]·h_prev[lane]`.
    ///
    /// `x` is `[batch × input]`, `h_prev` is `[batch × hidden]`, `z` is
    /// `[batch × 4·hidden]`, all row-major per lane. Built from two
    /// [`Mat::matmul_nt`] sweeps (the SIMD register-tile kernel) plus
    /// elementwise passes, composed in exactly the `gates_into` summation
    /// structure — `a = Σ_j w_ih·x`, then `s = b + a`, then
    /// `c = Σ_j w_hh·h`, then `z = s + c`, every sum strictly left to
    /// right — so per lane the result is bit-identical to the serial
    /// kernel.
    pub fn gates_batch_into(&self, x: &[f32], h_prev: &[f32], batch: usize, z: &mut [f32]) {
        let rows = 4 * self.hidden;
        debug_assert_eq!(x.len(), batch * self.input);
        debug_assert_eq!(h_prev.len(), batch * self.hidden);
        debug_assert_eq!(z.len(), batch * rows);
        if batch == 1 {
            return self.gates_into(x, h_prev, z);
        }
        let b = &self.b.value.data;
        // a = w_ih · x, then s = b + a (same operand order as gates_into).
        self.w_ih.value.matmul_nt(x, batch, z);
        for zl in z.chunks_exact_mut(rows) {
            for (zv, bv) in zl.iter_mut().zip(b) {
                *zv += bv;
            }
        }
        // c = w_hh · h_prev, then z = s + c. The buffer comes from the
        // kernel scratch pool — this runs per layer per token.
        let mut c = crate::tensor::take_scratch(batch * rows);
        self.w_hh.value.matmul_nt(h_prev, batch, &mut c);
        for (zv, cv) in z.iter_mut().zip(&c) {
            *zv += cv;
        }
        crate::tensor::put_scratch(c);
    }

    /// One batched inference step over `batch` lanes: `h_plane`/`c_plane`
    /// are the layer's `[batch × hidden]` state planes (read as previous,
    /// overwritten with the new state), `x` is `[batch × input]` and `z`
    /// is gate scratch of `[batch × 4·hidden]`. Per lane the elementwise
    /// gate math matches [`LstmLayer::infer_step_into`] exactly, so each
    /// lane's trajectory is bit-identical to a serial rollout of that lane.
    pub fn infer_step_batch_into(
        &self,
        x: &[f32],
        h_plane: &mut [f32],
        c_plane: &mut [f32],
        batch: usize,
        z: &mut [f32],
    ) {
        let h = self.hidden;
        self.gates_batch_into(x, h_plane, batch, z);
        for lane in 0..batch {
            let zl = &z[lane * 4 * h..(lane + 1) * 4 * h];
            let hl = &mut h_plane[lane * h..(lane + 1) * h];
            let cl = &mut c_plane[lane * h..(lane + 1) * h];
            for k in 0..h {
                let i = sigmoid(zl[k]);
                let f = sigmoid(zl[h + k]);
                let g = zl[2 * h + k].tanh();
                let o = sigmoid(zl[3 * h + k]);
                let c = f * cl[k] + i * g;
                cl[k] = c;
                hl[k] = o * c.tanh();
            }
        }
    }

    /// One batched **training** step over `batch` lanes: like
    /// [`LstmLayer::infer_step_batch_into`] but records each lane's
    /// backward cache in `caches[lane]`. Lanes not marked `active` still
    /// ride through the fused GEMM (their state slots are scratch once
    /// their episode has ended) but skip the cache write. Per active lane
    /// the recorded cache and new state are bit-identical to a serial
    /// [`LstmLayer::forward_step_into`] on that lane.
    #[allow(clippy::too_many_arguments)]
    pub fn forward_step_batch_into<C: std::borrow::BorrowMut<LstmCache>>(
        &self,
        x: &[f32],
        h_plane: &mut [f32],
        c_plane: &mut [f32],
        batch: usize,
        active: &[bool],
        caches: &mut [C],
        z: &mut [f32],
    ) {
        let h = self.hidden;
        debug_assert_eq!(active.len(), batch);
        debug_assert_eq!(caches.len(), batch);
        for lane in 0..batch {
            if !active[lane] {
                continue;
            }
            let cache = caches[lane].borrow_mut();
            copy_into(&mut cache.x, &x[lane * self.input..(lane + 1) * self.input]);
            copy_into(&mut cache.h_prev, &h_plane[lane * h..(lane + 1) * h]);
            copy_into(&mut cache.c_prev, &c_plane[lane * h..(lane + 1) * h]);
        }
        self.gates_batch_into(x, h_plane, batch, z);
        for lane in 0..batch {
            let zl = &z[lane * 4 * h..(lane + 1) * 4 * h];
            let hl = &mut h_plane[lane * h..(lane + 1) * h];
            let cl = &mut c_plane[lane * h..(lane + 1) * h];
            if active[lane] {
                let cache = caches[lane].borrow_mut();
                ensure_len(&mut cache.i, h);
                ensure_len(&mut cache.f, h);
                ensure_len(&mut cache.g, h);
                ensure_len(&mut cache.o, h);
                ensure_len(&mut cache.tanh_c, h);
                for k in 0..h {
                    let i = sigmoid(zl[k]);
                    let f = sigmoid(zl[h + k]);
                    let g = zl[2 * h + k].tanh();
                    let o = sigmoid(zl[3 * h + k]);
                    let c = f * cache.c_prev[k] + i * g;
                    let tc = c.tanh();
                    cache.i[k] = i;
                    cache.f[k] = f;
                    cache.g[k] = g;
                    cache.o[k] = o;
                    cache.tanh_c[k] = tc;
                    cl[k] = c;
                    hl[k] = o * tc;
                }
            } else {
                for k in 0..h {
                    let i = sigmoid(zl[k]);
                    let f = sigmoid(zl[h + k]);
                    let g = zl[2 * h + k].tanh();
                    let o = sigmoid(zl[3 * h + k]);
                    let c = f * cl[k] + i * g;
                    cl[k] = c;
                    hl[k] = o * c.tanh();
                }
            }
        }
    }

    /// One forward step writing into reusable buffers: `state` is read as
    /// the previous state and overwritten with the new one, `cache` is
    /// refilled for backprop, `z` is gate scratch of length `4 * hidden`.
    /// Steady state performs zero heap allocations.
    pub fn forward_step_into(
        &self,
        x: &[f32],
        state: &mut LstmState,
        cache: &mut LstmCache,
        z: &mut [f32],
    ) {
        let h = self.hidden;
        copy_into(&mut cache.x, x);
        copy_into(&mut cache.h_prev, &state.h);
        copy_into(&mut cache.c_prev, &state.c);
        self.gates_into(x, &cache.h_prev, z);
        ensure_len(&mut cache.i, h);
        ensure_len(&mut cache.f, h);
        ensure_len(&mut cache.g, h);
        ensure_len(&mut cache.o, h);
        ensure_len(&mut cache.tanh_c, h);
        for k in 0..h {
            let i = sigmoid(z[k]);
            let f = sigmoid(z[h + k]);
            let g = z[2 * h + k].tanh();
            let o = sigmoid(z[3 * h + k]);
            let c = f * cache.c_prev[k] + i * g;
            let tc = c.tanh();
            cache.i[k] = i;
            cache.f[k] = f;
            cache.g[k] = g;
            cache.o[k] = o;
            cache.tanh_c[k] = tc;
            state.c[k] = c;
            state.h[k] = o * tc;
        }
    }

    /// One forward step without a backward cache — the inference fast path.
    /// `state` is updated in place; `z` is gate scratch of length
    /// `4 * hidden`. No heap allocations.
    pub fn infer_step_into(&self, x: &[f32], state: &mut LstmState, z: &mut [f32]) {
        let h = self.hidden;
        self.gates_into(x, &state.h, z);
        for k in 0..h {
            let i = sigmoid(z[k]);
            let f = sigmoid(z[h + k]);
            let g = z[2 * h + k].tanh();
            let o = sigmoid(z[3 * h + k]);
            let c = f * state.c[k] + i * g;
            state.c[k] = c;
            state.h[k] = o * c.tanh();
        }
    }

    /// One forward step. Returns the new state and the backward cache.
    /// Allocating convenience wrapper over [`LstmLayer::forward_step_into`].
    pub fn forward_step(&self, x: &[f32], prev: &LstmState) -> (LstmState, LstmCache) {
        let mut state = prev.clone();
        let mut cache = LstmCache::default();
        let mut z = vec![0.0; 4 * self.hidden];
        self.forward_step_into(x, &mut state, &mut cache, &mut z);
        (state, cache)
    }

    /// Elementwise gate backward: consumes `dh`/`dc`, fills `dz` and
    /// updates `dc` in place to the step t-1 cell gradient. Shared by the
    /// serial and lane-batched backward paths so both run the identical
    /// f32 expression sequence per unit.
    #[inline]
    fn gate_backward(cache: &LstmCache, hidden: usize, dh: &[f32], dc: &mut [f32], dz: &mut [f32]) {
        let h = hidden;
        for k in 0..h {
            let do_ = dh[k] * cache.tanh_c[k];
            let dck = dc[k] + dh[k] * cache.o[k] * dtanh(cache.tanh_c[k]);
            let di = dck * cache.g[k];
            let df = dck * cache.c_prev[k];
            let dg = dck * cache.i[k];
            dc[k] = dck * cache.f[k];
            dz[k] = di * dsigmoid(cache.i[k]);
            dz[h + k] = df * dsigmoid(cache.f[k]);
            dz[2 * h + k] = dg * dtanh(cache.g[k]);
            dz[3 * h + k] = do_ * dsigmoid(cache.o[k]);
        }
    }

    /// Accumulates one step's parameter gradients from `dz` into external
    /// buffers (the per-lane arenas of the batched BPTT, or the layer's own
    /// `Param::grad` on the serial path — identical op sequence either way).
    #[inline]
    fn accumulate_param_grads(grads: &mut LstmLayerGrads, cache: &LstmCache, dz: &[f32]) {
        grads.w_ih.add_outer(dz, &cache.x);
        grads.w_hh.add_outer(dz, &cache.h_prev);
        for (g, d) in grads.b.data.iter_mut().zip(dz.iter()) {
            *g += d;
        }
    }

    /// Detached gradient buffers shaped like this layer's parameters.
    pub fn empty_grads(&self) -> LstmLayerGrads {
        LstmLayerGrads {
            w_ih: Mat::zeros(4 * self.hidden, self.input),
            w_hh: Mat::zeros(4 * self.hidden, self.hidden),
            b: Mat::zeros(4 * self.hidden, 1),
        }
    }

    /// One backward step into caller-provided buffers.
    ///
    /// `dh` is the loss gradient w.r.t. this step's output `h` **plus** the
    /// recurrent gradient flowing back from step t+1. `dc` holds the cell
    /// gradient from step t+1 on entry and the cell gradient for step t-1 on
    /// exit (updated in place). `dz` is scratch of length `4 * hidden`;
    /// `dx` (length `input`) and `dh_prev` (length `hidden`) are overwritten.
    /// Parameter gradients are accumulated.
    pub fn backward_step_into(
        &mut self,
        cache: &LstmCache,
        dh: &[f32],
        dc: &mut [f32],
        dz: &mut [f32],
        dx: &mut [f32],
        dh_prev: &mut [f32],
    ) {
        Self::gate_backward(cache, self.hidden, dh, dc, dz);
        self.w_ih.grad.add_outer(dz, &cache.x);
        self.w_hh.grad.add_outer(dz, &cache.h_prev);
        for (g, d) in self.b.grad.data.iter_mut().zip(dz.iter()) {
            *g += d;
        }
        dx.iter_mut().for_each(|v| *v = 0.0);
        self.w_ih.value.matvec_t_acc(dz, dx);
        dh_prev.iter_mut().for_each(|v| *v = 0.0);
        self.w_hh.value.matvec_t_acc(dz, dh_prev);
    }

    /// One backward step. Allocating wrapper over
    /// [`LstmLayer::backward_step_into`]; returns `(dx, dh_prev, dc_prev)`.
    pub fn backward_step(
        &mut self,
        cache: &LstmCache,
        dh: &[f32],
        dc_next: &[f32],
    ) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let h = self.hidden;
        let mut dz = vec![0.0; 4 * h];
        let mut dc = dc_next.to_vec();
        let mut dx = vec![0.0; self.input];
        let mut dh_prev = vec![0.0; h];
        self.backward_step_into(cache, dh, &mut dc, &mut dz, &mut dx, &mut dh_prev);
        (dx, dh_prev, dc)
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w_ih, &mut self.w_hh, &mut self.b]
    }

    pub fn zero_grad(&mut self) {
        self.w_ih.zero_grad();
        self.w_hh.zero_grad();
        self.b.zero_grad();
    }

    pub fn restore_buffers(&mut self) {
        self.w_ih.restore_buffers();
        self.w_hh.restore_buffers();
        self.b.restore_buffers();
    }
}

/// A stack of LSTM layers (the paper uses 2 layers × 30 cells).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmStack {
    pub layers: Vec<LstmLayer>,
}

/// Hidden states for the whole stack.
pub type StackState = Vec<LstmState>;
/// Per-step caches for the whole stack.
pub type StackCache = Vec<LstmCache>;

impl LstmStack {
    /// `layers` LSTM layers: the first maps `input → hidden`, the rest
    /// `hidden → hidden`.
    pub fn new<R: Rng + ?Sized>(input: usize, hidden: usize, layers: usize, rng: &mut R) -> Self {
        assert!(layers >= 1);
        let mut v = Vec::with_capacity(layers);
        v.push(LstmLayer::new(input, hidden, rng));
        for _ in 1..layers {
            v.push(LstmLayer::new(hidden, hidden, rng));
        }
        LstmStack { layers: v }
    }

    pub fn hidden(&self) -> usize {
        self.layers[0].hidden
    }

    pub fn zero_state(&self) -> StackState {
        self.layers
            .iter()
            .map(|l| LstmState::zeros(l.hidden))
            .collect()
    }

    /// Resets `state` to zeros in place, (re)sizing it on first use so a
    /// single buffer can be recycled across episodes.
    pub fn reset_state(&self, state: &mut StackState) {
        if state.len() != self.layers.len() {
            *state = self.zero_state();
        } else {
            state.iter_mut().for_each(LstmState::reset);
        }
    }

    /// Zeroed batch state for `batch` concurrent lanes.
    pub fn zero_batch_state(&self, batch: usize) -> LstmBatchState {
        LstmBatchState {
            batch,
            h: self
                .layers
                .iter()
                .map(|l| vec![0.0; batch * l.hidden])
                .collect(),
            c: self
                .layers
                .iter()
                .map(|l| vec![0.0; batch * l.hidden])
                .collect(),
        }
    }

    /// Gate-scratch length for a `batch`-lane step (`batch × 4 × hidden`).
    pub fn batch_scratch_len(&self, batch: usize) -> usize {
        batch * self.scratch_len()
    }

    /// One batched inference step through all layers. `x` is the
    /// `[batch × input]` block, `z` gate scratch of
    /// [`LstmStack::batch_scratch_len`]. Layer `l + 1` reads layer `l`'s
    /// `h` plane in place; the top-layer outputs end up in
    /// `state.h.last()`. Lanes never mix: each lane's trajectory is
    /// bit-identical to running [`LstmStack::infer_step_into`] on that
    /// lane alone.
    pub fn infer_step_batch_into(&self, x: &[f32], state: &mut LstmBatchState, z: &mut [f32]) {
        debug_assert_eq!(state.h.len(), self.layers.len());
        let batch = state.batch;
        for (l, layer) in self.layers.iter().enumerate() {
            if l == 0 {
                layer.infer_step_batch_into(x, &mut state.h[0], &mut state.c[0], batch, z);
            } else {
                let (below, rest) = state.h.split_at_mut(l);
                layer.infer_step_batch_into(&below[l - 1], &mut rest[0], &mut state.c[l], batch, z);
            }
        }
    }

    /// An empty per-step cache with one slot per layer, for arena reuse.
    pub fn empty_cache(&self) -> StackCache {
        vec![LstmCache::default(); self.layers.len()]
    }

    /// Gate-scratch length shared by every layer (`4 * hidden`).
    pub fn scratch_len(&self) -> usize {
        4 * self.hidden()
    }

    /// Largest input dimension across layers (for sizing backward scratch).
    pub fn max_input(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.input.max(l.hidden))
            .max()
            .unwrap_or(0)
    }

    /// One forward step through all layers into reusable buffers. The
    /// top-layer output is left in `state.last().unwrap().h`; `caches` must
    /// have one slot per layer (see [`LstmStack::empty_cache`]); `z` is gate
    /// scratch of length [`LstmStack::scratch_len`]. Zero allocations in
    /// steady state.
    pub fn forward_step_into(
        &self,
        x: &[f32],
        state: &mut StackState,
        caches: &mut StackCache,
        z: &mut [f32],
    ) {
        debug_assert_eq!(caches.len(), self.layers.len());
        for (l, (layer, cache)) in self.layers.iter().zip(caches.iter_mut()).enumerate() {
            if l == 0 {
                layer.forward_step_into(x, &mut state[0], cache, z);
            } else {
                let (below, rest) = state.split_at_mut(l);
                layer.forward_step_into(&below[l - 1].h, &mut rest[0], cache, z);
            }
        }
    }

    /// One batched **training** step through all layers: like
    /// [`LstmStack::infer_step_batch_into`] but records backward caches in
    /// `caches[lane][layer]` for every lane marked `active`. Per active
    /// lane the caches and states are bit-identical to a serial
    /// [`LstmStack::forward_step_into`] on that lane alone.
    pub fn forward_step_batch_into<S: std::borrow::BorrowMut<StackCache>>(
        &self,
        x: &[f32],
        state: &mut LstmBatchState,
        active: &[bool],
        caches: &mut [S],
        z: &mut [f32],
    ) {
        debug_assert_eq!(state.h.len(), self.layers.len());
        debug_assert_eq!(caches.len(), state.batch);
        let batch = state.batch;
        for (l, layer) in self.layers.iter().enumerate() {
            let mut lc: Vec<&mut LstmCache> = caches
                .iter_mut()
                .map(|sc| &mut sc.borrow_mut()[l])
                .collect();
            if l == 0 {
                layer.forward_step_batch_into(
                    x,
                    &mut state.h[0],
                    &mut state.c[0],
                    batch,
                    active,
                    &mut lc,
                    z,
                );
            } else {
                let (below, rest) = state.h.split_at_mut(l);
                layer.forward_step_batch_into(
                    &below[l - 1],
                    &mut rest[0],
                    &mut state.c[l],
                    batch,
                    active,
                    &mut lc,
                    z,
                );
            }
        }
    }

    /// Per-lane gradient arenas shaped like this stack's parameters.
    pub fn empty_stack_grads(&self) -> LstmStackGrads {
        self.layers.iter().map(LstmLayer::empty_grads).collect()
    }

    /// Reduces one lane's gradient arena into the stack's `Param::grad`
    /// buffers. Callers reduce lanes in **ascending lane order** so the
    /// accumulated sum is deterministic.
    pub fn accumulate_grads(&mut self, grads: &LstmStackGrads) {
        for (layer, g) in self.layers.iter_mut().zip(grads) {
            layer.w_ih.grad.add_assign(&g.w_ih);
            layer.w_hh.grad.add_assign(&g.w_hh);
            layer.b.grad.add_assign(&g.b);
        }
    }

    /// Lane-batched backward through `batch` ragged sequences at once —
    /// the training sibling of the batched inference step.
    ///
    /// `steps[lane]` is lane `lane`'s episode length; the walk runs the
    /// global step index `s` from `max(steps) - 1` down to `0`, and a lane
    /// participates only while `s < steps[lane]` (every lane starts at
    /// step 0, so its local time axis coincides with `s` and its cache
    /// visit order matches a serial backward exactly). `cache_at(lane, s)`
    /// returns lane `lane`'s per-layer caches at step `s`; `dtop_at(lane,
    /// s)` its top-layer output gradient; `dx_sink(lane, s, dx)` receives
    /// its input gradient (valid only during the call).
    ///
    /// Parameter gradients go to the **per-lane** arenas in `grads`, not
    /// to `Param::grad`: per lane the elementwise gate backward and
    /// rank-1 updates run the identical op sequence as
    /// [`LstmStack::backward_sequence_with`], and the heavy `Wᵀ·dz`
    /// products are batched through [`Mat::matvec_t_batch`] (bit-identical
    /// per lane), so each arena equals a serial backward of that lane
    /// alone — the lane-vs-serial equality tests pin this down. The caller
    /// then reduces the arenas with [`LstmStack::accumulate_grads`] in
    /// ascending lane order.
    pub fn backward_sequence_batch_with<'c>(
        &self,
        batch: usize,
        steps: &[usize],
        cache_at: impl Fn(usize, usize) -> &'c [LstmCache],
        dtop_at: impl Fn(usize, usize) -> &'c [f32],
        mut dx_sink: impl FnMut(usize, usize, &[f32]),
        grads: &mut [LstmStackGrads],
    ) {
        debug_assert_eq!(steps.len(), batch);
        debug_assert_eq!(grads.len(), batch);
        let n_layers = self.layers.len();
        let hidden = self.hidden();
        let max_t = steps.iter().copied().max().unwrap_or(0);
        let max_in = self.max_input();
        let width = max_in.max(hidden);
        // Physical slot `p` hosts logical lane `order[p]`. The reverse
        // walk activates lanes as `s` drops below their length; with lanes
        // sorted by descending length the active set is always the prefix
        // `0..n_active`, so every kernel below runs at the live width and
        // finished lanes cost nothing.
        let order = ragged_order(steps);
        let mut dh_next: Vec<Vec<f32>> = self
            .layers
            .iter()
            .map(|l| vec![0.0; batch * l.hidden])
            .collect();
        let mut dc_next: Vec<Vec<f32>> = self
            .layers
            .iter()
            .map(|l| vec![0.0; batch * l.hidden])
            .collect();
        let mut dh_down = vec![0.0; batch * width];
        let mut dh = vec![0.0; batch * hidden];
        let mut dz = vec![0.0; batch * 4 * hidden];
        let mut dx = vec![0.0; batch * max_in];
        let mut dh_prev = vec![0.0; batch * hidden];

        for s in (0..max_t).rev() {
            let n_active = order.iter().take_while(|&&l| steps[l] > s).count();
            for (p, &lane) in order[..n_active].iter().enumerate() {
                dh_down[p * hidden..(p + 1) * hidden].copy_from_slice(dtop_at(lane, s));
            }
            let mut down_len = hidden;
            for l in (0..n_layers).rev() {
                let lh = self.layers[l].hidden;
                debug_assert_eq!(down_len, lh);
                for (p, &lane) in order[..n_active].iter().enumerate() {
                    let dzl = &mut dz[p * 4 * lh..(p + 1) * 4 * lh];
                    let dhl = &mut dh[p * lh..(p + 1) * lh];
                    for ((a, b), c) in dhl
                        .iter_mut()
                        .zip(&dh_down[p * down_len..p * down_len + lh])
                        .zip(&dh_next[l][p * lh..(p + 1) * lh])
                    {
                        *a = b + c;
                    }
                    let cache = &cache_at(lane, s)[l];
                    LstmLayer::gate_backward(
                        cache,
                        lh,
                        dhl,
                        &mut dc_next[l][p * lh..(p + 1) * lh],
                        dzl,
                    );
                    LstmLayer::accumulate_param_grads(&mut grads[lane][l], cache, dzl);
                }
                let in_dim = self.layers[l].input;
                self.layers[l].w_ih.value.matvec_t_batch(
                    &dz[..n_active * 4 * lh],
                    n_active,
                    &mut dx[..n_active * in_dim],
                );
                self.layers[l].w_hh.value.matvec_t_batch(
                    &dz[..n_active * 4 * lh],
                    n_active,
                    &mut dh_prev[..n_active * lh],
                );
                // Slots past the prefix keep their zero init, which is
                // exactly the dh/dc a lane must see at its last step.
                dh_next[l][..n_active * lh].copy_from_slice(&dh_prev[..n_active * lh]);
                dh_down[..n_active * in_dim].copy_from_slice(&dx[..n_active * in_dim]);
                down_len = in_dim;
            }
            for (p, &lane) in order[..n_active].iter().enumerate() {
                dx_sink(lane, s, &dh_down[p * down_len..(p + 1) * down_len]);
            }
        }
    }

    /// One forward step with no backward caches — the inference fast path.
    /// The top-layer output is left in `state.last().unwrap().h`.
    pub fn infer_step_into(&self, x: &[f32], state: &mut StackState, z: &mut [f32]) {
        for (l, layer) in self.layers.iter().enumerate() {
            if l == 0 {
                layer.infer_step_into(x, &mut state[0], z);
            } else {
                let (below, rest) = state.split_at_mut(l);
                layer.infer_step_into(&below[l - 1].h, &mut rest[0], z);
            }
        }
    }

    /// One forward step through all layers; returns the top-layer output.
    /// Allocating wrapper over [`LstmStack::forward_step_into`].
    pub fn forward_step(&self, x: &[f32], state: &mut StackState) -> (Vec<f32>, StackCache) {
        let mut caches = self.empty_cache();
        let mut z = vec![0.0; self.scratch_len()];
        self.forward_step_into(x, state, &mut caches, &mut z);
        (state.last().expect("non-empty stack").h.clone(), caches)
    }

    /// Backward through a full sequence, streaming results instead of
    /// materializing them.
    ///
    /// `cache_at(t)` returns step `t`'s per-layer caches; `dtop_at(t)` the
    /// loss gradient w.r.t. the top-layer output at step `t`; `dx_sink(t,
    /// dx)` receives `dL/dx_t` (valid only during the call). All scratch is
    /// internal and sized once, so the per-step work is allocation-free.
    pub fn backward_sequence_with<'c>(
        &mut self,
        steps: usize,
        cache_at: impl Fn(usize) -> &'c [LstmCache],
        dtop_at: impl Fn(usize) -> &'c [f32],
        mut dx_sink: impl FnMut(usize, &[f32]),
    ) {
        let n_layers = self.layers.len();
        let hidden = self.hidden();
        // Recurrent gradients flowing right-to-left, per layer.
        let mut dh_next: Vec<Vec<f32>> = self.layers.iter().map(|l| vec![0.0; l.hidden]).collect();
        let mut dc_next: Vec<Vec<f32>> = self.layers.iter().map(|l| vec![0.0; l.hidden]).collect();
        let max_in = self.max_input();
        let mut dh_down = vec![0.0; max_in.max(hidden)];
        let mut dh = vec![0.0; hidden];
        let mut dz = vec![0.0; 4 * hidden];
        let mut dx = vec![0.0; max_in];
        let mut dh_prev = vec![0.0; hidden];

        for t in (0..steps).rev() {
            let caches = cache_at(t);
            // Gradient w.r.t. the current layer's output; starts at the top.
            dh_down[..hidden].copy_from_slice(dtop_at(t));
            let mut down_len = hidden;
            for l in (0..n_layers).rev() {
                for ((a, b), c) in dh.iter_mut().zip(&dh_down[..down_len]).zip(&dh_next[l]) {
                    *a = b + c;
                }
                let in_dim = self.layers[l].input;
                self.layers[l].backward_step_into(
                    &caches[l],
                    &dh,
                    &mut dc_next[l],
                    &mut dz,
                    &mut dx[..in_dim],
                    &mut dh_prev,
                );
                dh_next[l].copy_from_slice(&dh_prev);
                // dx becomes the output-gradient of the layer below.
                dh_down[..in_dim].copy_from_slice(&dx[..in_dim]);
                down_len = in_dim;
            }
            dx_sink(t, &dh_down[..down_len]);
        }
    }

    /// Backward through a full sequence.
    ///
    /// `caches[t]` is the cache of step `t`; `dtop[t]` is the loss gradient
    /// w.r.t. the top-layer output at step `t`. Returns `dL/dx_t` for every
    /// step (for the embedding below).
    pub fn backward_sequence(&mut self, caches: &[StackCache], dtop: &[Vec<f32>]) -> Vec<Vec<f32>> {
        assert_eq!(caches.len(), dtop.len());
        let mut dx_out = vec![Vec::new(); caches.len()];
        self.backward_sequence_with(
            caches.len(),
            |t| &caches[t][..],
            |t| &dtop[t][..],
            |t, dx| dx_out[t] = dx.to_vec(),
        );
        dx_out
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    pub fn zero_grad(&mut self) {
        self.layers.iter_mut().for_each(LstmLayer::zero_grad);
    }

    pub fn restore_buffers(&mut self) {
        self.layers.iter_mut().for_each(LstmLayer::restore_buffers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Optimizer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runs a full sequence and returns a scalar loss: the dot product of
    /// each step's top output with fixed coefficients.
    fn seq_loss(stack: &LstmStack, xs: &[Vec<f32>], coef: &[f32]) -> f32 {
        let mut state = stack.zero_state();
        let mut loss = 0.0;
        for x in xs {
            let (top, _) = stack.forward_step(x, &mut state);
            loss += top.iter().zip(coef).map(|(a, b)| a * b).sum::<f32>();
        }
        loss
    }

    #[test]
    fn forward_shapes_and_state_evolution() {
        let mut rng = StdRng::seed_from_u64(1);
        let stack = LstmStack::new(3, 4, 2, &mut rng);
        let mut state = stack.zero_state();
        let (out, caches) = stack.forward_step(&[0.1, -0.2, 0.3], &mut state);
        assert_eq!(out.len(), 4);
        assert_eq!(caches.len(), 2);
        assert_ne!(state[0].h, vec![0.0; 4]);
        // Second step changes the state further.
        let h1 = state[1].h.clone();
        stack.forward_step(&[0.1, -0.2, 0.3], &mut state);
        assert_ne!(state[1].h, h1);
    }

    #[test]
    fn bptt_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut stack = LstmStack::new(2, 3, 2, &mut rng);
        let xs: Vec<Vec<f32>> = vec![
            vec![0.5, -0.3],
            vec![-0.1, 0.8],
            vec![0.2, 0.2],
            vec![-0.6, 0.4],
        ];
        let coef = [1.0, -0.5, 0.7];

        // Analytic gradients.
        stack.zero_grad();
        let mut state = stack.zero_state();
        let mut caches = Vec::new();
        for x in &xs {
            let (_, c) = stack.forward_step(x, &mut state);
            caches.push(c);
        }
        let dtop: Vec<Vec<f32>> = xs.iter().map(|_| coef.to_vec()).collect();
        let dxs = stack.backward_sequence(&caches, &dtop);

        // Numeric check on a sample of parameters from every tensor.
        fn tensor_of(l: &mut LstmLayer, t: usize) -> &mut crate::param::Param {
            match t {
                0 => &mut l.w_ih,
                1 => &mut l.w_hh,
                _ => &mut l.b,
            }
        }
        let eps = 1e-3;
        for layer_idx in 0..2 {
            for tensor in 0..3 {
                let len = tensor_of(&mut stack.layers[layer_idx], tensor)
                    .value
                    .data
                    .len();
                for &i in &[0usize, len / 2, len - 1] {
                    let analytic = tensor_of(&mut stack.layers[layer_idx], tensor).grad.data[i];
                    let orig = tensor_of(&mut stack.layers[layer_idx], tensor).value.data[i];
                    tensor_of(&mut stack.layers[layer_idx], tensor).value.data[i] = orig + eps;
                    let up = seq_loss(&stack, &xs, &coef);
                    tensor_of(&mut stack.layers[layer_idx], tensor).value.data[i] = orig - eps;
                    let dn = seq_loss(&stack, &xs, &coef);
                    tensor_of(&mut stack.layers[layer_idx], tensor).value.data[i] = orig;
                    let num = (up - dn) / (2.0 * eps);
                    assert!(
                        (num - analytic).abs() < 2e-2,
                        "layer {layer_idx} tensor {tensor} idx {i}: \
                         numeric {num} vs analytic {analytic}"
                    );
                }
            }
        }

        // Input gradients on step 0.
        for i in 0..2 {
            let mut xp = xs.clone();
            xp[0][i] += eps;
            let up = seq_loss(&stack, &xp, &coef);
            xp[0][i] -= 2.0 * eps;
            let dn = seq_loss(&stack, &xp, &coef);
            let num = (up - dn) / (2.0 * eps);
            assert!(
                (num - dxs[0][i]).abs() < 2e-2,
                "dx[0][{i}]: numeric {num} vs analytic {}",
                dxs[0][i]
            );
        }
    }

    /// Reference step written the pre-fusion way: three separate kernels,
    /// fresh buffers. The fused path must match it within 1e-5 (it is in
    /// fact bit-identical; the tolerance guards the test contract from
    /// ISSUE 2 if the kernels ever legitimately reassociate).
    fn naive_forward_step(layer: &LstmLayer, x: &[f32], prev: &LstmState) -> (LstmState, Vec<f32>) {
        let h = layer.hidden;
        let mut z = layer.b.value.data.clone();
        let mut tmp = vec![0.0; 4 * h];
        layer.w_ih.value.matvec(x, &mut tmp);
        for (zi, t) in z.iter_mut().zip(&tmp) {
            *zi += t;
        }
        layer.w_hh.value.matvec(&prev.h, &mut tmp);
        for (zi, t) in z.iter_mut().zip(&tmp) {
            *zi += t;
        }
        let mut c = vec![0.0; h];
        let mut h_new = vec![0.0; h];
        for k in 0..h {
            let i = sigmoid(z[k]);
            let f = sigmoid(z[h + k]);
            let g = z[2 * h + k].tanh();
            let o = sigmoid(z[3 * h + k]);
            c[k] = f * prev.c[k] + i * g;
            h_new[k] = o * c[k].tanh();
        }
        (LstmState { h: h_new, c }, z)
    }

    #[test]
    fn fused_forward_matches_naive_step() {
        let mut rng = StdRng::seed_from_u64(11);
        for &(input, hidden) in &[(3, 4), (5, 5), (7, 6), (16, 16)] {
            let layer = LstmLayer::new(input, hidden, &mut rng);
            let mut state = LstmState::zeros(hidden);
            let mut cache = LstmCache::default();
            let mut z = vec![0.0; 4 * hidden];
            let mut naive_state = LstmState::zeros(hidden);
            for step in 0..6 {
                let x: Vec<f32> = (0..input).map(|_| rng.random_range(-1.0f32..1.0)).collect();
                let (next, _) = naive_forward_step(&layer, &x, &naive_state);
                naive_state = next;
                layer.forward_step_into(&x, &mut state, &mut cache, &mut z);
                for k in 0..hidden {
                    assert!(
                        (state.h[k] - naive_state.h[k]).abs() < 1e-5
                            && (state.c[k] - naive_state.c[k]).abs() < 1e-5,
                        "fused/naive divergence at step {step} unit {k}"
                    );
                }
                // The fast paths share the gate kernel, so the bitwise
                // check is the real assertion.
                assert_eq!(state.h, naive_state.h, "h not bit-identical");
                assert_eq!(state.c, naive_state.c, "c not bit-identical");
            }
        }
    }

    /// The cacheless inference step and the caching training step must
    /// produce the same state trajectory.
    #[test]
    fn infer_step_matches_forward_step() {
        let mut rng = StdRng::seed_from_u64(13);
        let stack = LstmStack::new(6, 8, 2, &mut rng);
        let mut train_state = stack.zero_state();
        let mut infer_state = stack.zero_state();
        let mut caches = stack.empty_cache();
        let mut z = vec![0.0; stack.scratch_len()];
        for _ in 0..5 {
            let x: Vec<f32> = (0..6).map(|_| rng.random_range(-1.0f32..1.0)).collect();
            stack.forward_step_into(&x, &mut train_state, &mut caches, &mut z);
            stack.infer_step_into(&x, &mut infer_state, &mut z);
            for (a, b) in train_state.iter().zip(&infer_state) {
                assert_eq!(a.h, b.h);
                assert_eq!(a.c, b.c);
            }
        }
    }

    /// Streaming backward must equal the allocating wrapper (which the
    /// finite-difference test already validates).
    #[test]
    fn fused_backward_matches_naive_within_tolerance() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut stack = LstmStack::new(4, 5, 2, &mut rng);
        let xs: Vec<Vec<f32>> = (0..7)
            .map(|_| (0..4).map(|_| rng.random_range(-1.0f32..1.0)).collect())
            .collect();
        let mut state = stack.zero_state();
        let mut caches = Vec::new();
        for x in &xs {
            let (_, c) = stack.forward_step(x, &mut state);
            caches.push(c);
        }
        let dtop: Vec<Vec<f32>> = (0..xs.len())
            .map(|_| (0..5).map(|_| rng.random_range(-1.0f32..1.0)).collect())
            .collect();

        stack.zero_grad();
        let dxs_wrapper = stack.backward_sequence(&caches, &dtop);
        let grads_wrapper: Vec<Vec<f32>> = stack
            .layers
            .iter()
            .flat_map(|l| {
                [
                    l.w_ih.grad.data.clone(),
                    l.w_hh.grad.data.clone(),
                    l.b.grad.data.clone(),
                ]
            })
            .collect();

        stack.zero_grad();
        let mut dxs_stream = vec![Vec::new(); xs.len()];
        stack.backward_sequence_with(
            xs.len(),
            |t| &caches[t][..],
            |t| &dtop[t][..],
            |t, dx| dxs_stream[t] = dx.to_vec(),
        );
        let grads_stream: Vec<Vec<f32>> = stack
            .layers
            .iter()
            .flat_map(|l| {
                [
                    l.w_ih.grad.data.clone(),
                    l.w_hh.grad.data.clone(),
                    l.b.grad.data.clone(),
                ]
            })
            .collect();

        for (a, b) in dxs_wrapper.iter().zip(&dxs_stream) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-5);
            }
            assert_eq!(a, b);
        }
        for (a, b) in grads_wrapper.iter().zip(&grads_stream) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-5);
            }
            assert_eq!(a, b);
        }
    }

    /// The batched inference step must be bit-identical, per lane, to `B`
    /// independent serial `infer_step_into` trajectories — the determinism
    /// contract of the batched generation engine.
    #[test]
    fn batch_infer_matches_independent_serial_lanes_bitwise() {
        let mut rng = StdRng::seed_from_u64(23);
        for &(input, hidden, layers) in &[(3, 4, 1), (5, 6, 2), (16, 16, 2), (7, 5, 3)] {
            for &batch in &[1usize, 2, 4, 8] {
                let stack = LstmStack::new(input, hidden, layers, &mut rng);
                let mut bstate = stack.zero_batch_state(batch);
                let mut serial: Vec<StackState> = (0..batch).map(|_| stack.zero_state()).collect();
                let mut z = vec![0.0; stack.batch_scratch_len(batch)];
                let mut zs = vec![0.0; stack.scratch_len()];
                for _ in 0..5 {
                    let x: Vec<f32> = (0..batch * input)
                        .map(|_| rng.random_range(-1.0f32..1.0))
                        .collect();
                    stack.infer_step_batch_into(&x, &mut bstate, &mut z);
                    for (lane, st) in serial.iter_mut().enumerate() {
                        stack.infer_step_into(&x[lane * input..(lane + 1) * input], st, &mut zs);
                        for (l, layer) in st.iter().enumerate() {
                            assert_eq!(bstate.lane_h(l, lane), &layer.h[..], "h lane {lane}");
                            assert_eq!(bstate.lane_c(l, lane), &layer.c[..], "c lane {lane}");
                        }
                    }
                }
            }
        }
    }

    /// Lane refill: resetting one lane mid-stream zeroes only that lane;
    /// its neighbours continue bit-identically to uninterrupted serial
    /// runs, and the reset lane restarts from the zero state exactly.
    #[test]
    fn reset_lane_is_isolated() {
        let mut rng = StdRng::seed_from_u64(29);
        let (input, hidden, layers, batch) = (4, 6, 2, 3);
        let stack = LstmStack::new(input, hidden, layers, &mut rng);
        let mut bstate = stack.zero_batch_state(batch);
        let mut serial: Vec<StackState> = (0..batch).map(|_| stack.zero_state()).collect();
        let mut z = vec![0.0; stack.batch_scratch_len(batch)];
        let mut zs = vec![0.0; stack.scratch_len()];
        let xs: Vec<Vec<f32>> = (0..6)
            .map(|_| {
                (0..batch * input)
                    .map(|_| rng.random_range(-1.0f32..1.0))
                    .collect()
            })
            .collect();
        for (t, x) in xs.iter().enumerate() {
            if t == 3 {
                // Lane 1 finished its query and is refilled.
                bstate.reset_lane(1);
                serial[1] = stack.zero_state();
            }
            stack.infer_step_batch_into(x, &mut bstate, &mut z);
            for (lane, st) in serial.iter_mut().enumerate() {
                stack.infer_step_into(&x[lane * input..(lane + 1) * input], st, &mut zs);
                for (l, layer) in st.iter().enumerate() {
                    assert_eq!(bstate.lane_h(l, lane), &layer.h[..], "t {t} lane {lane}");
                    assert_eq!(bstate.lane_c(l, lane), &layer.c[..], "t {t} lane {lane}");
                }
            }
        }
    }

    #[test]
    fn can_learn_to_remember_first_token() {
        // Task: output at the last step should equal the first input's sign.
        // A pure recurrence test: the LSTM must carry information across
        // 5 steps of noise.
        let mut rng = StdRng::seed_from_u64(3);
        let mut stack = LstmStack::new(1, 8, 1, &mut rng);
        let mut head = crate::linear::Linear::new(8, 1, &mut rng);
        let mut adam = crate::param::Adam::new(0.02);

        let mut losses = Vec::new();
        for epoch in 0..300 {
            let sign = if epoch % 2 == 0 { 1.0f32 } else { -1.0 };
            let mut xs = vec![vec![sign]];
            for k in 0..5 {
                xs.push(vec![((k * 37 + epoch) % 7) as f32 / 7.0 - 0.5]);
            }
            stack.zero_grad();
            head.zero_grad();
            let mut state = stack.zero_state();
            let mut caches = Vec::new();
            let mut last_top = Vec::new();
            for x in &xs {
                let (top, c) = stack.forward_step(x, &mut state);
                last_top = top;
                caches.push(c);
            }
            let y = head.forward(&last_top)[0];
            let err = y - sign;
            losses.push(err * err);
            let dtop_last = head.backward(&last_top, &[2.0 * err]);
            let mut dtop: Vec<Vec<f32>> = xs.iter().map(|_| vec![0.0; 8]).collect();
            *dtop.last_mut().unwrap() = dtop_last;
            stack.backward_sequence(&caches, &dtop);
            let mut params = stack.params_mut();
            params.extend(head.params_mut());
            adam.step(&mut params);
        }
        let early: f32 = losses[..20].iter().sum::<f32>() / 20.0;
        let late: f32 = losses[losses.len() - 20..].iter().sum::<f32>() / 20.0;
        assert!(
            late < early * 0.2,
            "LSTM failed to learn: early {early}, late {late}"
        );
    }

    /// Ragged lane-batched training forward + BPTT must be bit-identical,
    /// per lane, to a serial forward/backward of that lane's episode alone
    /// — the gradient-side determinism contract of batched training.
    #[test]
    fn batched_bptt_matches_serial_lanes_bitwise() {
        let mut rng = StdRng::seed_from_u64(41);
        for &(input, hidden, layers) in &[(3, 4, 1), (5, 6, 2), (16, 16, 2)] {
            let batch = 4usize;
            let steps = [5usize, 2, 4, 1];
            let max_t = 5usize;
            let stack = LstmStack::new(input, hidden, layers, &mut rng);
            let xs: Vec<Vec<f32>> = (0..max_t)
                .map(|_| {
                    (0..batch * input)
                        .map(|_| rng.random_range(-1.0f32..1.0))
                        .collect()
                })
                .collect();
            let dtops: Vec<Vec<f32>> = (0..max_t)
                .map(|_| {
                    (0..batch * hidden)
                        .map(|_| rng.random_range(-1.0f32..1.0))
                        .collect()
                })
                .collect();

            // Batched forward with ragged active flags.
            let mut bstate = stack.zero_batch_state(batch);
            let mut arena: Vec<Vec<StackCache>> = (0..batch)
                .map(|lane| (0..steps[lane]).map(|_| stack.empty_cache()).collect())
                .collect();
            let mut z = vec![0.0; stack.batch_scratch_len(batch)];
            for (t, x) in xs.iter().enumerate() {
                let active: Vec<bool> = steps.iter().map(|&n| t < n).collect();
                // Collect this step's cache slot per active lane.
                let mut slots: Vec<StackCache> = (0..batch).map(|_| stack.empty_cache()).collect();
                stack.forward_step_batch_into(x, &mut bstate, &active, &mut slots, &mut z);
                for (lane, slot) in slots.into_iter().enumerate() {
                    if active[lane] {
                        arena[lane][t] = slot;
                    }
                }
            }

            // Batched backward into per-lane arenas.
            let mut grads: Vec<LstmStackGrads> =
                (0..batch).map(|_| stack.empty_stack_grads()).collect();
            let mut dxs_batch: Vec<Vec<Vec<f32>>> = (0..batch)
                .map(|lane| vec![Vec::new(); steps[lane]])
                .collect();
            stack.backward_sequence_batch_with(
                batch,
                &steps,
                |lane, s| &arena[lane][s][..],
                |lane, s| &dtops[s][lane * hidden..(lane + 1) * hidden],
                |lane, s, dx| dxs_batch[lane][s] = dx.to_vec(),
                &mut grads,
            );

            // Serial reference per lane.
            for lane in 0..batch {
                let mut sstack = stack.clone();
                sstack.zero_grad();
                let mut state = sstack.zero_state();
                let mut caches = Vec::new();
                for x in xs.iter().take(steps[lane]) {
                    let (_, c) =
                        sstack.forward_step(&x[lane * input..(lane + 1) * input], &mut state);
                    caches.push(c);
                }
                // Forward caches must match the batched arena bitwise.
                for (t, (a, b)) in arena[lane].iter().zip(&caches).enumerate() {
                    for (ca, cb) in a.iter().zip(b) {
                        assert_eq!(ca.x, cb.x, "lane {lane} t {t} x");
                        assert_eq!(ca.h_prev, cb.h_prev, "lane {lane} t {t} h_prev");
                        assert_eq!(ca.c_prev, cb.c_prev, "lane {lane} t {t} c_prev");
                        assert_eq!(ca.i, cb.i, "lane {lane} t {t} i");
                        assert_eq!(ca.tanh_c, cb.tanh_c, "lane {lane} t {t} tanh_c");
                    }
                }
                let dtop: Vec<Vec<f32>> = (0..steps[lane])
                    .map(|t| dtops[t][lane * hidden..(lane + 1) * hidden].to_vec())
                    .collect();
                let dxs = sstack.backward_sequence(&caches, &dtop);
                for (t, (a, b)) in dxs_batch[lane].iter().zip(&dxs).enumerate() {
                    assert_eq!(
                        a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "dx lane {lane} t {t}"
                    );
                }
                for (l, (g, sl)) in grads[lane].iter().zip(&sstack.layers).enumerate() {
                    assert_eq!(g.w_ih.data, sl.w_ih.grad.data, "lane {lane} layer {l} w_ih");
                    assert_eq!(g.w_hh.data, sl.w_hh.grad.data, "lane {lane} layer {l} w_hh");
                    assert_eq!(g.b.data, sl.b.grad.data, "lane {lane} layer {l} b");
                }
            }
        }
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let l = LstmLayer::new(2, 3, &mut rng);
        assert_eq!(&l.b.value.data[3..6], &[1.0, 1.0, 1.0]);
        assert_eq!(&l.b.value.data[0..3], &[0.0, 0.0, 0.0]);
    }
}
