//! Long Short-Term Memory layers with full backpropagation through time.
//!
//! Gate order in the packed weight matrices is `[i, f, g, o]` (input,
//! forget, cell candidate, output). Forward steps return a cache that the
//! caller stores per time step; `backward_step` consumes caches in reverse
//! order. Gradients are verified against finite differences in the tests.

use crate::param::Param;
use crate::tensor::{dsigmoid, dtanh, sigmoid, Mat};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hidden state of one LSTM layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmState {
    pub h: Vec<f32>,
    pub c: Vec<f32>,
}

impl LstmState {
    pub fn zeros(hidden: usize) -> Self {
        LstmState {
            h: vec![0.0; hidden],
            c: vec![0.0; hidden],
        }
    }
}

/// Per-step forward cache for one layer.
#[derive(Debug, Clone)]
pub struct LstmCache {
    x: Vec<f32>,
    h_prev: Vec<f32>,
    c_prev: Vec<f32>,
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    tanh_c: Vec<f32>,
}

/// One LSTM layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmLayer {
    pub input: usize,
    pub hidden: usize,
    pub w_ih: Param, // 4H × I
    pub w_hh: Param, // 4H × H
    pub b: Param,    // 4H × 1
}

impl LstmLayer {
    pub fn new<R: Rng + ?Sized>(input: usize, hidden: usize, rng: &mut R) -> Self {
        let mut b = Param::new(Mat::zeros(4 * hidden, 1));
        // Forget-gate bias init to 1.0 — the standard trick that keeps
        // gradients flowing early in training.
        for v in &mut b.value.data[hidden..2 * hidden] {
            *v = 1.0;
        }
        LstmLayer {
            input,
            hidden,
            w_ih: Param::new(Mat::xavier(4 * hidden, input, rng)),
            w_hh: Param::new(Mat::xavier(4 * hidden, hidden, rng)),
            b,
        }
    }

    /// One forward step. Returns the new state and the backward cache.
    pub fn forward_step(&self, x: &[f32], prev: &LstmState) -> (LstmState, LstmCache) {
        let h = self.hidden;
        let mut z = self.b.value.data.clone();
        let mut tmp = vec![0.0; 4 * h];
        self.w_ih.value.matvec(x, &mut tmp);
        for (zi, t) in z.iter_mut().zip(&tmp) {
            *zi += t;
        }
        self.w_hh.value.matvec(&prev.h, &mut tmp);
        for (zi, t) in z.iter_mut().zip(&tmp) {
            *zi += t;
        }

        let mut i = vec![0.0; h];
        let mut f = vec![0.0; h];
        let mut g = vec![0.0; h];
        let mut o = vec![0.0; h];
        for k in 0..h {
            i[k] = sigmoid(z[k]);
            f[k] = sigmoid(z[h + k]);
            g[k] = z[2 * h + k].tanh();
            o[k] = sigmoid(z[3 * h + k]);
        }
        let mut c = vec![0.0; h];
        let mut tanh_c = vec![0.0; h];
        let mut h_new = vec![0.0; h];
        for k in 0..h {
            c[k] = f[k] * prev.c[k] + i[k] * g[k];
            tanh_c[k] = c[k].tanh();
            h_new[k] = o[k] * tanh_c[k];
        }
        let cache = LstmCache {
            x: x.to_vec(),
            h_prev: prev.h.clone(),
            c_prev: prev.c.clone(),
            i,
            f,
            g,
            o,
            tanh_c,
        };
        (LstmState { h: h_new, c }, cache)
    }

    /// One backward step.
    ///
    /// `dh` is the loss gradient w.r.t. this step's output `h` **plus** the
    /// recurrent gradient flowing back from step t+1; `dc_next` is the cell
    /// gradient from step t+1. Returns `(dx, dh_prev, dc_prev)` and
    /// accumulates parameter gradients.
    pub fn backward_step(
        &mut self,
        cache: &LstmCache,
        dh: &[f32],
        dc_next: &[f32],
    ) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let h = self.hidden;
        let mut dz = vec![0.0; 4 * h];
        let mut dc_prev = vec![0.0; h];
        for k in 0..h {
            let do_ = dh[k] * cache.tanh_c[k];
            let dc = dc_next[k] + dh[k] * cache.o[k] * dtanh(cache.tanh_c[k]);
            let di = dc * cache.g[k];
            let df = dc * cache.c_prev[k];
            let dg = dc * cache.i[k];
            dc_prev[k] = dc * cache.f[k];
            dz[k] = di * dsigmoid(cache.i[k]);
            dz[h + k] = df * dsigmoid(cache.f[k]);
            dz[2 * h + k] = dg * dtanh(cache.g[k]);
            dz[3 * h + k] = do_ * dsigmoid(cache.o[k]);
        }
        self.w_ih.grad.add_outer(&dz, &cache.x);
        self.w_hh.grad.add_outer(&dz, &cache.h_prev);
        for (g, d) in self.b.grad.data.iter_mut().zip(&dz) {
            *g += d;
        }
        let mut dx = vec![0.0; self.input];
        self.w_ih.value.matvec_t_acc(&dz, &mut dx);
        let mut dh_prev = vec![0.0; h];
        self.w_hh.value.matvec_t_acc(&dz, &mut dh_prev);
        (dx, dh_prev, dc_prev)
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w_ih, &mut self.w_hh, &mut self.b]
    }

    pub fn zero_grad(&mut self) {
        self.w_ih.zero_grad();
        self.w_hh.zero_grad();
        self.b.zero_grad();
    }

    pub fn restore_buffers(&mut self) {
        self.w_ih.restore_buffers();
        self.w_hh.restore_buffers();
        self.b.restore_buffers();
    }
}

/// A stack of LSTM layers (the paper uses 2 layers × 30 cells).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmStack {
    pub layers: Vec<LstmLayer>,
}

/// Hidden states for the whole stack.
pub type StackState = Vec<LstmState>;
/// Per-step caches for the whole stack.
pub type StackCache = Vec<LstmCache>;

impl LstmStack {
    /// `layers` LSTM layers: the first maps `input → hidden`, the rest
    /// `hidden → hidden`.
    pub fn new<R: Rng + ?Sized>(input: usize, hidden: usize, layers: usize, rng: &mut R) -> Self {
        assert!(layers >= 1);
        let mut v = Vec::with_capacity(layers);
        v.push(LstmLayer::new(input, hidden, rng));
        for _ in 1..layers {
            v.push(LstmLayer::new(hidden, hidden, rng));
        }
        LstmStack { layers: v }
    }

    pub fn hidden(&self) -> usize {
        self.layers[0].hidden
    }

    pub fn zero_state(&self) -> StackState {
        self.layers
            .iter()
            .map(|l| LstmState::zeros(l.hidden))
            .collect()
    }

    /// One forward step through all layers; returns the top-layer output.
    pub fn forward_step(&self, x: &[f32], state: &mut StackState) -> (Vec<f32>, StackCache) {
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut input = x.to_vec();
        for (layer, st) in self.layers.iter().zip(state.iter_mut()) {
            let (new_state, cache) = layer.forward_step(&input, st);
            input = new_state.h.clone();
            *st = new_state;
            caches.push(cache);
        }
        (input, caches)
    }

    /// Backward through a full sequence.
    ///
    /// `caches[t]` is the cache of step `t`; `dtop[t]` is the loss gradient
    /// w.r.t. the top-layer output at step `t`. Returns `dL/dx_t` for every
    /// step (for the embedding below).
    pub fn backward_sequence(&mut self, caches: &[StackCache], dtop: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let n_layers = self.layers.len();
        let steps = caches.len();
        assert_eq!(steps, dtop.len());
        // Recurrent gradients flowing right-to-left, per layer.
        let mut dh_next: Vec<Vec<f32>> = self.layers.iter().map(|l| vec![0.0; l.hidden]).collect();
        let mut dc_next: Vec<Vec<f32>> = self.layers.iter().map(|l| vec![0.0; l.hidden]).collect();
        let mut dx_out = vec![Vec::new(); steps];

        for t in (0..steps).rev() {
            // Gradient w.r.t. the current layer's output; starts at the top.
            let mut dh_down: Vec<f32> = dtop[t].clone();
            for l in (0..n_layers).rev() {
                let mut dh = dh_down.clone();
                for (a, b) in dh.iter_mut().zip(&dh_next[l]) {
                    *a += b;
                }
                let (dx, dh_prev, dc_prev) =
                    self.layers[l].backward_step(&caches[t][l], &dh, &dc_next[l]);
                dh_next[l] = dh_prev;
                dc_next[l] = dc_prev;
                dh_down = dx; // becomes the output-gradient of the layer below
            }
            dx_out[t] = dh_down;
        }
        dx_out
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    pub fn zero_grad(&mut self) {
        self.layers.iter_mut().for_each(LstmLayer::zero_grad);
    }

    pub fn restore_buffers(&mut self) {
        self.layers.iter_mut().for_each(LstmLayer::restore_buffers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Optimizer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runs a full sequence and returns a scalar loss: the dot product of
    /// each step's top output with fixed coefficients.
    fn seq_loss(stack: &LstmStack, xs: &[Vec<f32>], coef: &[f32]) -> f32 {
        let mut state = stack.zero_state();
        let mut loss = 0.0;
        for x in xs {
            let (top, _) = stack.forward_step(x, &mut state);
            loss += top.iter().zip(coef).map(|(a, b)| a * b).sum::<f32>();
        }
        loss
    }

    #[test]
    fn forward_shapes_and_state_evolution() {
        let mut rng = StdRng::seed_from_u64(1);
        let stack = LstmStack::new(3, 4, 2, &mut rng);
        let mut state = stack.zero_state();
        let (out, caches) = stack.forward_step(&[0.1, -0.2, 0.3], &mut state);
        assert_eq!(out.len(), 4);
        assert_eq!(caches.len(), 2);
        assert_ne!(state[0].h, vec![0.0; 4]);
        // Second step changes the state further.
        let h1 = state[1].h.clone();
        stack.forward_step(&[0.1, -0.2, 0.3], &mut state);
        assert_ne!(state[1].h, h1);
    }

    #[test]
    fn bptt_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut stack = LstmStack::new(2, 3, 2, &mut rng);
        let xs: Vec<Vec<f32>> = vec![
            vec![0.5, -0.3],
            vec![-0.1, 0.8],
            vec![0.2, 0.2],
            vec![-0.6, 0.4],
        ];
        let coef = [1.0, -0.5, 0.7];

        // Analytic gradients.
        stack.zero_grad();
        let mut state = stack.zero_state();
        let mut caches = Vec::new();
        for x in &xs {
            let (_, c) = stack.forward_step(x, &mut state);
            caches.push(c);
        }
        let dtop: Vec<Vec<f32>> = xs.iter().map(|_| coef.to_vec()).collect();
        let dxs = stack.backward_sequence(&caches, &dtop);

        // Numeric check on a sample of parameters from every tensor.
        fn tensor_of(l: &mut LstmLayer, t: usize) -> &mut crate::param::Param {
            match t {
                0 => &mut l.w_ih,
                1 => &mut l.w_hh,
                _ => &mut l.b,
            }
        }
        let eps = 1e-3;
        for layer_idx in 0..2 {
            for tensor in 0..3 {
                let len = tensor_of(&mut stack.layers[layer_idx], tensor)
                    .value
                    .data
                    .len();
                for &i in &[0usize, len / 2, len - 1] {
                    let analytic = tensor_of(&mut stack.layers[layer_idx], tensor).grad.data[i];
                    let orig = tensor_of(&mut stack.layers[layer_idx], tensor).value.data[i];
                    tensor_of(&mut stack.layers[layer_idx], tensor).value.data[i] = orig + eps;
                    let up = seq_loss(&stack, &xs, &coef);
                    tensor_of(&mut stack.layers[layer_idx], tensor).value.data[i] = orig - eps;
                    let dn = seq_loss(&stack, &xs, &coef);
                    tensor_of(&mut stack.layers[layer_idx], tensor).value.data[i] = orig;
                    let num = (up - dn) / (2.0 * eps);
                    assert!(
                        (num - analytic).abs() < 2e-2,
                        "layer {layer_idx} tensor {tensor} idx {i}: \
                         numeric {num} vs analytic {analytic}"
                    );
                }
            }
        }

        // Input gradients on step 0.
        for i in 0..2 {
            let mut xp = xs.clone();
            xp[0][i] += eps;
            let up = seq_loss(&stack, &xp, &coef);
            xp[0][i] -= 2.0 * eps;
            let dn = seq_loss(&stack, &xp, &coef);
            let num = (up - dn) / (2.0 * eps);
            assert!(
                (num - dxs[0][i]).abs() < 2e-2,
                "dx[0][{i}]: numeric {num} vs analytic {}",
                dxs[0][i]
            );
        }
    }

    #[test]
    fn can_learn_to_remember_first_token() {
        // Task: output at the last step should equal the first input's sign.
        // A pure recurrence test: the LSTM must carry information across
        // 5 steps of noise.
        let mut rng = StdRng::seed_from_u64(3);
        let mut stack = LstmStack::new(1, 8, 1, &mut rng);
        let mut head = crate::linear::Linear::new(8, 1, &mut rng);
        let mut adam = crate::param::Adam::new(0.02);

        let mut losses = Vec::new();
        for epoch in 0..300 {
            let sign = if epoch % 2 == 0 { 1.0f32 } else { -1.0 };
            let mut xs = vec![vec![sign]];
            for k in 0..5 {
                xs.push(vec![((k * 37 + epoch) % 7) as f32 / 7.0 - 0.5]);
            }
            stack.zero_grad();
            head.zero_grad();
            let mut state = stack.zero_state();
            let mut caches = Vec::new();
            let mut last_top = Vec::new();
            for x in &xs {
                let (top, c) = stack.forward_step(x, &mut state);
                last_top = top;
                caches.push(c);
            }
            let y = head.forward(&last_top)[0];
            let err = y - sign;
            losses.push(err * err);
            let dtop_last = head.backward(&last_top, &[2.0 * err]);
            let mut dtop: Vec<Vec<f32>> = xs.iter().map(|_| vec![0.0; 8]).collect();
            *dtop.last_mut().unwrap() = dtop_last;
            stack.backward_sequence(&caches, &dtop);
            let mut params = stack.params_mut();
            params.extend(head.params_mut());
            adam.step(&mut params);
        }
        let early: f32 = losses[..20].iter().sum::<f32>() / 20.0;
        let late: f32 = losses[losses.len() - 20..].iter().sum::<f32>() / 20.0;
        assert!(
            late < early * 0.2,
            "LSTM failed to learn: early {early}, late {late}"
        );
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let l = LstmLayer::new(2, 3, &mut rng);
        assert_eq!(&l.b.value.data[3..6], &[1.0, 1.0, 1.0]);
        assert_eq!(&l.b.value.data[0..3], &[0.0, 0.0, 0.0]);
    }
}
