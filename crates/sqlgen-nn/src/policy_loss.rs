//! Policy-gradient loss gradients over a masked softmax.
//!
//! The loss per step is `L = −A · log π(a|s) − λ · H(π(·|s))` (Eq. 4 in the
//! paper). Both terms differentiate cleanly w.r.t. the pre-softmax logits:
//!
//! * policy term: `A · (π − e_a)` on unmasked entries,
//! * entropy term: `λ · π_k · (log π_k + H)`.
//!
//! Masked entries have `π = 0` and receive zero gradient, so the FSM's
//! action masking composes exactly with backprop.

use crate::tensor::entropy;

/// Gradient of `−A·log π(a)` w.r.t. the logits, given the (masked) softmax
/// output `probs`. Masked entries (prob 0) get gradient 0.
pub fn policy_grad(probs: &[f32], action: usize, advantage: f32, out: &mut [f32]) {
    debug_assert_eq!(probs.len(), out.len());
    for (o, &p) in out.iter_mut().zip(probs) {
        *o += advantage * p;
    }
    out[action] -= advantage;
}

/// Gradient of `−λ·H(π)` w.r.t. the logits, added into `out`.
pub fn entropy_grad(probs: &[f32], lambda: f32, out: &mut [f32]) {
    let h = entropy(probs);
    for (o, &p) in out.iter_mut().zip(probs) {
        if p > 0.0 {
            *o += lambda * p * (p.ln() + h);
        }
    }
}

/// Combined per-step logit gradient for the actor:
/// `∂/∂logits [ −A·log π(a) − λ·H(π) ]`.
pub fn actor_logit_grad(probs: &[f32], action: usize, advantage: f32, lambda: f32) -> Vec<f32> {
    let mut g = vec![0.0; probs.len()];
    actor_logit_grad_into(probs, action, advantage, lambda, &mut g);
    g
}

/// [`actor_logit_grad`] into a caller-provided buffer (overwritten). Lets
/// batched backward passes write each lane's row of the `[batch × vocab]`
/// logit-gradient block without a per-step allocation.
pub fn actor_logit_grad_into(
    probs: &[f32],
    action: usize,
    advantage: f32,
    lambda: f32,
    out: &mut [f32],
) {
    out.iter_mut().for_each(|v| *v = 0.0);
    policy_grad(probs, action, advantage, out);
    if lambda != 0.0 {
        entropy_grad(probs, lambda, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::masked_softmax;

    /// Numerically differentiates `L(logits)` and compares with the
    /// analytic gradient, including masking.
    #[test]
    fn gradients_match_finite_differences() {
        let logits = vec![0.3f32, -1.2, 0.9, 0.0, 2.0];
        let mask = vec![true, true, false, true, true];
        let action = 3usize;
        let advantage = 1.7f32;
        let lambda = 0.05f32;

        let loss = |l: &[f32]| -> f32 {
            let mut p = l.to_vec();
            masked_softmax(&mut p, &mask);
            let h = entropy(&p);
            -advantage * p[action].ln() - lambda * h
        };

        let mut probs = logits.clone();
        masked_softmax(&mut probs, &mask);
        let g = actor_logit_grad(&probs, action, advantage, lambda);

        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp[i] += eps;
            let up = loss(&lp);
            lp[i] -= 2.0 * eps;
            let dn = loss(&lp);
            let num = (up - dn) / (2.0 * eps);
            assert!(
                (num - g[i]).abs() < 1e-2,
                "logit {i}: numeric {num} vs analytic {}",
                g[i]
            );
        }
        // Masked entry must have exactly zero gradient.
        assert_eq!(g[2], 0.0);
    }

    #[test]
    fn positive_advantage_pushes_action_up() {
        let mut probs = vec![1.0f32, 1.0, 1.0];
        masked_softmax(&mut probs, &[true, true, true]);
        let g = actor_logit_grad(&probs, 0, 1.0, 0.0);
        // Gradient descent moves logits opposite the gradient: the chosen
        // action's logit gradient must be negative.
        assert!(g[0] < 0.0);
        assert!(g[1] > 0.0 && g[2] > 0.0);
        // Gradients over the simplex sum to ~0.
        assert!(g.iter().sum::<f32>().abs() < 1e-6);
    }

    #[test]
    fn negative_advantage_pushes_action_down() {
        let mut probs = vec![1.0f32, 1.0];
        masked_softmax(&mut probs, &[true, true]);
        let g = actor_logit_grad(&probs, 0, -2.0, 0.0);
        assert!(g[0] > 0.0);
    }

    #[test]
    fn entropy_grad_flattens_peaky_distributions() {
        // A peaked distribution: entropy regularization should push the
        // dominant logit down (its gradient positive) to increase entropy.
        let probs = vec![0.9f32, 0.05, 0.05];
        let mut g = vec![0.0; 3];
        entropy_grad(&probs, 1.0, &mut g);
        assert!(g[0] > 0.0, "dominant logit should be pushed down: {g:?}");
        assert!(g[1] < 0.0);
    }
}
