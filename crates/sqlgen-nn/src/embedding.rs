//! Token embedding.
//!
//! The paper one-hot encodes every token and feeds it to the LSTM through
//! an input layer whose dimension equals the action-space size. A linear
//! layer applied to a one-hot vector is exactly a row lookup, so we
//! implement it as an embedding table — mathematically identical, O(E)
//! instead of O(V·E) per step.

use crate::param::Param;
use crate::tensor::Mat;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// `vocab × dim` lookup table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Embedding {
    pub table: Param,
}

impl Embedding {
    pub fn new<R: Rng + ?Sized>(vocab: usize, dim: usize, rng: &mut R) -> Self {
        Embedding {
            table: Param::new(Mat::xavier(vocab, dim, rng)),
        }
    }

    pub fn vocab_size(&self) -> usize {
        self.table.value.rows
    }

    pub fn dim(&self) -> usize {
        self.table.value.cols
    }

    /// The embedding of `token`, borrowed (no copy).
    #[inline]
    pub fn row(&self, token: usize) -> &[f32] {
        self.table.value.row(token)
    }

    /// The embedding of `token`.
    pub fn forward(&self, token: usize) -> Vec<f32> {
        self.row(token).to_vec()
    }

    /// Accumulates the gradient for `token`'s row.
    pub fn backward(&mut self, token: usize, dy: &[f32]) {
        Self::backward_buf(&mut self.table.grad, token, dy);
    }

    /// Accumulates `token`'s row gradient into a detached buffer (the
    /// per-lane arena of the batched backward). Same op sequence as
    /// [`Embedding::backward`], so per-lane buffers reduced in ascending
    /// lane order match a serial backward bitwise per lane.
    pub fn backward_buf(grad: &mut Mat, token: usize, dy: &[f32]) {
        let row = grad.row_mut(token);
        for (g, d) in row.iter_mut().zip(dy) {
            *g += d;
        }
    }

    /// Detached gradient buffer shaped like the table.
    pub fn empty_grads(&self) -> Mat {
        Mat::zeros(self.vocab_size(), self.dim())
    }

    /// Reduces one lane's table-gradient buffer into `Param::grad`.
    pub fn accumulate_grads(&mut self, grads: &Mat) {
        self.table.grad.add_assign(grads);
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.table]
    }

    pub fn zero_grad(&mut self) {
        self.table.zero_grad();
    }

    pub fn restore_buffers(&mut self) {
        self.table.restore_buffers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lookup_returns_the_row() {
        let mut rng = StdRng::seed_from_u64(1);
        let e = Embedding::new(5, 3, &mut rng);
        assert_eq!(e.forward(2), e.table.value.row(2).to_vec());
        assert_eq!(e.vocab_size(), 5);
        assert_eq!(e.dim(), 3);
    }

    #[test]
    fn backward_touches_only_that_row() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut e = Embedding::new(4, 2, &mut rng);
        e.zero_grad();
        e.backward(1, &[1.0, 2.0]);
        e.backward(1, &[1.0, 0.0]);
        assert_eq!(e.table.grad.row(1), &[2.0, 2.0]);
        assert_eq!(e.table.grad.row(0), &[0.0, 0.0]);
        assert_eq!(e.table.grad.row(3), &[0.0, 0.0]);
    }
}
