//! Trainable parameters and optimizers (SGD, Adam).

use crate::tensor::Mat;
use serde::{Deserialize, Serialize};

/// A trainable tensor with its gradient accumulator and Adam moments.
///
/// Keeping the optimizer state inside the parameter keeps the "collect all
/// parameters of a network" interface to a single `Vec<&mut Param>` without
/// any registry bookkeeping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    pub value: Mat,
    #[serde(skip, default = "Mat::default_empty")]
    pub grad: Mat,
    #[serde(skip, default = "Mat::default_empty")]
    pub m: Mat,
    #[serde(skip, default = "Mat::default_empty")]
    pub v: Mat,
}

impl Mat {
    fn default_empty() -> Mat {
        Mat::zeros(0, 0)
    }
}

impl Param {
    pub fn new(value: Mat) -> Self {
        let (r, c) = (value.rows, value.cols);
        Param {
            value,
            grad: Mat::zeros(r, c),
            m: Mat::zeros(r, c),
            v: Mat::zeros(r, c),
        }
    }

    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Re-allocates optimizer/grad buffers after deserialization (serde
    /// skips them).
    pub fn restore_buffers(&mut self) {
        let (r, c) = (self.value.rows, self.value.cols);
        if self.grad.rows != r || self.grad.cols != c {
            self.grad = Mat::zeros(r, c);
            self.m = Mat::zeros(r, c);
            self.v = Mat::zeros(r, c);
        }
    }
}

/// Optimizer interface: updates parameters in place from their gradients.
pub trait Optimizer {
    fn step(&mut self, params: &mut [&mut Param]);
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Sgd {
    pub lr: f32,
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        for p in params.iter_mut() {
            for (w, g) in p.value.data.iter_mut().zip(&p.grad.data) {
                *w -= self.lr * g;
            }
        }
    }
}

/// Adam (Kingma & Ba). Moments live inside the [`Param`]s; only the step
/// counter lives here, so one Adam instance can drive any parameter set.
#[derive(Debug, Clone)]
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    t: u64,
}

impl Adam {
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in params.iter_mut() {
            let n = p.value.data.len();
            debug_assert_eq!(p.grad.data.len(), n);
            for i in 0..n {
                let g = p.grad.data[i];
                p.m.data[i] = self.beta1 * p.m.data[i] + (1.0 - self.beta1) * g;
                p.v.data[i] = self.beta2 * p.v.data[i] + (1.0 - self.beta2) * g * g;
                let mhat = p.m.data[i] / bc1;
                let vhat = p.v.data[i] / bc2;
                p.value.data[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// Clips the global gradient norm across all parameters to `max_norm`.
/// Returns the pre-clip norm.
pub fn clip_grad_norm(params: &mut [&mut Param], max_norm: f32) -> f32 {
    let total: f32 = params
        .iter()
        .map(|p| p.grad.data.iter().map(|g| g * g).sum::<f32>())
        .sum::<f32>()
        .sqrt();
    if total > max_norm && total > 0.0 {
        let s = max_norm / total;
        for p in params.iter_mut() {
            p.grad.scale(s);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad_param(x0: f32) -> Param {
        let mut p = Param::new(Mat::zeros(1, 1));
        p.value.data[0] = x0;
        p
    }

    /// Minimize f(x) = (x - 3)^2 with each optimizer.
    fn run<O: Optimizer>(opt: &mut O, steps: usize) -> f32 {
        let mut p = quad_param(0.0);
        for _ in 0..steps {
            p.zero_grad();
            p.grad.data[0] = 2.0 * (p.value.data[0] - 3.0);
            opt.step(&mut [&mut p]);
        }
        p.value.data[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = run(&mut Sgd { lr: 0.1 }, 200);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = run(&mut Adam::new(0.1), 500);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_moves_against_gradient() {
        let mut p = quad_param(0.0);
        p.grad.data[0] = 1.0;
        let mut adam = Adam::new(0.01);
        adam.step(&mut [&mut p]);
        assert!(p.value.data[0] < 0.0);
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let mut p1 = quad_param(0.0);
        let mut p2 = quad_param(0.0);
        p1.grad.data[0] = 3.0;
        p2.grad.data[0] = 4.0;
        let pre = clip_grad_norm(&mut [&mut p1, &mut p2], 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        let post = (p1.grad.data[0].powi(2) + p2.grad.data[0].powi(2)).sqrt();
        assert!((post - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_grad_norm_noop_when_small() {
        let mut p = quad_param(0.0);
        p.grad.data[0] = 0.5;
        clip_grad_norm(&mut [&mut p], 1.0);
        assert_eq!(p.grad.data[0], 0.5);
    }

    #[test]
    fn param_serde_roundtrip_restores_buffers() {
        let p = Param::new(Mat::xavier(3, 4, &mut rand::rng()));
        let json = serde_json::to_string(&p).unwrap();
        let mut q: Param = serde_json::from_str(&json).unwrap();
        q.restore_buffers();
        assert_eq!(p.value, q.value);
        assert_eq!(q.grad.rows, 3);
        assert_eq!(q.m.cols, 4);
    }
}
