//! Inverted dropout.
//!
//! The paper applies dropout 0.3 inside both the actor and the critic.
//! Inverted scaling (divide by the keep probability at train time) keeps
//! inference a no-op.

use rand::Rng;

/// A dropout layer. Stateless apart from the rate; masks are returned to
/// the caller so the backward pass can reuse them.
#[derive(Debug, Clone, Copy)]
pub struct Dropout {
    pub rate: f32,
}

impl Dropout {
    pub fn new(rate: f32) -> Self {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0,1)");
        Dropout { rate }
    }

    /// Applies dropout in place (training mode), writing the mask into a
    /// caller-provided buffer (resized to match `x`; entries are `0` or
    /// `1/keep` with the inverted scale folded in). Draws one uniform per
    /// element when the rate is non-zero, none otherwise — callers rely on
    /// this draw count for RNG-stream reproducibility.
    pub fn apply_into<R: Rng + ?Sized>(&self, x: &mut [f32], rng: &mut R, mask: &mut Vec<f32>) {
        mask.clear();
        if self.rate == 0.0 {
            mask.resize(x.len(), 1.0);
            return;
        }
        let keep = 1.0 - self.rate;
        let scale = 1.0 / keep;
        mask.extend(x.iter().map(|_| {
            if rng.random::<f32>() < keep {
                scale
            } else {
                0.0
            }
        }));
        for (xi, m) in x.iter_mut().zip(mask.iter()) {
            *xi *= m;
        }
    }

    /// Applies dropout in place (training mode); returns the mask with the
    /// inverted scale folded in (entries are `0` or `1/keep`).
    /// Allocating wrapper over [`Dropout::apply_into`].
    pub fn apply<R: Rng + ?Sized>(&self, x: &mut [f32], rng: &mut R) -> Vec<f32> {
        let mut mask = Vec::with_capacity(x.len());
        self.apply_into(x, rng, &mut mask);
        mask
    }

    /// Backward: multiply the incoming gradient by the stored mask.
    pub fn backward(grad: &mut [f32], mask: &[f32]) {
        for (g, m) in grad.iter_mut().zip(mask) {
            *g *= m;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_rate_is_identity() {
        let d = Dropout::new(0.0);
        let mut x = vec![1.0, 2.0, 3.0];
        let mask = d.apply(&mut x, &mut StdRng::seed_from_u64(1));
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
        assert_eq!(mask, vec![1.0; 3]);
    }

    #[test]
    fn drops_about_rate_fraction_and_rescales() {
        let d = Dropout::new(0.3);
        let mut rng = StdRng::seed_from_u64(2);
        let mut zeros = 0usize;
        let mut sum = 0.0f64;
        let n = 10_000;
        for _ in 0..n {
            let mut x = vec![1.0f32];
            d.apply(&mut x, &mut rng);
            if x[0] == 0.0 {
                zeros += 1;
            }
            sum += x[0] as f64;
        }
        let drop_frac = zeros as f64 / n as f64;
        assert!((drop_frac - 0.3).abs() < 0.03, "drop fraction {drop_frac}");
        // Inverted scaling keeps the expectation ~1.
        assert!((sum / n as f64 - 1.0).abs() < 0.05);
    }

    #[test]
    fn backward_applies_same_mask() {
        let d = Dropout::new(0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let mut x = vec![1.0; 8];
        let mask = d.apply(&mut x, &mut rng);
        let mut g = vec![1.0; 8];
        Dropout::backward(&mut g, &mask);
        assert_eq!(g, mask);
    }

    #[test]
    #[should_panic(expected = "dropout rate")]
    fn rejects_rate_one() {
        Dropout::new(1.0);
    }
}
