//! Dense row-major matrices and the handful of BLAS-1/2/3 kernels the
//! networks need. Queries are generated one token at a time, so the
//! training path is matrix-vector; batched inference runs `B` lanes in
//! lockstep through [`Mat::matmul_nt`], which amortizes each weight-matrix
//! read across the whole batch while keeping every lane's arithmetic
//! bit-identical to [`Mat::matvec`].

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

thread_local! {
    /// Pool of reusable scratch buffers for the batched kernels' lane
    /// transposes. The generation and training hot loops call these
    /// kernels several times per token, so per-call `Vec` allocations
    /// show up directly in tokens/sec.
    static KERNEL_SCRATCH: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// Checks out a zeroed scratch buffer of `len` floats from the
/// thread-local pool (allocating only on pool miss). Return it with
/// [`put_scratch`] when done.
pub(crate) fn take_scratch(len: usize) -> Vec<f32> {
    let mut v = KERNEL_SCRATCH
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_default();
    v.clear();
    v.resize(len, 0.0);
    v
}

/// Returns a buffer checked out with [`take_scratch`] to the pool.
pub(crate) fn put_scratch(v: Vec<f32>) {
    KERNEL_SCRATCH.with(|p| p.borrow_mut().push(v));
}

/// A dense `rows × cols` matrix, row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mat {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f32>,
}

impl Mat {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Xavier/Glorot uniform initialization.
    pub fn xavier<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let bound = (6.0 / (rows + cols) as f64).sqrt() as f32;
        let data = (0..rows * cols)
            .map(|_| rng.random_range(-bound..bound))
            .collect();
        Mat { rows, cols, data }
    }

    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn fill(&mut self, v: f32) {
        self.data.iter_mut().for_each(|x| *x = v);
    }

    /// `out = self · x` (matrix-vector). `x.len() == cols`, `out.len() == rows`.
    ///
    /// Four output rows are computed per pass so the four dot-product
    /// accumulators form independent dependency chains (the scalar FP add
    /// latency no longer serializes the whole kernel) and each load of `x`
    /// feeds four rows. Each row's sum is still accumulated strictly
    /// left-to-right into a single accumulator, so results are bit-identical
    /// to the naive one-row-at-a-time loop.
    pub fn matvec(&self, x: &[f32], out: &mut [f32]) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(out.len(), self.rows);
        let cols = self.cols;
        let mut blocks = out.chunks_exact_mut(4);
        let mut r = 0usize;
        for block in &mut blocks {
            let base = r * cols;
            let rows = &self.data[base..base + 4 * cols];
            let (r0, rest) = rows.split_at(cols);
            let (r1, rest) = rest.split_at(cols);
            let (r2, r3) = rest.split_at(cols);
            let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for j in 0..cols {
                let xj = x[j];
                a0 += r0[j] * xj;
                a1 += r1[j] * xj;
                a2 += r2[j] * xj;
                a3 += r3[j] * xj;
            }
            block[0] = a0;
            block[1] = a1;
            block[2] = a2;
            block[3] = a3;
            r += 4;
        }
        for o in blocks.into_remainder() {
            let row = self.row(r);
            let mut acc = 0.0f32;
            for (w, xi) in row.iter().zip(x) {
                acc += w * xi;
            }
            *o = acc;
            r += 1;
        }
    }

    /// `out = x · selfᵀ` for a row-major batch: `x` holds `batch` rows of
    /// `cols` inputs, `out` receives `batch` rows of `rows` outputs.
    ///
    /// The batch is first transposed into a lane-minor scratch
    /// (`xt[j·batch + lane]`), then each weight row is swept with the lane
    /// axis innermost over *contiguous* memory: the compiler packs the
    /// independent per-lane accumulators into SIMD registers, which is
    /// where the batched engine's speedup comes from (per-lane the FLOPs
    /// are identical to [`Mat::matvec`]; the strict left-to-right `j`
    /// summation per `(lane, row)` element is untouched, so every lane is
    /// bit-identical to a standalone `matvec` on its row). Weight rows are
    /// still loaded once per batch, in blocks of four.
    pub fn matmul_nt(&self, x: &[f32], batch: usize, out: &mut [f32]) {
        debug_assert_eq!(x.len(), batch * self.cols);
        debug_assert_eq!(out.len(), batch * self.rows);
        if batch == 1 {
            // Bit-identical by construction; skips the transpose round-trip.
            return self.matvec(x, out);
        }
        let xt = transpose_lanes(x, batch, self.cols);
        let mut lane0 = 0usize;
        while batch - lane0 >= 8 {
            self.matmul_tile::<8>(&xt, batch, lane0, out);
            lane0 += 8;
        }
        while batch - lane0 >= 4 {
            self.matmul_tile::<4>(&xt, batch, lane0, out);
            lane0 += 4;
        }
        while lane0 < batch {
            self.matmul_tile::<1>(&xt, batch, lane0, out);
            lane0 += 1;
        }
        put_scratch(xt);
    }

    /// Register tile of [`Mat::matmul_nt`]: lanes `lane0 .. lane0 + W` of
    /// the lane-minor batch `xt`, all output rows. `W` is a compile-time
    /// constant so the `[f32; W]` accumulators live in SIMD registers and
    /// the per-lane loops unroll into packed multiply-adds.
    fn matmul_tile<const W: usize>(&self, xt: &[f32], batch: usize, lane0: usize, out: &mut [f32]) {
        let (rows, cols) = (self.rows, self.cols);
        let tile = |j: usize| -> &[f32; W] {
            xt[j * batch + lane0..j * batch + lane0 + W]
                .try_into()
                .expect("tile width")
        };
        let mut r = 0usize;
        while r + 4 <= rows {
            let block = &self.data[r * cols..(r + 4) * cols];
            let (r0, rest) = block.split_at(cols);
            let (r1, rest) = rest.split_at(cols);
            let (r2, r3) = rest.split_at(cols);
            let mut a0 = [0.0f32; W];
            let mut a1 = [0.0f32; W];
            let mut a2 = [0.0f32; W];
            let mut a3 = [0.0f32; W];
            for j in 0..cols {
                let xv = tile(j);
                let (w0, w1, w2, w3) = (r0[j], r1[j], r2[j], r3[j]);
                for (a, &xk) in a0.iter_mut().zip(xv) {
                    *a += w0 * xk;
                }
                for (a, &xk) in a1.iter_mut().zip(xv) {
                    *a += w1 * xk;
                }
                for (a, &xk) in a2.iter_mut().zip(xv) {
                    *a += w2 * xk;
                }
                for (a, &xk) in a3.iter_mut().zip(xv) {
                    *a += w3 * xk;
                }
            }
            for k in 0..W {
                let o = &mut out[(lane0 + k) * rows + r..(lane0 + k) * rows + r + 4];
                o[0] = a0[k];
                o[1] = a1[k];
                o[2] = a2[k];
                o[3] = a3[k];
            }
            r += 4;
        }
        while r < rows {
            let row = self.row(r);
            let mut a = [0.0f32; W];
            for (j, &w) in row.iter().enumerate() {
                for (ak, &xk) in a.iter_mut().zip(tile(j)) {
                    *ak += w * xk;
                }
            }
            for (k, &v) in a.iter().enumerate() {
                out[(lane0 + k) * rows + r] = v;
            }
            r += 1;
        }
    }

    /// `out += selfᵀ · y` (transposed matrix-vector, accumulating).
    /// `y.len() == rows`, `out.len() == cols`.
    ///
    /// Four input rows per pass: `out` is read and written once per block
    /// instead of once per row. Per output element the contributions are
    /// still added one row at a time in ascending row order, so the result
    /// is bit-identical to the naive loop.
    pub fn matvec_t_acc(&self, y: &[f32], out: &mut [f32]) {
        debug_assert_eq!(y.len(), self.rows);
        debug_assert_eq!(out.len(), self.cols);
        let cols = self.cols;
        let mut blocks = y.chunks_exact(4);
        let mut r = 0usize;
        for yb in &mut blocks {
            let base = r * cols;
            let rows = &self.data[base..base + 4 * cols];
            let (r0, rest) = rows.split_at(cols);
            let (r1, rest) = rest.split_at(cols);
            let (r2, r3) = rest.split_at(cols);
            let (y0, y1, y2, y3) = (yb[0], yb[1], yb[2], yb[3]);
            for (j, o) in out.iter_mut().enumerate() {
                let mut acc = *o;
                acc += r0[j] * y0;
                acc += r1[j] * y1;
                acc += r2[j] * y2;
                acc += r3[j] * y3;
                *o = acc;
            }
            r += 4;
        }
        for &yr in blocks.remainder() {
            let row = self.row(r);
            for (o, w) in out.iter_mut().zip(row) {
                *o += w * yr;
            }
            r += 1;
        }
    }

    /// Batched transposed matvec: `out[lane] = selfᵀ · y[lane]` for every
    /// lane of a lane-major `[batch × rows]` block `y`; `out` is the
    /// lane-major `[batch × cols]` result (overwritten, not accumulated).
    ///
    /// This is the backward-pass sibling of [`Mat::matmul_nt`]: each weight
    /// row is loaded once per batch instead of once per lane, and the lane
    /// axis is innermost over contiguous memory so the per-lane accumulators
    /// pack into SIMD registers. Per `(lane, col)` element the row
    /// contributions are added one row at a time in the same ascending-row
    /// order as [`Mat::matvec_t_acc`], so every lane is bit-identical to a
    /// standalone `matvec_t_acc` into a zeroed output.
    pub fn matvec_t_batch(&self, y: &[f32], batch: usize, out: &mut [f32]) {
        debug_assert_eq!(y.len(), batch * self.rows);
        debug_assert_eq!(out.len(), batch * self.cols);
        if batch == 1 {
            out.iter_mut().for_each(|o| *o = 0.0);
            return self.matvec_t_acc(y, out);
        }
        let yt = transpose_lanes(y, batch, self.rows);
        let mut ot = take_scratch(batch * self.cols);
        let mut lane0 = 0usize;
        while batch - lane0 >= 8 {
            self.matvec_t_tile::<8>(&yt, batch, lane0, &mut ot);
            lane0 += 8;
        }
        while batch - lane0 >= 4 {
            self.matvec_t_tile::<4>(&yt, batch, lane0, &mut ot);
            lane0 += 4;
        }
        while lane0 < batch {
            self.matvec_t_tile::<1>(&yt, batch, lane0, &mut ot);
            lane0 += 1;
        }
        transpose_lanes_back(&ot, batch, self.cols, out);
        put_scratch(ot);
        put_scratch(yt);
    }

    /// Register tile of [`Mat::matvec_t_batch`]: lanes `lane0 .. lane0 + W`
    /// of the lane-minor `yt`, accumulating into the lane-minor `ot`.
    fn matvec_t_tile<const W: usize>(
        &self,
        yt: &[f32],
        batch: usize,
        lane0: usize,
        ot: &mut [f32],
    ) {
        let (rows, cols) = (self.rows, self.cols);
        let lane = |buf: &[f32], r: usize| -> [f32; W] {
            buf[r * batch + lane0..r * batch + lane0 + W]
                .try_into()
                .expect("tile width")
        };
        let mut r = 0usize;
        while r + 4 <= rows {
            let block = &self.data[r * cols..(r + 4) * cols];
            let (r0, rest) = block.split_at(cols);
            let (r1, rest) = rest.split_at(cols);
            let (r2, r3) = rest.split_at(cols);
            let (y0, y1, y2, y3) = (
                lane(yt, r),
                lane(yt, r + 1),
                lane(yt, r + 2),
                lane(yt, r + 3),
            );
            for j in 0..cols {
                let (w0, w1, w2, w3) = (r0[j], r1[j], r2[j], r3[j]);
                let o = &mut ot[j * batch + lane0..j * batch + lane0 + W];
                for k in 0..W {
                    let mut acc = o[k];
                    acc += w0 * y0[k];
                    acc += w1 * y1[k];
                    acc += w2 * y2[k];
                    acc += w3 * y3[k];
                    o[k] = acc;
                }
            }
            r += 4;
        }
        while r < rows {
            let row = self.row(r);
            let yr = lane(yt, r);
            for (j, &w) in row.iter().enumerate() {
                let o = &mut ot[j * batch + lane0..j * batch + lane0 + W];
                for k in 0..W {
                    o[k] += w * yr[k];
                }
            }
            r += 1;
        }
    }

    /// Rank-1 update `self += a · bᵀ` (`a.len() == rows`, `b.len() == cols`).
    pub fn add_outer(&mut self, a: &[f32], b: &[f32]) {
        debug_assert_eq!(a.len(), self.rows);
        debug_assert_eq!(b.len(), self.cols);
        for (r, &ar) in a.iter().enumerate() {
            if ar == 0.0 {
                continue;
            }
            let row = self.row_mut(r);
            for (w, bi) in row.iter_mut().zip(b) {
                *w += ar * bi;
            }
        }
    }

    /// Elementwise `self += other`.
    pub fn add_assign(&mut self, other: &Mat) {
        debug_assert_eq!(self.data.len(), other.data.len());
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scales all entries.
    pub fn scale(&mut self, s: f32) {
        self.data.iter_mut().for_each(|x| *x *= s);
    }

    /// Frobenius norm (used for gradient clipping).
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Transposes a row-major `[batch × width]` activation block into the
/// lane-minor layout `[width × batch]` the batched kernels sweep: with
/// lanes contiguous, the per-lane accumulator loops vectorize. The buffer
/// comes from the thread-local scratch pool — hand it back with
/// [`put_scratch`] when the kernel is done.
pub(crate) fn transpose_lanes(x: &[f32], batch: usize, width: usize) -> Vec<f32> {
    debug_assert_eq!(x.len(), batch * width);
    let mut xt = take_scratch(x.len());
    for (lane, row) in x.chunks_exact(width).enumerate() {
        for (j, &v) in row.iter().enumerate() {
            xt[j * batch + lane] = v;
        }
    }
    xt
}

/// Inverse of [`transpose_lanes`]: scatters a lane-minor `[width × batch]`
/// block back into the row-major `[batch × width]` layout.
pub(crate) fn transpose_lanes_back(xt: &[f32], batch: usize, width: usize, out: &mut [f32]) {
    debug_assert_eq!(xt.len(), batch * width);
    debug_assert_eq!(out.len(), batch * width);
    for (lane, row) in out.chunks_exact_mut(width).enumerate() {
        for (j, o) in row.iter_mut().enumerate() {
            *o = xt[j * batch + lane];
        }
    }
}

/// Elementwise vector helpers.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[inline]
pub fn dsigmoid(y: f32) -> f32 {
    // Derivative expressed in terms of the *output* y = sigmoid(x).
    y * (1.0 - y)
}

#[inline]
pub fn dtanh(y: f32) -> f32 {
    // Derivative in terms of the output y = tanh(x).
    1.0 - y * y
}

/// In-place numerically-stable softmax over `logits`, restricted to the
/// indices where `mask` is true; masked entries get probability 0.
/// Returns the number of unmasked entries.
///
/// Non-finite unmasked logits (NaN / ±inf from a training overflow) are
/// excluded from the distribution; if *no* unmasked logit is finite the
/// result is uniform over the unmasked entries. For all-finite inputs the
/// output is bit-identical to a plain masked softmax.
pub fn masked_softmax(logits: &mut [f32], mask: &[bool]) -> usize {
    debug_assert_eq!(logits.len(), mask.len());
    let mut max = f32::NEG_INFINITY;
    let mut count = 0;
    let mut finite = 0;
    for (l, &m) in logits.iter().zip(mask) {
        if m {
            count += 1;
            if l.is_finite() {
                max = max.max(*l);
                finite += 1;
            }
        }
    }
    if count == 0 {
        logits.iter_mut().for_each(|l| *l = 0.0);
        return 0;
    }
    if finite == 0 {
        let p = 1.0 / count as f32;
        for (l, &m) in logits.iter_mut().zip(mask) {
            *l = if m { p } else { 0.0 };
        }
        return count;
    }
    // The max is over finite entries only, so every exp() is in (0, 1] and
    // the sum is a finite value >= 1.
    let mut sum = 0.0f32;
    for (l, &m) in logits.iter_mut().zip(mask) {
        if m && l.is_finite() {
            *l = (*l - max).exp();
            sum += *l;
        } else {
            *l = 0.0;
        }
    }
    for l in logits.iter_mut() {
        *l /= sum;
    }
    count
}

/// [`masked_softmax`] over a dense row of admissible logits (the compacted
/// layout the quantized head produces: entry `k` is the logit of the
/// `k`-th unmasked vocabulary row, in ascending row order). Max, exp, sum
/// and normalize visit entries in the same order as [`masked_softmax`]
/// visiting the unmasked entries of the scattered row, so the resulting
/// probabilities are bit-identical. Returns the entry count.
pub fn softmax_dense(logits: &mut [f32]) -> usize {
    let count = logits.len();
    if count == 0 {
        return 0;
    }
    let mut max = f32::NEG_INFINITY;
    let mut finite = 0;
    for l in logits.iter() {
        if l.is_finite() {
            max = max.max(*l);
            finite += 1;
        }
    }
    if finite == 0 {
        let p = 1.0 / count as f32;
        logits.iter_mut().for_each(|l| *l = p);
        return count;
    }
    let mut sum = 0.0f32;
    for l in logits.iter_mut() {
        if l.is_finite() {
            *l = (*l - max).exp();
            sum += *l;
        } else {
            *l = 0.0;
        }
    }
    for l in logits.iter_mut() {
        *l /= sum;
    }
    count
}

/// Row-wise [`masked_softmax`] over a `batch × width` logit block with a
/// matching `batch × width` mask block.
///
/// Each lane's row is normalized independently against its own mask row, so
/// a fully-masked row (or one whose unmasked logits are all non-finite)
/// zeroes — or uniformizes — *only itself*; neighbouring lanes keep the
/// exact probabilities a standalone [`masked_softmax`] would produce.
pub fn masked_softmax_rows(logits: &mut [f32], masks: &[bool], width: usize) -> usize {
    debug_assert_eq!(logits.len(), masks.len());
    debug_assert!(width > 0 && logits.len().is_multiple_of(width));
    let mut total = 0;
    for (row, mask) in logits
        .chunks_exact_mut(width)
        .zip(masks.chunks_exact(width))
    {
        total += masked_softmax(row, mask);
    }
    total
}

/// Entropy of a (masked) probability distribution.
pub fn entropy(probs: &[f32]) -> f32 {
    probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum()
}

/// Samples an index from a probability distribution using one uniform draw.
///
/// If any entry is non-finite (an upstream overflow leaked through), the
/// cumulative walk would silently degenerate — `acc` goes NaN and every
/// comparison fails — so instead the draw falls back to a uniform choice
/// over the finite positive entries (then any finite entry, then index 0).
/// Exactly one RNG draw happens on every path, so the random stream is
/// unchanged for well-formed inputs.
pub fn sample_categorical<R: Rng + ?Sized>(probs: &[f32], rng: &mut R) -> usize {
    let u: f32 = rng.random();
    if probs.iter().all(|p| p.is_finite()) {
        let mut acc = 0.0;
        let mut last_nonzero = 0;
        for (i, &p) in probs.iter().enumerate() {
            if p > 0.0 {
                last_nonzero = i;
                acc += p;
                if u < acc {
                    return i;
                }
            }
        }
        return last_nonzero;
    }
    let uniform_over = |keep: fn(f32) -> bool| -> Option<usize> {
        let n = probs.iter().filter(|&&p| keep(p)).count();
        if n == 0 {
            return None;
        }
        let k = ((u * n as f32) as usize).min(n - 1);
        probs
            .iter()
            .enumerate()
            .filter(|&(_, &p)| keep(p))
            .nth(k)
            .map(|(i, _)| i)
    };
    uniform_over(|p| p.is_finite() && p > 0.0)
        .or_else(|| uniform_over(|p| p.is_finite()))
        .unwrap_or(0)
}

/// Argmax over a probability vector (greedy decoding). Non-finite entries
/// are treated as minimal rather than panicking; if nothing is finite the
/// result falls back to index 0.
pub fn argmax(probs: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &p) in probs.iter().enumerate() {
        if p.is_finite() && p > best_v {
            best = i;
            best_v = p;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matvec_matches_manual() {
        let m = Mat {
            rows: 2,
            cols: 3,
            data: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        };
        let x = [1.0, 0.0, -1.0];
        let mut out = [0.0; 2];
        m.matvec(&x, &mut out);
        assert_eq!(out, [-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_acc_matches_manual() {
        let m = Mat {
            rows: 2,
            cols: 3,
            data: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        };
        let y = [1.0, -1.0];
        let mut out = [0.0; 3];
        m.matvec_t_acc(&y, &mut out);
        assert_eq!(out, [-3.0, -3.0, -3.0]);
    }

    #[test]
    fn outer_product_accumulates() {
        let mut m = Mat::zeros(2, 2);
        m.add_outer(&[1.0, 2.0], &[3.0, 4.0]);
        m.add_outer(&[1.0, 0.0], &[1.0, 1.0]);
        assert_eq!(m.data, vec![4.0, 5.0, 6.0, 8.0]);
    }

    #[test]
    fn masked_softmax_normalizes_and_masks() {
        let mut l = vec![1.0, 2.0, 3.0, 4.0];
        let mask = vec![true, false, true, false];
        let n = masked_softmax(&mut l, &mask);
        assert_eq!(n, 2);
        assert_eq!(l[1], 0.0);
        assert_eq!(l[3], 0.0);
        assert!((l.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(l[2] > l[0]);
    }

    #[test]
    fn masked_softmax_all_masked() {
        let mut l = vec![1.0, 2.0];
        assert_eq!(masked_softmax(&mut l, &[false, false]), 0);
        assert_eq!(l, vec![0.0, 0.0]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let mut l = vec![1000.0, 1001.0];
        masked_softmax(&mut l, &[true, true]);
        assert!(l.iter().all(|p| p.is_finite()));
        assert!((l.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn entropy_of_uniform_is_log_n() {
        let p = vec![0.25; 4];
        assert!((entropy(&p) - (4.0f32).ln()).abs() < 1e-6);
        assert_eq!(entropy(&[1.0, 0.0]), 0.0);
    }

    #[test]
    fn categorical_sampling_follows_distribution() {
        let probs = [0.1, 0.0, 0.9];
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 3];
        for _ in 0..5000 {
            counts[sample_categorical(&probs, &mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > 4000);
    }

    /// The blocked kernels must be *bit-identical* to the naive loops for
    /// every shape, including remainders — the determinism contract depends
    /// on it.
    #[test]
    fn blocked_kernels_match_naive_bitwise() {
        let mut rng = StdRng::seed_from_u64(42);
        for &(rows, cols) in &[(1, 1), (3, 5), (4, 4), (7, 9), (8, 16), (13, 3), (64, 24)] {
            let m = Mat::xavier(rows, cols, &mut rng);
            let x: Vec<f32> = (0..cols).map(|_| rng.random_range(-1.0..1.0)).collect();
            let y: Vec<f32> = (0..rows).map(|_| rng.random_range(-1.0..1.0)).collect();

            let mut fast = vec![0.0; rows];
            m.matvec(&x, &mut fast);
            let naive: Vec<f32> = (0..rows)
                .map(|r| {
                    let mut acc = 0.0f32;
                    for (w, xi) in m.row(r).iter().zip(&x) {
                        acc += w * xi;
                    }
                    acc
                })
                .collect();
            assert_eq!(fast, naive, "matvec {rows}x{cols}");

            let mut fast_t: Vec<f32> = (0..cols).map(|j| j as f32 * 0.25).collect();
            let mut naive_t = fast_t.clone();
            m.matvec_t_acc(&y, &mut fast_t);
            for (r, &yr) in y.iter().enumerate() {
                for (o, w) in naive_t.iter_mut().zip(m.row(r)) {
                    *o += w * yr;
                }
            }
            assert_eq!(
                fast_t.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                naive_t.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "matvec_t_acc {rows}x{cols}"
            );
        }
    }

    /// Every lane of the batched kernel must be bit-identical to a
    /// standalone `matvec` on that lane's input, for all shapes including
    /// row remainders and batch = 1.
    #[test]
    fn matmul_nt_matches_matvec_bitwise_per_lane() {
        let mut rng = StdRng::seed_from_u64(99);
        for &(rows, cols) in &[(1, 1), (3, 5), (4, 4), (7, 9), (13, 3), (30, 32), (120, 30)] {
            for &batch in &[1usize, 2, 4, 8] {
                let m = Mat::xavier(rows, cols, &mut rng);
                let x: Vec<f32> = (0..batch * cols)
                    .map(|_| rng.random_range(-1.0..1.0))
                    .collect();
                let mut fast = vec![0.0; batch * rows];
                m.matmul_nt(&x, batch, &mut fast);
                for lane in 0..batch {
                    let mut serial = vec![0.0; rows];
                    m.matvec(&x[lane * cols..(lane + 1) * cols], &mut serial);
                    assert_eq!(
                        fast[lane * rows..(lane + 1) * rows]
                            .iter()
                            .map(|v| v.to_bits())
                            .collect::<Vec<_>>(),
                        serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "matmul_nt {rows}x{cols} batch {batch} lane {lane}"
                    );
                }
            }
        }
    }

    /// Every lane of the batched transposed kernel must be bit-identical to
    /// a standalone `matvec_t_acc` into a zeroed output, for all shapes
    /// including row remainders and batch = 1.
    #[test]
    fn matvec_t_batch_matches_serial_bitwise_per_lane() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(rows, cols) in &[(1, 1), (3, 5), (4, 4), (7, 9), (13, 3), (96, 24), (120, 30)] {
            for &batch in &[1usize, 2, 4, 5, 8, 16] {
                let m = Mat::xavier(rows, cols, &mut rng);
                let y: Vec<f32> = (0..batch * rows)
                    .map(|_| rng.random_range(-1.0..1.0))
                    .collect();
                let mut fast = vec![0.0; batch * cols];
                m.matvec_t_batch(&y, batch, &mut fast);
                for lane in 0..batch {
                    let mut serial = vec![0.0; cols];
                    m.matvec_t_acc(&y[lane * rows..(lane + 1) * rows], &mut serial);
                    assert_eq!(
                        fast[lane * cols..(lane + 1) * cols]
                            .iter()
                            .map(|v| v.to_bits())
                            .collect::<Vec<_>>(),
                        serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "matvec_t_batch {rows}x{cols} batch {batch} lane {lane}"
                    );
                }
            }
        }
    }

    /// Regression (batched generation): a fully-masked or all-non-finite
    /// row must not poison its neighbours in the `[B × vocab]` block.
    #[test]
    fn masked_softmax_rows_isolates_degenerate_lanes() {
        let width = 4;
        // Lane 0: normal; lane 1: fully masked; lane 2: unmasked but all
        // non-finite; lane 3: normal again.
        let mut block = vec![
            1.0,
            2.0,
            3.0,
            4.0,
            5.0,
            5.0,
            5.0,
            5.0,
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            0.5,
            0.5,
            0.5,
            0.5,
        ];
        let mut masks = vec![true; 16];
        masks[4..8].iter_mut().for_each(|m| *m = false);
        masks[13] = false;

        let mut expect0 = vec![1.0, 2.0, 3.0, 4.0];
        masked_softmax(&mut expect0, &[true; 4]);
        let mut expect3 = vec![0.5, 0.5, 0.5, 0.5];
        masked_softmax(&mut expect3, &[true, false, true, true]);

        masked_softmax_rows(&mut block, &masks, width);
        assert_eq!(&block[0..4], &expect0[..], "lane 0 poisoned");
        assert_eq!(&block[4..8], &[0.0; 4], "fully-masked lane not zeroed");
        // Lane 2: nothing finite → uniform over its own unmasked entries.
        assert_eq!(&block[8..12], &[0.25; 4]);
        assert_eq!(&block[12..16], &expect3[..], "lane 3 poisoned");
        assert!(block.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Mat::xavier(10, 20, &mut rng);
        let bound = (6.0f64 / 30.0).sqrt() as f32;
        assert!(m.data.iter().all(|&x| x.abs() <= bound));
        assert!(m.data.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn argmax_picks_largest() {
        assert_eq!(argmax(&[0.1, 0.7, 0.2]), 1);
    }

    #[test]
    fn argmax_ignores_non_finite() {
        // Regression: used to panic with "NaN prob" on any non-finite entry.
        assert_eq!(argmax(&[0.1, f32::NAN, 0.7, 0.2]), 2);
        assert_eq!(argmax(&[f32::INFINITY, 0.3, 0.1]), 1);
        assert_eq!(argmax(&[f32::NAN, f32::NAN]), 0);
        assert_eq!(argmax(&[]), 0);
    }

    #[test]
    fn sampling_survives_non_finite_probs() {
        // Regression: a NaN in the prefix used to poison `acc`, so the walk
        // silently returned `last_nonzero` regardless of the draw.
        let mut rng = StdRng::seed_from_u64(9);
        let probs = [f32::NAN, 0.5, 0.5, f32::INFINITY];
        let mut counts = [0usize; 4];
        for _ in 0..2000 {
            let i = sample_categorical(&probs, &mut rng);
            assert!(probs[i].is_finite() && probs[i] > 0.0, "picked index {i}");
            counts[i] += 1;
        }
        // Both finite-positive entries must actually be reachable.
        assert!(counts[1] > 500 && counts[2] > 500, "{counts:?}");

        // Nothing positive and finite: fall back to finite entries, then 0.
        let i = sample_categorical(&[f32::NAN, 0.0, f32::NAN], &mut rng);
        assert_eq!(i, 1);
        assert_eq!(sample_categorical(&[f32::NAN, f32::INFINITY], &mut rng), 0);
    }

    #[test]
    fn sampling_stream_unchanged_for_finite_probs() {
        // The non-finite guard must not consume extra RNG draws.
        let probs = [0.2, 0.3, 0.5];
        let mut a = StdRng::seed_from_u64(77);
        let mut b = StdRng::seed_from_u64(77);
        for _ in 0..100 {
            let u: f32 = a.random();
            let mut acc = 0.0;
            let mut expect = 2;
            for (i, &p) in probs.iter().enumerate() {
                acc += p;
                if u < acc {
                    expect = i;
                    break;
                }
            }
            assert_eq!(sample_categorical(&probs, &mut b), expect);
        }
    }

    #[test]
    fn masked_softmax_excludes_non_finite_logits() {
        let mut l = vec![f32::NAN, 1.0, f32::INFINITY, 2.0];
        let n = masked_softmax(&mut l, &[true, true, true, true]);
        assert_eq!(n, 4);
        assert!(l.iter().all(|p| p.is_finite()));
        assert_eq!(l[0], 0.0);
        assert_eq!(l[2], 0.0);
        assert!((l.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(l[3] > l[1]);
    }

    #[test]
    fn masked_softmax_uniform_when_nothing_finite() {
        let mut l = vec![f32::NAN, f32::INFINITY, 0.5];
        let n = masked_softmax(&mut l, &[true, true, false]);
        assert_eq!(n, 2);
        assert_eq!(&l, &[0.5, 0.5, 0.0]);
    }
}
