//! Int8 quantized inference kernels.
//!
//! Weights are quantized **per output channel** (one symmetric scale per
//! matrix row): `q[r][j] = round(w[r][j] / scale[r])` clamped to ±127 with
//! `scale[r] = max_j |w[r][j]| / 127`. Per-row scales matter because the
//! rows of a trained weight matrix have very different dynamic ranges (a
//! single per-tensor scale would crush the small rows to a handful of
//! levels); per-row scaling keeps the worst-case dequantization error of
//! every row at `scale[r] / 2 ≈ max|w| / 254` of *that row's* range.
//!
//! The kernels accumulate `Σ_j (q[r][j] as f32) · x[j]` strictly left to
//! right and multiply by `scale[r]` once at the end, so the batched tile
//! kernel is bit-identical per lane to the serial [`QuantizedMat::matvec_q8`]
//! — the same determinism contract the f32 kernels in [`crate::tensor`]
//! uphold. The absolute logit error against the f32 reference is bounded by
//! `|Δy_r| ≤ (scale[r] / 2) · ‖x‖₁` (each weight is off by at most half a
//! quantization step), which the `quant-error` fuzz family checks per layer.
//!
//! Quantization is an inference-only format: training stays f32, and a
//! checkpoint is quantized *at load time* (behind `GenConfig::quantize`),
//! so the on-disk format and the default serving path are unchanged.

use crate::linear::Linear;
use crate::lstm::{LstmBatchState, LstmLayer, LstmStack};
use crate::tensor::{put_scratch, sigmoid, transpose_lanes, Mat};

/// A dense `rows × cols` int8 matrix with one symmetric scale per row.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMat {
    pub rows: usize,
    pub cols: usize,
    /// Row-major quantized weights, `q[r][j] ∈ [-127, 127]`.
    pub data: Vec<i8>,
    /// Per-output-channel dequantization scales, `len == rows`.
    pub scales: Vec<f32>,
}

impl QuantizedMat {
    /// Quantizes an f32 matrix row by row. All-zero rows get scale 0 so
    /// they dequantize to exactly zero.
    pub fn from_mat(m: &Mat) -> Self {
        let mut data = Vec::with_capacity(m.data.len());
        let mut scales = Vec::with_capacity(m.rows);
        for r in 0..m.rows {
            let row = m.row(r);
            let max_abs = row.iter().fold(0.0f32, |a, &w| a.max(w.abs()));
            if max_abs == 0.0 {
                scales.push(0.0);
                data.extend(std::iter::repeat_n(0i8, m.cols));
                continue;
            }
            let scale = max_abs / 127.0;
            scales.push(scale);
            for &w in row {
                let q = (w / scale).round().clamp(-127.0, 127.0);
                data.push(q as i8);
            }
        }
        QuantizedMat {
            rows: m.rows,
            cols: m.cols,
            data,
            scales,
        }
    }

    #[inline]
    pub fn row(&self, r: usize) -> &[i8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Dequantized copy (reference/diagnostics; the kernels never build it).
    pub fn dequantize(&self) -> Mat {
        let mut m = Mat::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let s = self.scales[r];
            for (o, &q) in m.row_mut(r).iter_mut().zip(self.row(r)) {
                *o = q as f32 * s;
            }
        }
        m
    }

    /// Worst-case absolute error of output row `r` against the f32 matvec,
    /// given the L1 norm of the input: every weight is off by at most half
    /// a quantization step, so `|Δy_r| ≤ (scale[r] / 2) · ‖x‖₁`.
    #[inline]
    pub fn row_error_bound(&self, r: usize, x_l1: f32) -> f32 {
        0.5 * self.scales[r] * x_l1
    }

    /// One output row: `Σ_j (q[r][j] as f32) · x[j]`, strictly left to
    /// right, times `scale[r]`. This scalar loop *is* the reference
    /// accumulation order every other q8 kernel must reproduce bitwise.
    #[inline]
    pub fn row_dot_q8(&self, r: usize, x: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), self.cols);
        let mut acc = 0.0f32;
        for (&q, &xj) in self.row(r).iter().zip(x) {
            acc += q as f32 * xj;
        }
        acc * self.scales[r]
    }

    /// `out = self · x` (quantized matrix-vector). Mirrors
    /// [`Mat::matvec`]'s four-row blocking; per row the accumulation order
    /// is identical to [`QuantizedMat::row_dot_q8`], so results are
    /// bit-identical to it.
    pub fn matvec_q8(&self, x: &[f32], out: &mut [f32]) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(out.len(), self.rows);
        let cols = self.cols;
        let mut blocks = out.chunks_exact_mut(4);
        let mut r = 0usize;
        for block in &mut blocks {
            let base = r * cols;
            let rows = &self.data[base..base + 4 * cols];
            let (r0, rest) = rows.split_at(cols);
            let (r1, rest) = rest.split_at(cols);
            let (r2, r3) = rest.split_at(cols);
            let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for j in 0..cols {
                let xj = x[j];
                a0 += r0[j] as f32 * xj;
                a1 += r1[j] as f32 * xj;
                a2 += r2[j] as f32 * xj;
                a3 += r3[j] as f32 * xj;
            }
            block[0] = a0 * self.scales[r];
            block[1] = a1 * self.scales[r + 1];
            block[2] = a2 * self.scales[r + 2];
            block[3] = a3 * self.scales[r + 3];
            r += 4;
        }
        for o in blocks.into_remainder() {
            *o = self.row_dot_q8(r, x);
            r += 1;
        }
    }

    /// `out = x · selfᵀ` for a row-major batch — the quantized sibling of
    /// [`Mat::matmul_nt`], with the same lane-minor transpose and 8/4/1
    /// register tiling. Per lane the result is bit-identical to
    /// [`QuantizedMat::matvec_q8`] on that lane's input.
    pub fn matmul_nt_q8(&self, x: &[f32], batch: usize, out: &mut [f32]) {
        debug_assert_eq!(x.len(), batch * self.cols);
        debug_assert_eq!(out.len(), batch * self.rows);
        if batch == 1 {
            return self.matvec_q8(x, out);
        }
        let xt = transpose_lanes(x, batch, self.cols);
        let mut lane0 = 0usize;
        while batch - lane0 >= 8 {
            self.matmul_tile_q8::<8>(&xt, batch, lane0, out);
            lane0 += 8;
        }
        while batch - lane0 >= 4 {
            self.matmul_tile_q8::<4>(&xt, batch, lane0, out);
            lane0 += 4;
        }
        while lane0 < batch {
            self.matmul_tile_q8::<1>(&xt, batch, lane0, out);
            lane0 += 1;
        }
        put_scratch(xt);
    }

    /// Register tile of [`QuantizedMat::matmul_nt_q8`]; the scale multiply
    /// happens once per `(lane, row)` element after the integer-weight
    /// accumulation, exactly as in the serial kernel.
    fn matmul_tile_q8<const W: usize>(
        &self,
        xt: &[f32],
        batch: usize,
        lane0: usize,
        out: &mut [f32],
    ) {
        let (rows, cols) = (self.rows, self.cols);
        let tile = |j: usize| -> &[f32; W] {
            xt[j * batch + lane0..j * batch + lane0 + W]
                .try_into()
                .expect("tile width")
        };
        let mut r = 0usize;
        while r + 4 <= rows {
            let block = &self.data[r * cols..(r + 4) * cols];
            let (r0, rest) = block.split_at(cols);
            let (r1, rest) = rest.split_at(cols);
            let (r2, r3) = rest.split_at(cols);
            let mut a0 = [0.0f32; W];
            let mut a1 = [0.0f32; W];
            let mut a2 = [0.0f32; W];
            let mut a3 = [0.0f32; W];
            for j in 0..cols {
                let xv = tile(j);
                let (w0, w1, w2, w3) = (r0[j] as f32, r1[j] as f32, r2[j] as f32, r3[j] as f32);
                for (a, &xk) in a0.iter_mut().zip(xv) {
                    *a += w0 * xk;
                }
                for (a, &xk) in a1.iter_mut().zip(xv) {
                    *a += w1 * xk;
                }
                for (a, &xk) in a2.iter_mut().zip(xv) {
                    *a += w2 * xk;
                }
                for (a, &xk) in a3.iter_mut().zip(xv) {
                    *a += w3 * xk;
                }
            }
            let (s0, s1, s2, s3) = (
                self.scales[r],
                self.scales[r + 1],
                self.scales[r + 2],
                self.scales[r + 3],
            );
            for k in 0..W {
                let o = &mut out[(lane0 + k) * rows + r..(lane0 + k) * rows + r + 4];
                o[0] = a0[k] * s0;
                o[1] = a1[k] * s1;
                o[2] = a2[k] * s2;
                o[3] = a3[k] * s3;
            }
            r += 4;
        }
        while r < rows {
            let row = self.row(r);
            let mut a = [0.0f32; W];
            for (j, &q) in row.iter().enumerate() {
                let w = q as f32;
                for (ak, &xk) in a.iter_mut().zip(tile(j)) {
                    *ak += w * xk;
                }
            }
            for (k, &v) in a.iter().enumerate() {
                out[(lane0 + k) * rows + r] = v * self.scales[r];
            }
            r += 1;
        }
    }
}

/// Quantized `y = Wq·x + b`. The bias stays f32 — it is `out`-sized (tiny)
/// and quantizing it would add error for zero bandwidth savings.
#[derive(Debug, Clone)]
pub struct QuantizedLinear {
    pub w: QuantizedMat,
    pub b: Vec<f32>,
}

impl QuantizedLinear {
    pub fn from_linear(l: &Linear) -> Self {
        QuantizedLinear {
            w: QuantizedMat::from_mat(&l.w.value),
            b: l.b.value.data.clone(),
        }
    }

    pub fn output_dim(&self) -> usize {
        self.w.rows
    }

    /// Dense forward into a caller buffer (matvec-then-bias, like
    /// [`Linear::forward_into`]).
    pub fn forward_into(&self, x: &[f32], y: &mut [f32]) {
        self.w.matvec_q8(x, y);
        for (yi, bi) in y.iter_mut().zip(&self.b) {
            *yi += bi;
        }
    }

    /// Masked head evaluation: computes `y[r]` only where `mask[r]` is
    /// true and writes `-∞` elsewhere. The FSM mask admits a handful of
    /// tokens per step out of a vocabulary of hundreds, and the masked
    /// softmax/sampler never read masked logits, so skipping them is
    /// exact — this row-skip (not int8 arithmetic per se) is where the
    /// quantized head earns most of its speedup.
    pub fn forward_masked_into(&self, x: &[f32], mask: &[bool], y: &mut [f32]) {
        debug_assert_eq!(mask.len(), self.w.rows);
        debug_assert_eq!(y.len(), self.w.rows);
        for (r, (yr, &m)) in y.iter_mut().zip(mask).enumerate() {
            *yr = if m {
                self.w.row_dot_q8(r, x) + self.b[r]
            } else {
                f32::NEG_INFINITY
            };
        }
    }

    /// Compact sibling of [`QuantizedLinear::forward_masked_into`]: head
    /// logits for an explicit admissible-row list, `y[k] = w[ids[k]]·x +
    /// b[ids[k]]` — same per-row math, no `-∞` writes for the (many)
    /// inadmissible rows. With `softmax_dense` downstream this removes
    /// every full-vocabulary sweep from the quantized sampling path.
    pub fn forward_ids_into(&self, x: &[f32], ids: &[usize], y: &mut [f32]) {
        debug_assert_eq!(ids.len(), y.len());
        for (yk, &r) in y.iter_mut().zip(ids) {
            *yk = self.w.row_dot_q8(r, x) + self.b[r];
        }
    }

    /// Batched masked head: lane `l` of `y` gets
    /// [`QuantizedLinear::forward_masked_into`] of lane `l` of `x` against
    /// lane `l`'s mask row. Masks differ per lane, so this is a per-lane
    /// sweep rather than a GEMM — with `M ≪ V` active rows it still does
    /// far less work than the dense kernel.
    pub fn forward_masked_batch_into(
        &self,
        x: &[f32],
        batch: usize,
        masks: &[bool],
        y: &mut [f32],
    ) {
        let (out, inp) = (self.w.rows, self.w.cols);
        debug_assert_eq!(x.len(), batch * inp);
        debug_assert_eq!(masks.len(), batch * out);
        debug_assert_eq!(y.len(), batch * out);
        for lane in 0..batch {
            self.forward_masked_into(
                &x[lane * inp..(lane + 1) * inp],
                &masks[lane * out..(lane + 1) * out],
                &mut y[lane * out..(lane + 1) * out],
            );
        }
    }
}

/// One quantized LSTM layer: `w_ih`/`w_hh` are int8, the bias stays f32.
#[derive(Debug, Clone)]
pub struct QuantizedLstmLayer {
    pub input: usize,
    pub hidden: usize,
    pub w_ih: QuantizedMat,
    pub w_hh: QuantizedMat,
    pub b: Vec<f32>,
}

impl QuantizedLstmLayer {
    pub fn from_layer(l: &LstmLayer) -> Self {
        QuantizedLstmLayer {
            input: l.input,
            hidden: l.hidden,
            w_ih: QuantizedMat::from_mat(&l.w_ih.value),
            w_hh: QuantizedMat::from_mat(&l.w_hh.value),
            b: l.b.value.data.clone(),
        }
    }

    /// Batched gate pre-activations, composed like
    /// [`LstmLayer::gates_batch_into`]: `z = w_ih·x`, `z += b`,
    /// `tmp = w_hh·h_prev`, `z += tmp`. `tmp` is caller scratch of
    /// `batch × 4·hidden` so the step is allocation-free.
    pub fn gates_batch_into(
        &self,
        x: &[f32],
        h_prev: &[f32],
        batch: usize,
        z: &mut [f32],
        tmp: &mut [f32],
    ) {
        let rows = 4 * self.hidden;
        debug_assert_eq!(x.len(), batch * self.input);
        debug_assert_eq!(h_prev.len(), batch * self.hidden);
        debug_assert_eq!(z.len(), batch * rows);
        debug_assert_eq!(tmp.len(), batch * rows);
        self.w_ih.matmul_nt_q8(x, batch, z);
        for zl in z.chunks_exact_mut(rows) {
            for (zv, bv) in zl.iter_mut().zip(&self.b) {
                *zv += bv;
            }
        }
        self.w_hh.matmul_nt_q8(h_prev, batch, tmp);
        for (zv, tv) in z.iter_mut().zip(tmp.iter()) {
            *zv += tv;
        }
    }

    /// One batched inference step; the elementwise gate math matches
    /// [`LstmLayer::infer_step_batch_into`] exactly — only the weight
    /// precision differs.
    pub fn infer_step_batch_into(
        &self,
        x: &[f32],
        h_plane: &mut [f32],
        c_plane: &mut [f32],
        batch: usize,
        z: &mut [f32],
        tmp: &mut [f32],
    ) {
        let h = self.hidden;
        self.gates_batch_into(x, h_plane, batch, z, tmp);
        for lane in 0..batch {
            let zl = &z[lane * 4 * h..(lane + 1) * 4 * h];
            let hl = &mut h_plane[lane * h..(lane + 1) * h];
            let cl = &mut c_plane[lane * h..(lane + 1) * h];
            for k in 0..h {
                let i = sigmoid(zl[k]);
                let f = sigmoid(zl[h + k]);
                let g = zl[2 * h + k].tanh();
                let o = sigmoid(zl[3 * h + k]);
                let c = f * cl[k] + i * g;
                cl[k] = c;
                hl[k] = o * c.tanh();
            }
        }
    }
}

/// A quantized LSTM stack — the inference-only mirror of [`LstmStack`].
/// It reuses [`LstmBatchState`], so the batched generation engine drives
/// it exactly like the f32 stack.
#[derive(Debug, Clone)]
pub struct QuantizedLstmStack {
    pub layers: Vec<QuantizedLstmLayer>,
}

impl QuantizedLstmStack {
    pub fn from_stack(s: &LstmStack) -> Self {
        QuantizedLstmStack {
            layers: s
                .layers
                .iter()
                .map(QuantizedLstmLayer::from_layer)
                .collect(),
        }
    }

    pub fn hidden(&self) -> usize {
        self.layers[0].hidden
    }

    /// Zeroed batch state for `batch` concurrent lanes (same layout as
    /// [`LstmStack::zero_batch_state`]).
    pub fn zero_batch_state(&self, batch: usize) -> LstmBatchState {
        LstmBatchState {
            batch,
            h: self
                .layers
                .iter()
                .map(|l| vec![0.0; batch * l.hidden])
                .collect(),
            c: self
                .layers
                .iter()
                .map(|l| vec![0.0; batch * l.hidden])
                .collect(),
        }
    }

    /// Gate-scratch length for a `batch`-lane step; callers need **two**
    /// buffers of this size (`z` and `tmp`).
    pub fn batch_scratch_len(&self, batch: usize) -> usize {
        batch * 4 * self.hidden()
    }

    /// One batched inference step through all layers, mirroring
    /// [`LstmStack::infer_step_batch_into`] (layer `l + 1` reads layer
    /// `l`'s `h` plane in place).
    pub fn infer_step_batch_into(
        &self,
        x: &[f32],
        state: &mut LstmBatchState,
        z: &mut [f32],
        tmp: &mut [f32],
    ) {
        debug_assert_eq!(state.h.len(), self.layers.len());
        let batch = state.batch;
        for (l, layer) in self.layers.iter().enumerate() {
            if l == 0 {
                layer.infer_step_batch_into(x, &mut state.h[0], &mut state.c[0], batch, z, tmp);
            } else {
                let (below, rest) = state.h.split_at_mut(l);
                layer.infer_step_batch_into(
                    &below[l - 1],
                    &mut rest[0],
                    &mut state.c[l],
                    batch,
                    z,
                    tmp,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roundtrip_error_within_half_step_per_weight() {
        let mut rng = StdRng::seed_from_u64(101);
        for &(rows, cols) in &[(1, 1), (4, 7), (13, 3), (96, 24), (120, 30)] {
            let m = Mat::xavier(rows, cols, &mut rng);
            let q = QuantizedMat::from_mat(&m);
            let deq = q.dequantize();
            for r in 0..rows {
                let half = 0.5 * q.scales[r] * (1.0 + 1e-5);
                for (a, b) in m.row(r).iter().zip(deq.row(r)) {
                    assert!(
                        (a - b).abs() <= half,
                        "{rows}x{cols} row {r}: |{a} - {b}| > {half}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_row_quantizes_to_exact_zero() {
        let mut m = Mat::zeros(3, 5);
        m.row_mut(1).copy_from_slice(&[0.5, -0.25, 0.1, 0.0, 1.0]);
        let q = QuantizedMat::from_mat(&m);
        assert_eq!(q.scales[0], 0.0);
        assert_eq!(q.scales[2], 0.0);
        let mut y = vec![9.0; 3];
        q.matvec_q8(&[1.0, 1.0, 1.0, 1.0, 1.0], &mut y);
        assert_eq!(y[0], 0.0);
        assert_eq!(y[2], 0.0);
        assert!(y[1] != 0.0);
    }

    #[test]
    fn matvec_q8_matches_row_dot_bitwise() {
        let mut rng = StdRng::seed_from_u64(103);
        for &(rows, cols) in &[(1, 1), (3, 5), (4, 4), (7, 9), (13, 3), (96, 24), (120, 30)] {
            let m = Mat::xavier(rows, cols, &mut rng);
            let q = QuantizedMat::from_mat(&m);
            let x: Vec<f32> = (0..cols).map(|_| rng.random_range(-1.0..1.0)).collect();
            let mut fast = vec![0.0; rows];
            q.matvec_q8(&x, &mut fast);
            for (r, got) in fast.iter().enumerate() {
                assert_eq!(
                    got.to_bits(),
                    q.row_dot_q8(r, &x).to_bits(),
                    "{rows}x{cols} row {r}"
                );
            }
        }
    }

    #[test]
    fn matmul_nt_q8_matches_matvec_q8_bitwise_per_lane() {
        let mut rng = StdRng::seed_from_u64(107);
        for &(rows, cols) in &[(1, 1), (3, 5), (7, 9), (13, 3), (96, 24), (120, 30)] {
            for &batch in &[1usize, 2, 4, 5, 8, 16] {
                let m = Mat::xavier(rows, cols, &mut rng);
                let q = QuantizedMat::from_mat(&m);
                let x: Vec<f32> = (0..batch * cols)
                    .map(|_| rng.random_range(-1.0..1.0))
                    .collect();
                let mut fast = vec![0.0; batch * rows];
                q.matmul_nt_q8(&x, batch, &mut fast);
                for lane in 0..batch {
                    let mut serial = vec![0.0; rows];
                    q.matvec_q8(&x[lane * cols..(lane + 1) * cols], &mut serial);
                    assert_eq!(
                        fast[lane * rows..(lane + 1) * rows]
                            .iter()
                            .map(|v| v.to_bits())
                            .collect::<Vec<_>>(),
                        serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "{rows}x{cols} batch {batch} lane {lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn matvec_q8_error_within_theoretical_bound() {
        let mut rng = StdRng::seed_from_u64(109);
        for &(rows, cols) in &[(4, 7), (24, 24), (96, 24), (120, 30)] {
            let m = Mat::xavier(rows, cols, &mut rng);
            let q = QuantizedMat::from_mat(&m);
            let x: Vec<f32> = (0..cols).map(|_| rng.random_range(-2.0..2.0)).collect();
            let x_l1: f32 = x.iter().map(|v| v.abs()).sum();
            let mut y_q = vec![0.0; rows];
            q.matvec_q8(&x, &mut y_q);
            let mut y_f = vec![0.0; rows];
            m.matvec(&x, &mut y_f);
            for r in 0..rows {
                // Small slack for f32 accumulation order differences on
                // top of the exact half-step quantization bound.
                let bound = q.row_error_bound(r, x_l1) * (1.0 + 1e-4) + 1e-5;
                assert!(
                    (y_q[r] - y_f[r]).abs() <= bound,
                    "{rows}x{cols} row {r}: |{} - {}| > {bound}",
                    y_q[r],
                    y_f[r]
                );
            }
        }
    }

    #[test]
    fn masked_head_skips_inactive_rows_and_matches_dense() {
        let mut rng = StdRng::seed_from_u64(113);
        let l = Linear::new(16, 40, &mut rng);
        let ql = QuantizedLinear::from_linear(&l);
        let x: Vec<f32> = (0..16).map(|_| rng.random_range(-1.0..1.0)).collect();
        let mask: Vec<bool> = (0..40).map(|r| r % 3 == 0).collect();
        let mut dense = vec![0.0; 40];
        ql.forward_into(&x, &mut dense);
        let mut masked = vec![0.0; 40];
        ql.forward_masked_into(&x, &mask, &mut masked);
        for r in 0..40 {
            if mask[r] {
                assert_eq!(masked[r].to_bits(), dense[r].to_bits(), "row {r}");
            } else {
                assert_eq!(masked[r], f32::NEG_INFINITY, "row {r} not -inf");
            }
        }
    }

    #[test]
    fn masked_head_batch_matches_serial_per_lane() {
        let mut rng = StdRng::seed_from_u64(127);
        let l = Linear::new(8, 20, &mut rng);
        let ql = QuantizedLinear::from_linear(&l);
        let batch = 5;
        let x: Vec<f32> = (0..batch * 8)
            .map(|_| rng.random_range(-1.0..1.0))
            .collect();
        let masks: Vec<bool> = (0..batch * 20)
            .map(|_| rng.random_range(0..3) == 0)
            .collect();
        let mut y = vec![0.0; batch * 20];
        ql.forward_masked_batch_into(&x, batch, &masks, &mut y);
        for lane in 0..batch {
            let mut serial = vec![0.0; 20];
            ql.forward_masked_into(
                &x[lane * 8..(lane + 1) * 8],
                &masks[lane * 20..(lane + 1) * 20],
                &mut serial,
            );
            assert_eq!(
                y[lane * 20..(lane + 1) * 20]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "lane {lane}"
            );
        }
    }

    /// The quantized stack must track the f32 stack closely over a short
    /// rollout (the logit-level error bound is fuzzed separately; this is
    /// the end-to-end sanity check).
    #[test]
    fn quantized_stack_tracks_f32_stack() {
        let mut rng = StdRng::seed_from_u64(131);
        let stack = LstmStack::new(8, 16, 2, &mut rng);
        let qstack = QuantizedLstmStack::from_stack(&stack);
        let batch = 4;
        let mut fstate = stack.zero_batch_state(batch);
        let mut qstate = qstack.zero_batch_state(batch);
        let mut zf = vec![0.0; stack.batch_scratch_len(batch)];
        let mut zq = vec![0.0; qstack.batch_scratch_len(batch)];
        let mut tmp = vec![0.0; qstack.batch_scratch_len(batch)];
        for _ in 0..6 {
            let x: Vec<f32> = (0..batch * 8)
                .map(|_| rng.random_range(-1.0..1.0))
                .collect();
            stack.infer_step_batch_into(&x, &mut fstate, &mut zf);
            qstack.infer_step_batch_into(&x, &mut qstate, &mut zq, &mut tmp);
        }
        for l in 0..2 {
            for lane in 0..batch {
                for (a, b) in fstate.lane_h(l, lane).iter().zip(qstate.lane_h(l, lane)) {
                    assert!(
                        (a - b).abs() < 0.05,
                        "layer {l} lane {lane}: f32 {a} vs q8 {b}"
                    );
                }
            }
        }
    }
}
