//! Fully-connected layer.

use crate::param::Param;
use crate::tensor::Mat;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// `y = W·x + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    pub w: Param, // out × in
    pub b: Param, // out × 1
}

/// Detached parameter-gradient buffers for one [`Linear`] (per-lane
/// arenas of the batched backward).
#[derive(Debug, Clone)]
pub struct LinearGrads {
    pub w: Mat,
    pub b: Mat,
}

impl LinearGrads {
    pub fn reset(&mut self) {
        self.w.fill(0.0);
        self.b.fill(0.0);
    }
}

impl Linear {
    pub fn new<R: Rng + ?Sized>(input: usize, output: usize, rng: &mut R) -> Self {
        Linear {
            w: Param::new(Mat::xavier(output, input, rng)),
            b: Param::new(Mat::zeros(output, 1)),
        }
    }

    pub fn input_dim(&self) -> usize {
        self.w.value.cols
    }

    pub fn output_dim(&self) -> usize {
        self.w.value.rows
    }

    /// Forward pass into a caller-provided buffer (`y.len() == output_dim`).
    /// No heap allocations; the caller keeps `x` for the backward pass.
    pub fn forward_into(&self, x: &[f32], y: &mut [f32]) {
        self.w.value.matvec(x, y);
        for (yi, bi) in y.iter_mut().zip(&self.b.value.data) {
            *yi += bi;
        }
    }

    /// Batched forward pass over `batch` row-major lanes
    /// (`x` is `[batch × in]`, `y` is `[batch × out]`). Per lane the
    /// matvec-then-bias order matches [`Linear::forward_into`] exactly, so
    /// each lane's output is bit-identical to a serial forward.
    pub fn forward_batch_into(&self, x: &[f32], batch: usize, y: &mut [f32]) {
        self.w.value.matmul_nt(x, batch, y);
        let out = self.output_dim();
        for lane in 0..batch {
            for (yi, bi) in y[lane * out..(lane + 1) * out]
                .iter_mut()
                .zip(&self.b.value.data)
            {
                *yi += bi;
            }
        }
    }

    /// Forward pass; the caller keeps `x` for the backward pass.
    /// Allocating wrapper over [`Linear::forward_into`].
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0; self.output_dim()];
        self.forward_into(x, &mut y);
        y
    }

    /// Backward pass into a caller-provided buffer (`dx.len() == input_dim`,
    /// overwritten): accumulates parameter gradients, writes `dL/dx`.
    pub fn backward_into(&mut self, x: &[f32], dy: &[f32], dx: &mut [f32]) {
        self.w.grad.add_outer(dy, x);
        for (g, d) in self.b.grad.data.iter_mut().zip(dy) {
            *g += d;
        }
        dx.iter_mut().for_each(|v| *v = 0.0);
        self.w.value.matvec_t_acc(dy, dx);
    }

    /// Backward pass: accumulates parameter gradients, returns `dL/dx`.
    /// Allocating wrapper over [`Linear::backward_into`].
    pub fn backward(&mut self, x: &[f32], dy: &[f32]) -> Vec<f32> {
        let mut dx = vec![0.0; self.input_dim()];
        self.backward_into(x, dy, &mut dx);
        dx
    }

    /// Detached gradient buffers shaped like this layer's parameters.
    pub fn empty_grads(&self) -> LinearGrads {
        LinearGrads {
            w: Mat::zeros(self.output_dim(), self.input_dim()),
            b: Mat::zeros(self.output_dim(), 1),
        }
    }

    /// Reduces one lane's gradient buffers into `Param::grad`. Callers
    /// reduce lanes in ascending lane order for a deterministic sum.
    pub fn accumulate_grads(&mut self, grads: &LinearGrads) {
        self.w.grad.add_assign(&grads.w);
        self.b.grad.add_assign(&grads.b);
    }

    /// Lane-batched backward: `x` is the `[batch × in]` forward input
    /// block, `dy` the `[batch × out]` output gradients (**inactive lanes
    /// must be zeroed by the caller**), `dx` receives `[batch × in]` input
    /// gradients. Parameter gradients go to the per-lane buffers in
    /// `grads` with the exact op sequence of [`Linear::backward_into`]
    /// (rank-1 update, then bias add), and `dx` comes from the batched
    /// [`Mat::matvec_t_batch`] kernel — bit-identical per lane to a
    /// serial backward. Lanes not marked `active` skip the parameter
    /// accumulation entirely.
    pub fn backward_batch_into(
        &self,
        x: &[f32],
        dy: &[f32],
        batch: usize,
        active: &[bool],
        grads: &mut [LinearGrads],
        dx: &mut [f32],
    ) {
        let (out, inp) = (self.output_dim(), self.input_dim());
        debug_assert_eq!(x.len(), batch * inp);
        debug_assert_eq!(dy.len(), batch * out);
        debug_assert_eq!(dx.len(), batch * inp);
        debug_assert_eq!(grads.len(), batch);
        for lane in 0..batch {
            if !active[lane] {
                debug_assert!(dy[lane * out..(lane + 1) * out].iter().all(|&v| v == 0.0));
                continue;
            }
            let dyl = &dy[lane * out..(lane + 1) * out];
            let xl = &x[lane * inp..(lane + 1) * inp];
            grads[lane].w.add_outer(dyl, xl);
            for (g, d) in grads[lane].b.data.iter_mut().zip(dyl) {
                *g += d;
            }
        }
        self.w.value.matvec_t_batch(dy, batch, dx);
    }

    /// Prefix-compacted lane-batched backward: physical slot `p` hosts
    /// logical lane `order[p]`, and `x`/`dy`/`dx` are dense
    /// `[order.len() × dim]` blocks holding only live lanes. Parameter
    /// gradients land in `grads[order[p]]` with the exact op sequence of
    /// [`Linear::backward_into`], and `dx` comes from the batched
    /// [`Mat::matvec_t_batch`] kernel at the live width — per lane
    /// bit-identical to a serial backward, with no wasted work on
    /// finished lanes.
    pub fn backward_prefix_into(
        &self,
        x: &[f32],
        dy: &[f32],
        order: &[usize],
        grads: &mut [LinearGrads],
        dx: &mut [f32],
    ) {
        let (out, inp) = (self.output_dim(), self.input_dim());
        let n = order.len();
        debug_assert_eq!(x.len(), n * inp);
        debug_assert_eq!(dy.len(), n * out);
        debug_assert_eq!(dx.len(), n * inp);
        for (p, &lane) in order.iter().enumerate() {
            let dyl = &dy[p * out..(p + 1) * out];
            let xl = &x[p * inp..(p + 1) * inp];
            grads[lane].w.add_outer(dyl, xl);
            for (g, d) in grads[lane].b.data.iter_mut().zip(dyl) {
                *g += d;
            }
        }
        self.w.value.matvec_t_batch(dy, n, dx);
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    pub fn zero_grad(&mut self) {
        self.w.zero_grad();
        self.b.zero_grad();
    }

    pub fn restore_buffers(&mut self) {
        self.w.restore_buffers();
        self.b.restore_buffers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_manual() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = Linear::new(2, 2, &mut rng);
        l.w.value.data = vec![1.0, 2.0, 3.0, 4.0];
        l.b.value.data = vec![0.5, -0.5];
        let y = l.forward(&[1.0, -1.0]);
        assert_eq!(y, vec![-0.5, -1.5]);
    }

    #[test]
    fn forward_batch_matches_serial_bitwise() {
        let mut rng = StdRng::seed_from_u64(7);
        let l = Linear::new(5, 3, &mut rng);
        for &batch in &[1usize, 2, 4, 7] {
            let x: Vec<f32> = (0..batch * 5)
                .map(|_| rng.random_range(-1.0..1.0))
                .collect();
            let mut y = vec![0.0; batch * 3];
            l.forward_batch_into(&x, batch, &mut y);
            for lane in 0..batch {
                let mut serial = vec![0.0; 3];
                l.forward_into(&x[lane * 5..(lane + 1) * 5], &mut serial);
                assert_eq!(&y[lane * 3..(lane + 1) * 3], &serial[..], "lane {lane}");
            }
        }
    }

    /// Finite-difference check of all gradients.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = vec![0.3, -0.7, 0.9];
        // Loss = sum of outputs weighted by fixed coefficients.
        let coef = [0.7, -1.3];
        let loss = |l: &Linear, x: &[f32]| -> f32 {
            l.forward(x).iter().zip(coef).map(|(y, c)| y * c).sum()
        };

        l.zero_grad();
        let dx = l.backward(&x, &coef);

        let eps = 1e-3;
        // dW
        for i in 0..l.w.value.data.len() {
            let orig = l.w.value.data[i];
            l.w.value.data[i] = orig + eps;
            let up = loss(&l, &x);
            l.w.value.data[i] = orig - eps;
            let dn = loss(&l, &x);
            l.w.value.data[i] = orig;
            let num = (up - dn) / (2.0 * eps);
            assert!(
                (num - l.w.grad.data[i]).abs() < 1e-3,
                "dW[{i}]: analytic {} vs numeric {num}",
                l.w.grad.data[i]
            );
        }
        // dx
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp[i] += eps;
            let up = loss(&l, &xp);
            xp[i] -= 2.0 * eps;
            let dn = loss(&l, &xp);
            let num = (up - dn) / (2.0 * eps);
            assert!((num - dx[i]).abs() < 1e-3);
        }
        // db
        for (g, c) in l.b.grad.data.iter().zip(&coef) {
            assert!((g - c).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_accumulates_across_calls() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut l = Linear::new(2, 1, &mut rng);
        l.zero_grad();
        l.backward(&[1.0, 0.0], &[1.0]);
        l.backward(&[1.0, 0.0], &[1.0]);
        assert_eq!(l.w.grad.data[0], 2.0);
    }
}
