//! The LearnedSQLGen generator: train on a constraint, then generate
//! satisfying queries (paper §3, Algorithms 1 and 2).

use crate::checkpoint::{Checkpoint, CheckpointError, CheckpointMeta};
use crate::config::{Algorithm, GenConfig};
use crate::refine::Refiner;
use sqlgen_engine::{render, Estimator, Statement};
use sqlgen_fsm::Vocabulary;
use sqlgen_rl::{
    run_jobs_batched, worker_seed, ActorCritic, Constraint, Episode, EstimatorCache, ExecDb, Job,
    JobOutcome, QuantizedActor, Reinforce, SqlGenEnv,
};
use sqlgen_storage::Database;
use std::sync::Arc;
use std::time::Instant;

/// One generated query with its measured metric.
#[derive(Debug, Clone)]
pub struct GeneratedQuery {
    pub statement: Statement,
    pub sql: String,
    /// Estimated cardinality or cost (per the constraint's metric).
    pub measured: f64,
    pub satisfied: bool,
}

/// Aggregate statistics from a training run.
#[derive(Debug, Clone, Default)]
pub struct TrainStats {
    pub episodes: usize,
    /// Per-episode average step reward (the Figure 8(c) training trace).
    pub reward_trace: Vec<f32>,
    /// Satisfied queries discovered *during* training (the paper counts
    /// these toward the generation budget).
    pub satisfied_during_training: Vec<GeneratedQuery>,
}

enum Trainer {
    Reinforce(Box<Reinforce>),
    ActorCritic(Box<ActorCritic>),
}

/// Constraint-aware SQL generator.
///
/// Owns the action space, the statistics-based estimator and the RL model.
/// Train once per constraint with [`LearnedSqlGen::train`], then call
/// [`LearnedSqlGen::generate`] any number of times.
pub struct LearnedSqlGen {
    vocab: Vocabulary,
    estimator: Estimator,
    constraint: Constraint,
    config: GenConfig,
    trainer: Trainer,
    /// Memo cache for estimator reward lookups. Persists across
    /// `generate` calls (so `generate_satisfied` never re-estimates a
    /// duplicate candidate); pure bit-exact memoization.
    cache: EstimatorCache,
    /// Int8 snapshot of the actor, present iff `config.quantize`.
    /// Refreshed after every train/load so it never runs stale weights.
    quant: Option<QuantizedActor>,
    /// Constraint-miss refinement engine (bounded local search + miss
    /// cache; see [`crate::refine`]). Deterministic, so it rides along on
    /// both the RNG-stream and the seeded generation paths.
    refiner: Refiner,
    /// Store for `RewardSource::Execute` rewards (shared with serving via
    /// `Arc`); `None` keeps the estimator-only paths untouched.
    exec_db: Option<Arc<ExecDb>>,
    pub stats: TrainStats,
}

/// Builds the environment from split field borrows, so callers can hold
/// `&mut self.trainer` at the same time.
fn build_env<'a>(
    vocab: &'a Vocabulary,
    estimator: &'a Estimator,
    constraint: Constraint,
    config: &GenConfig,
    cache: &'a EstimatorCache,
    exec_db: Option<&'a ExecDb>,
) -> SqlGenEnv<'a> {
    let mut env = SqlGenEnv::new(vocab, estimator, constraint)
        .with_fsm_config(config.fsm.clone())
        .with_cache(cache)
        .with_reward_source(config.reward_source);
    if let Some(db) = exec_db {
        env = env.with_exec_db(db);
        if let Some(mem) = db.as_mem() {
            env = env.with_database(mem);
        }
    }
    env
}

impl LearnedSqlGen {
    /// Builds the generator for a database and constraint. Statistics and
    /// the action space are derived from `db` once, here.
    pub fn new(db: &Database, constraint: Constraint, config: GenConfig) -> Self {
        let vocab = Vocabulary::build(db, &config.sample);
        let estimator = Estimator::build(db);
        Self::from_parts(vocab, estimator, constraint, config)
    }

    /// Builds the generator directly from an execution store — in-memory
    /// or paged. With a paged store the action space is sampled through
    /// the buffer pool and statistics are stride-sampled from disk, so a
    /// multi-GB database never needs a second in-memory copy; the store
    /// is retained for `RewardSource::Execute` rewards.
    pub fn from_exec_db(db: Arc<ExecDb>, constraint: Constraint, config: GenConfig) -> Self {
        let (vocab, estimator) = match &*db {
            ExecDb::Mem(mem) => (
                Vocabulary::build(mem, &config.sample),
                Estimator::build(mem),
            ),
            ExecDb::Paged(paged) => (
                Vocabulary::build(paged, &config.sample),
                Estimator::from_stats(paged.table_stats()),
            ),
        };
        let mut gen = Self::from_parts(vocab, estimator, constraint, config);
        gen.exec_db = Some(db);
        gen
    }

    fn from_parts(
        vocab: Vocabulary,
        estimator: Estimator,
        constraint: Constraint,
        config: GenConfig,
    ) -> Self {
        let trainer = match config.algorithm {
            Algorithm::Reinforce => {
                Trainer::Reinforce(Box::new(Reinforce::new(vocab.size(), config.train.clone())))
            }
            Algorithm::ActorCritic => Trainer::ActorCritic(Box::new(ActorCritic::new(
                vocab.size(),
                config.train.clone(),
            ))),
        };
        let refiner = Refiner::new(config.refine.clone());
        let mut gen = LearnedSqlGen {
            vocab,
            estimator,
            constraint,
            config,
            trainer,
            cache: EstimatorCache::default(),
            quant: None,
            refiner,
            exec_db: None,
            stats: TrainStats::default(),
        };
        gen.refresh_quant();
        gen
    }

    /// Attaches a store for `RewardSource::Execute` rewards after
    /// construction (e.g. the in-memory db the generator was built from).
    pub fn with_exec_db(mut self, db: Arc<ExecDb>) -> Self {
        self.exec_db = Some(db);
        self
    }

    /// The attached execution store, if any.
    pub fn exec_db(&self) -> Option<&Arc<ExecDb>> {
        self.exec_db.as_ref()
    }

    fn actor(&self) -> &sqlgen_rl::ActorNet {
        match &self.trainer {
            Trainer::Reinforce(t) => &t.actor,
            Trainer::ActorCritic(t) => &t.actor,
        }
    }

    /// Rebuilds (or drops) the int8 snapshot from the current f32 weights.
    fn refresh_quant(&mut self) {
        self.quant = if self.config.quantize {
            Some(QuantizedActor::from_actor(self.actor()))
        } else {
            None
        };
    }

    /// Whether inference currently runs on the int8 quantized snapshot.
    pub fn quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// Enables or disables constraint-miss refinement at runtime (the
    /// bench sweep's `--no-refine` escape hatch). Disabling restores the
    /// legacy generate-and-hope path bit-for-bit.
    pub fn set_refine(&mut self, on: bool) {
        self.config.refine.enabled = on;
        self.refiner = Refiner::new(self.config.refine.clone());
    }

    /// Whether constraint-miss refinement is active.
    pub fn refine_enabled(&self) -> bool {
        self.refiner.enabled()
    }

    /// Enables or disables int8 quantized inference. Enabling snapshots the
    /// current f32 weights; disabling restores the bit-exact f32 path.
    pub fn set_quantize(&mut self, on: bool) {
        self.config.quantize = on;
        self.refresh_quant();
    }

    pub fn constraint(&self) -> Constraint {
        self.constraint
    }

    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    fn env(&self) -> SqlGenEnv<'_> {
        build_env(
            &self.vocab,
            &self.estimator,
            self.constraint,
            &self.config,
            &self.cache,
            self.exec_db.as_deref(),
        )
    }

    /// Overrides the inference batch width (lockstep GEMM lanes); used by
    /// the benchmark sweep. `1` restores the serial path.
    pub fn set_batch_size(&mut self, batch_size: usize) {
        self.config.batch_size = batch_size.max(1);
    }

    /// Trains for `episodes` episodes (Algorithm 1 / Algorithm 3).
    ///
    /// With `config.batch_size > 1` rollouts advance in lockstep GEMM
    /// lanes and updates use batched BPTT with one accumulated gradient
    /// step per round of `batch_size` episodes. Otherwise rollouts are
    /// collected with `config.threads` workers (1 = the exact serial
    /// sequence) and updates are applied serially in episode order.
    pub fn train(&mut self, episodes: usize) -> &TrainStats {
        let _span = sqlgen_obs::obs_span!("gen.train");
        let started = std::time::Instant::now();
        let mut reward_sum = 0.0f64;
        let mut tokens = 0usize;
        // Split borrows: the env borrows vocab/estimator, the trainer is
        // updated mutably.
        let env = build_env(
            &self.vocab,
            &self.estimator,
            self.constraint,
            &self.config,
            &self.cache,
            self.exec_db.as_deref(),
        );
        let threads = self.config.threads.max(1);
        let batch = self.config.batch_size.max(1);
        let eps = match &mut self.trainer {
            Trainer::Reinforce(t) if batch > 1 => t.train_batched(&env, episodes, batch),
            Trainer::ActorCritic(t) if batch > 1 => t.train_batched(&env, episodes, batch),
            Trainer::Reinforce(t) => t.train_batch(&env, episodes, threads),
            Trainer::ActorCritic(t) => t.train_batch(&env, episodes, threads),
        };
        for ep in &eps {
            reward_sum += ep.total_reward() as f64;
            tokens += ep.len();
            self.stats.episodes += 1;
            self.stats
                .reward_trace
                .push(ep.total_reward() / ep.len().max(1) as f32);
            if ep.satisfied {
                self.stats.satisfied_during_training.push(to_generated(ep));
            }
        }
        let secs = started.elapsed().as_secs_f64();
        if episodes > 0 && secs > 0.0 {
            sqlgen_obs::obs_gauge!("rl.rewards_per_sec", reward_sum / secs);
            sqlgen_obs::obs_gauge!("rl.episodes_per_sec", episodes as f64 / secs);
            sqlgen_obs::obs_gauge!("rl.tokens_per_sec", tokens as f64 / secs);
        }
        self.refresh_quant();
        &self.stats
    }

    /// Trains with the configured default episode budget.
    pub fn train_default(&mut self) -> &TrainStats {
        self.train(self.config.default_train_episodes)
    }

    /// Generates `n` queries with the trained policy (Algorithm 2). With
    /// refinement on (the default), missed constraints are repaired by
    /// bounded local search and — past the search budget — by redrawing
    /// the missed slots for up to `refine.resample_rounds` rounds. With
    /// refinement off this is the raw policy sample, bit-identical to the
    /// legacy path.
    pub fn generate(&mut self, n: usize) -> Vec<GeneratedQuery> {
        let _span = sqlgen_obs::obs_span!("gen.generate");
        let started = std::time::Instant::now();
        let env = build_env(
            &self.vocab,
            &self.estimator,
            self.constraint,
            &self.config,
            &self.cache,
            self.exec_db.as_deref(),
        );
        let threads = self.config.threads.max(1);
        let batch = self.config.batch_size.max(1);
        let mut eps = roll_episodes(
            &mut self.trainer,
            self.quant.as_ref(),
            &env,
            n,
            batch,
            threads,
        );
        let mut tokens: usize = eps.iter().map(Episode::len).sum();
        if self.refiner.enabled() {
            // Post-EOS repair: token streams above are untouched, only the
            // terminal statements of missed episodes are rewritten.
            for ep in &mut eps {
                self.refiner.refine_episode(&env, ep);
            }
            // Fallback: redraw still-missing slots (advancing the trainer
            // RNG, like any further generate call would) and refine the
            // redraws too. Slots are interchangeable on this unseeded path,
            // so each round draws at least a full lane width — the tail of
            // the miss set would otherwise run near-serial through the
            // batched engine and dilute tokens/sec at wide `batch`.
            for _round in 0..self.config.refine.resample_rounds {
                let missing: Vec<usize> = eps
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| !e.satisfied)
                    .map(|(i, _)| i)
                    .collect();
                if missing.is_empty() {
                    break;
                }
                let draws = missing.len().max(batch);
                sqlgen_obs::obs_count!("refine.resampled", draws as u64);
                let fresh = roll_episodes(
                    &mut self.trainer,
                    self.quant.as_ref(),
                    &env,
                    draws,
                    batch,
                    threads,
                );
                let mut slots = missing.into_iter();
                let mut slot = slots.next();
                for mut ep in fresh {
                    tokens += ep.len();
                    let Some(open) = slot else {
                        continue; // surplus draw past the last open slot
                    };
                    self.refiner.refine_episode(&env, &mut ep);
                    if ep.satisfied {
                        eps[open] = ep;
                        slot = slots.next();
                    }
                }
            }
        }
        let out = eps.iter().map(to_generated).collect();
        let secs = started.elapsed().as_secs_f64();
        if n > 0 && secs > 0.0 {
            sqlgen_obs::obs_gauge!("gen.queries_per_sec", n as f64 / secs);
            sqlgen_obs::obs_gauge!("gen.tokens_per_sec", tokens as f64 / secs);
        }
        out
    }

    /// Keeps generating until `n` satisfied queries are found or
    /// `max_attempts` is exhausted. Returns the satisfied queries and the
    /// number of attempts spent.
    pub fn generate_satisfied(
        &mut self,
        n: usize,
        max_attempts: usize,
    ) -> (Vec<GeneratedQuery>, usize) {
        let mut out = Vec::with_capacity(n);
        let mut attempts = 0;
        // Attempts proceed a chunk at a time: one per worker thread or one
        // per lockstep lane, whichever engine is wider (still within the
        // budget); threads = batch_size = 1 reproduces the serial loop.
        let chunk = self.config.threads.max(self.config.batch_size).max(1);
        while out.len() < n && attempts < max_attempts {
            let batch = chunk.min(max_attempts - attempts);
            attempts += batch;
            for q in self.generate(batch) {
                if q.satisfied && out.len() < n {
                    out.push(q);
                }
            }
        }
        (out, attempts)
    }

    /// Fraction of `n` **raw** policy samples satisfying the constraint —
    /// the paper's generation accuracy. Refinement is intentionally
    /// bypassed here: this measures the trained policy itself, not the
    /// repair loop (use [`LearnedSqlGen::generate`] for end-to-end rates).
    pub fn accuracy(&mut self, n: usize) -> f64 {
        let env = build_env(
            &self.vocab,
            &self.estimator,
            self.constraint,
            &self.config,
            &self.cache,
            self.exec_db.as_deref(),
        );
        let threads = self.config.threads.max(1);
        let batch = self.config.batch_size.max(1);
        let eps = roll_episodes(
            &mut self.trainer,
            self.quant.as_ref(),
            &env,
            n,
            batch,
            threads,
        );
        eps.iter().filter(|e| e.satisfied).count() as f64 / n.max(1) as f64
    }

    /// Measures a statement under this generator's constraint metric.
    pub fn measure(&self, stmt: &Statement) -> f64 {
        self.env().measure(stmt)
    }

    /// Generates `n` queries whose token streams are a pure function of
    /// `(weights, constraint, seed)` — independent of `batch_size`, of
    /// threads, and of anything else running in the process. Query `j` uses
    /// the per-job seed [`worker_seed`]`(seed, j)`, so the result is also
    /// what a server coalescing this request with others must return.
    pub fn generate_seeded(&self, n: usize, seed: u64) -> Vec<GeneratedQuery> {
        self.generate_seeded_deadline(n, seed, None).0
    }

    /// Deadline-aware [`LearnedSqlGen::generate_seeded`]: jobs still
    /// running at `deadline` abort mid-generation. Returns the completed
    /// queries (in job order) and the number of expired jobs.
    pub fn generate_seeded_deadline(
        &self,
        n: usize,
        seed: u64,
        deadline: Option<Instant>,
    ) -> (Vec<GeneratedQuery>, usize) {
        self.generate_seeded_traced(n, seed, deadline, None)
    }

    /// [`LearnedSqlGen::generate_seeded_deadline`] with an optional request
    /// trace: each job attributes its lane time (`episode` span,
    /// `estimator`/`refill` accumulation, token counts) to `trace`. This is
    /// the facade a serving batcher calls so end-to-end request traces
    /// reach the per-token engine.
    pub fn generate_seeded_traced(
        &self,
        n: usize,
        seed: u64,
        deadline: Option<Instant>,
        trace: Option<sqlgen_obs::TraceHandle>,
    ) -> (Vec<GeneratedQuery>, usize) {
        let _span = sqlgen_obs::obs_span!("gen.generate_seeded");
        let env = self.env();
        let lanes = self.config.batch_size.max(1);
        let jobs: Vec<Job> = (0..n)
            .map(|j| Job {
                env: &env,
                seed: worker_seed(seed, j),
                deadline,
                tag: j as u64,
                trace: trace.clone(),
            })
            .collect();
        let tagged = if let Some(q) = &self.quant {
            run_jobs_batched(q, jobs, lanes)
        } else {
            run_jobs_batched(self.actor(), jobs, lanes)
        };
        // Job-indexed slots so refinement/resampling can replace a miss in
        // place; `None` marks an expired job.
        let mut slots: Vec<Option<GeneratedQuery>> = (0..n).map(|_| None).collect();
        for (tag, outcome) in tagged {
            if let JobOutcome::Done(ep) = outcome {
                slots[tag as usize] = Some(to_generated(&ep));
            }
        }
        if self.refiner.enabled() && n > 0 {
            let t0 = Instant::now();
            for q in slots.iter_mut().flatten() {
                if !q.satisfied {
                    if let Some((stmt, m)) = self.refiner.refine(&env, &q.statement, q.measured) {
                        q.sql = render(&stmt);
                        q.statement = stmt;
                        q.measured = m;
                        q.satisfied = true;
                    }
                }
            }
            // Fallback resampling: redraw still-missing slots with seeds
            // disjoint from the primary `worker_seed(seed, 0..n)` block.
            // Every redraw is a fresh Job (own seed, zeroed lane), so the
            // output stays a pure function of `(weights, constraint,
            // seed)` — independent of `lanes` and of co-tenant work. Once
            // the miss set shrinks below the lane width, several future
            // rounds are drawn speculatively in one batched call (the seed
            // schedule is fixed, so accepting the lowest satisfying round
            // per slot is exactly what the one-round-at-a-time loop would
            // produce) — the tail would otherwise run near-serial lanes.
            let mut round = 0usize;
            while round < self.config.refine.resample_rounds {
                let missing: Vec<usize> = slots
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.as_ref().is_some_and(|q| !q.satisfied))
                    .map(|(i, _)| i)
                    .collect();
                if missing.is_empty() {
                    break;
                }
                let span =
                    (lanes / missing.len()).clamp(1, self.config.refine.resample_rounds - round);
                sqlgen_obs::obs_count!("refine.resampled", (missing.len() * span) as u64);
                let jobs: Vec<Job> = (0..span)
                    .flat_map(|r| {
                        let trace = &trace;
                        let env = &env;
                        missing.iter().map(move |&j| Job {
                            env,
                            seed: worker_seed(seed, n * (round + r + 1) + j),
                            deadline,
                            tag: (r * n + j) as u64,
                            trace: trace.clone(),
                        })
                    })
                    .collect();
                let redraws = if let Some(q) = &self.quant {
                    run_jobs_batched(q, jobs, lanes)
                } else {
                    run_jobs_batched(self.actor(), jobs, lanes)
                };
                // Lowest satisfying round wins per slot, matching the
                // sequential schedule.
                let mut won: Vec<Option<usize>> = vec![None; n];
                for (tag, outcome) in redraws {
                    let JobOutcome::Done(mut ep) = outcome else {
                        continue;
                    };
                    let (r, j) = ((tag as usize) / n, (tag as usize) % n);
                    if won[j].is_some_and(|best| best <= r) {
                        continue;
                    }
                    self.refiner.refine_episode(&env, &mut ep);
                    if ep.satisfied {
                        won[j] = Some(r);
                        slots[j] = Some(to_generated(&ep));
                    }
                }
                round += span;
            }
            if let Some(tr) = &trace {
                tr.accum("refine", t0.elapsed().as_nanos() as f64 / 1_000.0);
            }
        }
        let mut out = Vec::with_capacity(n);
        let mut expired = 0usize;
        for slot in slots {
            match slot {
                Some(q) => out.push(q),
                None => expired += 1,
            }
        }
        (out, expired)
    }

    /// Builds a versioned [`Checkpoint`] of the trained policy: actor +
    /// critic (when the algorithm has one) + config provenance.
    pub fn checkpoint(&self) -> Checkpoint {
        let (algorithm, actor, critic) = match &self.trainer {
            Trainer::Reinforce(t) => ("reinforce", t.actor.clone(), None),
            Trainer::ActorCritic(t) => ("actor-critic", t.actor.clone(), Some(t.critic.clone())),
        };
        Checkpoint {
            config: CheckpointMeta {
                algorithm: algorithm.to_string(),
                vocab_size: self.vocab.size(),
                net: Some(self.config.train.net.clone()),
                constraint: Some(self.constraint),
            },
            actor,
            critic,
        }
    }

    /// Serializes the trained policy in the versioned checkpoint format
    /// (header line + JSON payload; see [`crate::checkpoint`]).
    pub fn save_checkpoint(&self) -> String {
        self.checkpoint().render()
    }

    /// Atomically writes [`LearnedSqlGen::save_checkpoint`] output to
    /// `path` (tmp file + rename), safe against concurrent registry scans.
    pub fn write_checkpoint(&self, path: &std::path::Path) -> Result<(), CheckpointError> {
        crate::checkpoint::write_atomic(path, &self.save_checkpoint())
    }

    /// Restores the policy from [`LearnedSqlGen::save_checkpoint`] output
    /// (or legacy [`LearnedSqlGen::save_actor`] JSON). Validates that the
    /// checkpoint's action space matches this generator's vocabulary and
    /// returns a typed error otherwise; on success installs the actor and —
    /// when both sides have one — the critic.
    pub fn load_checkpoint(&mut self, text: &str) -> Result<(), CheckpointError> {
        let ckpt = Checkpoint::parse_for_vocab(text, self.vocab.size())?;
        match &mut self.trainer {
            Trainer::Reinforce(t) => t.actor = ckpt.actor,
            Trainer::ActorCritic(t) => {
                t.actor = ckpt.actor;
                if let Some(critic) = ckpt.critic {
                    t.critic = critic;
                }
            }
        }
        self.refresh_quant();
        Ok(())
    }

    /// Serializes the trained actor to bare JSON (the legacy, headerless
    /// checkpoint format; kept for compatibility). Prefer
    /// [`LearnedSqlGen::save_checkpoint`], which also carries the critic
    /// and config.
    pub fn save_actor(&self) -> String {
        let actor = match &self.trainer {
            Trainer::Reinforce(t) => &t.actor,
            Trainer::ActorCritic(t) => &t.actor,
        };
        serde_json::to_string(actor).expect("actor serializes")
    }

    /// Restores actor weights from either checkpoint format. Alias of
    /// [`LearnedSqlGen::load_checkpoint`]; unlike the pre-versioned
    /// implementation this validates the vocabulary size instead of
    /// silently installing a mismatched policy.
    pub fn load_actor(&mut self, text: &str) -> Result<(), CheckpointError> {
        self.load_checkpoint(text)
    }
}

/// Draws `n` raw policy samples from the trainer's RNG stream. With a
/// quantized snapshot all generation runs through the lockstep engine on
/// the int8 actor. Otherwise `batch > 1` selects the lockstep GEMM engine
/// on f32 (threads cannot help on a single core; lanes can), and
/// `batch = 1` preserves the legacy serial/threaded paths bit-for-bit.
fn roll_episodes(
    trainer: &mut Trainer,
    quant: Option<&QuantizedActor>,
    env: &SqlGenEnv,
    n: usize,
    batch: usize,
    threads: usize,
) -> Vec<Episode> {
    if let Some(q) = quant {
        match trainer {
            Trainer::Reinforce(t) => t.generate_batched_quant(q, env, n, batch),
            Trainer::ActorCritic(t) => t.generate_batched_quant(q, env, n, batch),
        }
    } else {
        match trainer {
            Trainer::Reinforce(t) if batch > 1 => t.generate_batched(env, n, batch),
            Trainer::ActorCritic(t) if batch > 1 => t.generate_batched(env, n, batch),
            Trainer::Reinforce(t) => t.generate_batch(env, n, threads),
            Trainer::ActorCritic(t) => t.generate_batch(env, n, threads),
        }
    }
}

fn to_generated(ep: &Episode) -> GeneratedQuery {
    GeneratedQuery {
        sql: render(&ep.statement),
        statement: ep.statement.clone(),
        measured: ep.measured,
        satisfied: ep.satisfied,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlgen_storage::gen::tpch_database;

    fn quick_gen(constraint: Constraint) -> LearnedSqlGen {
        let db = tpch_database(0.2, 21);
        LearnedSqlGen::new(&db, constraint, GenConfig::fast().with_seed(5))
    }

    #[test]
    fn train_then_generate_beats_untrained_accuracy() {
        // Tight enough that the untrained policy rarely hits it.
        let constraint = Constraint::cardinality_range(100.0, 500.0);
        let mut untrained = quick_gen(constraint);
        let base_acc = untrained.accuracy(80);

        let mut g = quick_gen(constraint);
        g.train(500);
        let acc = g.accuracy(80);
        assert!(
            acc > base_acc + 0.05,
            "training did not help: {acc:.2} vs untrained {base_acc:.2}"
        );
        assert_eq!(g.stats.episodes, 500);
        assert_eq!(g.stats.reward_trace.len(), 500);
    }

    #[test]
    fn generated_queries_are_valid_sql() {
        let db = tpch_database(0.2, 21);
        let mut g = LearnedSqlGen::new(
            &db,
            Constraint::cardinality_range(1.0, 100_000.0),
            GenConfig::fast(),
        );
        g.train(50);
        for q in g.generate(20) {
            sqlgen_engine::validate(&db, &q.statement).unwrap();
            let reparsed = sqlgen_engine::parse(&q.sql).unwrap();
            assert_eq!(render(&reparsed), q.sql);
        }
    }

    #[test]
    fn generated_queries_are_valid_sql_with_threads() {
        let db = tpch_database(0.2, 21);
        let mut g = LearnedSqlGen::new(
            &db,
            Constraint::cardinality_range(1.0, 100_000.0),
            GenConfig::fast().with_threads(4),
        );
        g.train(50);
        for q in g.generate(20) {
            sqlgen_engine::validate(&db, &q.statement).unwrap();
            let reparsed = sqlgen_engine::parse(&q.sql).unwrap();
            assert_eq!(render(&reparsed), q.sql);
        }
    }

    #[test]
    fn generated_queries_are_valid_sql_with_batching() {
        let db = tpch_database(0.2, 21);
        let mut g = LearnedSqlGen::new(
            &db,
            Constraint::cardinality_range(1.0, 100_000.0),
            GenConfig::fast().with_batch_size(8),
        );
        g.train(50);
        for q in g.generate(20) {
            sqlgen_engine::validate(&db, &q.statement).unwrap();
            let reparsed = sqlgen_engine::parse(&q.sql).unwrap();
            assert_eq!(render(&reparsed), q.sql);
        }
    }

    #[test]
    fn quantized_generation_is_valid_and_toggles_cleanly() {
        let constraint = Constraint::cardinality_range(10.0, 10_000.0);
        let db = tpch_database(0.2, 21);
        let mut g = LearnedSqlGen::new(&db, constraint, GenConfig::fast().with_seed(5));
        g.train(60);
        assert!(!g.quantized());
        let baseline = g.generate_seeded(6, 0x0DD);

        g.set_quantize(true);
        assert!(g.quantized());
        let quant = g.generate_seeded(6, 0x0DD);
        assert_eq!(quant.len(), 6);
        for q in &quant {
            sqlgen_engine::validate(&db, &q.statement).unwrap();
        }
        // Plain generate also runs the int8 engine and yields valid SQL.
        for q in g.generate(10) {
            sqlgen_engine::validate(&db, &q.statement).unwrap();
        }

        // Disabling restores the bit-exact f32 path.
        g.set_quantize(false);
        assert!(!g.quantized());
        let back = g.generate_seeded(6, 0x0DD);
        for (x, y) in back.iter().zip(&baseline) {
            assert_eq!(x.sql, y.sql);
            assert_eq!(x.measured.to_bits(), y.measured.to_bits());
        }
    }

    #[test]
    fn train_with_batching_then_quantized_load_roundtrips() {
        let constraint = Constraint::cardinality_range(10.0, 10_000.0);
        let db = tpch_database(0.2, 21);
        let mut g = LearnedSqlGen::new(
            &db,
            constraint,
            GenConfig::fast().with_seed(5).with_batch_size(8),
        );
        g.train(64); // lane-batched training path
        let text = g.save_checkpoint();

        // A quantize-at-load generator reproduces the trainer's own
        // quantized stream: the snapshot is a pure function of the weights.
        let mut fresh = LearnedSqlGen::new(
            &db,
            constraint,
            GenConfig::fast().with_seed(5).with_quantize(true),
        );
        fresh.load_checkpoint(&text).unwrap();
        assert!(fresh.quantized());
        g.set_quantize(true);
        let a = g.generate_seeded(5, 0xFACE);
        let b = fresh.generate_seeded(5, 0xFACE);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.sql, y.sql);
        }
    }

    #[test]
    fn generate_satisfied_respects_budget() {
        let mut g = quick_gen(Constraint::cardinality_range(1e11, 1e12)); // unreachable
        let (found, attempts) = g.generate_satisfied(5, 20);
        assert!(found.is_empty());
        assert_eq!(attempts, 20);
    }

    #[test]
    fn checkpoint_roundtrip_preserves_behavior() {
        let constraint = Constraint::cardinality_range(10.0, 10_000.0);
        let mut g = quick_gen(constraint);
        g.train(100);
        let ckpt = g.save_actor();
        let acc_before = g.accuracy(30);

        let mut fresh = quick_gen(constraint);
        fresh.load_actor(&ckpt).unwrap();
        let acc_after = fresh.accuracy(30);
        // Same weights, same (seeded) generation stream → similar accuracy.
        assert!(
            (acc_before - acc_after).abs() < 0.35,
            "checkpoint drift: {acc_before} vs {acc_after}"
        );
    }

    #[test]
    fn versioned_checkpoint_roundtrips_with_critic() {
        let constraint = Constraint::cardinality_range(10.0, 10_000.0);
        let mut g = quick_gen(constraint);
        g.train(50);
        let text = g.save_checkpoint();
        assert!(text.starts_with("sqlgen-checkpoint v1\n"));

        let mut fresh = quick_gen(constraint);
        fresh.load_checkpoint(&text).unwrap();
        // Same weights → bitwise-identical seeded generation.
        let a = g.generate_seeded(5, 0xbeef);
        let b = fresh.generate_seeded(5, 0xbeef);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.sql, y.sql);
            assert_eq!(x.measured.to_bits(), y.measured.to_bits());
        }
        // The critic rode along (ActorCritic is the default algorithm).
        let ckpt = crate::checkpoint::Checkpoint::parse(&text).unwrap();
        assert_eq!(ckpt.config.algorithm, "actor-critic");
        assert!(ckpt.critic.is_some());
    }

    #[test]
    fn load_rejects_vocab_mismatch_with_typed_error() {
        use crate::checkpoint::CheckpointError;
        let constraint = Constraint::cardinality_range(10.0, 10_000.0);
        // A generator over a different schema/sample config has a different
        // action space; its checkpoint must be rejected, not installed.
        let db = tpch_database(0.1, 3);
        let other = LearnedSqlGen::new(
            &db,
            constraint,
            GenConfig::fast().with_seed(9).with_sample_k(8),
        );
        let foreign = other.save_checkpoint();
        let mut target = quick_gen(constraint);
        let err = target.load_checkpoint(&foreign).unwrap_err();
        assert!(
            matches!(err, CheckpointError::VocabMismatch { .. }),
            "want VocabMismatch, got {err:?}"
        );
        // The legacy headerless format is validated too.
        let err = target.load_actor(&other.save_actor()).unwrap_err();
        assert!(matches!(err, CheckpointError::VocabMismatch { .. }));
    }

    #[test]
    fn generate_seeded_is_independent_of_batch_width() {
        let constraint = Constraint::cardinality_range(10.0, 10_000.0);
        let mut g = quick_gen(constraint);
        g.train(30);
        let baseline = g.generate_seeded(6, 0x5eed);
        for &batch in &[2usize, 4, 8] {
            g.set_batch_size(batch);
            let got = g.generate_seeded(6, 0x5eed);
            assert_eq!(got.len(), baseline.len());
            for (x, y) in got.iter().zip(&baseline) {
                assert_eq!(x.sql, y.sql, "batch {batch} diverged");
                assert_eq!(x.measured.to_bits(), y.measured.to_bits());
            }
        }
        // And reproducible call-to-call.
        let again = g.generate_seeded(6, 0x5eed);
        assert_eq!(
            again.iter().map(|q| &q.sql).collect::<Vec<_>>(),
            baseline.iter().map(|q| &q.sql).collect::<Vec<_>>()
        );
    }

    /// Refinement must only raise the satisfied count, keep every emitted
    /// query valid SQL, and keep `measured` consistent with a re-measure.
    #[test]
    fn refine_off_matches_legacy_and_on_lifts_satisfaction() {
        let constraint = Constraint::cardinality_range(100.0, 500.0);
        let db = tpch_database(0.2, 21);
        let mut raw = LearnedSqlGen::new(
            &db,
            constraint,
            GenConfig::fast().with_seed(5).with_refine(false),
        );
        raw.train(60);
        let legacy = raw.generate(20);

        let mut refined = LearnedSqlGen::new(&db, constraint, GenConfig::fast().with_seed(5));
        assert!(refined.refine_enabled());
        refined.train(60);
        let out = refined.generate(20);
        assert_eq!(out.len(), 20);
        let raw_sat = legacy.iter().filter(|q| q.satisfied).count();
        let ref_sat = out.iter().filter(|q| q.satisfied).count();
        assert!(
            ref_sat >= raw_sat,
            "refinement lowered satisfaction: {ref_sat} < {raw_sat}"
        );
        for q in &out {
            sqlgen_engine::validate(&db, &q.statement).unwrap();
            assert_eq!(
                refined.measure(&q.statement).to_bits(),
                q.measured.to_bits()
            );
            if q.satisfied {
                assert!(constraint.satisfied(q.measured));
            }
        }
    }

    /// With refinement (and its resampling fallback) engaged, seeded
    /// generation must stay a pure function of the seed — independent of
    /// the lane width, exactly like the unrefined path.
    #[test]
    fn seeded_refinement_is_pure_across_batch_widths() {
        // Tight band → plenty of misses → the refine/resample path runs.
        let constraint = Constraint::cardinality_range(200.0, 260.0);
        let mut g = quick_gen(constraint);
        g.train(30);
        let baseline = g.generate_seeded(8, 0xA11);
        for &batch in &[2usize, 8] {
            g.set_batch_size(batch);
            let got = g.generate_seeded(8, 0xA11);
            assert_eq!(got.len(), baseline.len());
            for (x, y) in got.iter().zip(&baseline) {
                assert_eq!(x.sql, y.sql, "batch {batch} diverged under refine");
                assert_eq!(x.measured.to_bits(), y.measured.to_bits());
            }
        }
    }

    #[test]
    fn generate_seeded_deadline_expires_jobs() {
        let constraint = Constraint::cardinality_range(10.0, 10_000.0);
        let g = quick_gen(constraint);
        let past = Instant::now() - std::time::Duration::from_millis(1);
        let (done, expired) = g.generate_seeded_deadline(4, 1, Some(past));
        assert!(done.is_empty());
        assert_eq!(expired, 4);
    }

    /// `RewardSource::Execute` trains end-to-end against both store
    /// backends, stays within the per-query budget (fallbacks counted,
    /// never panics), and the paged store yields the same vocabulary as
    /// the in-memory copy it was saved from.
    #[test]
    fn execute_rewards_train_against_mem_and_paged_stores() {
        use sqlgen_rl::{ExecBudget, RewardSource};
        let constraint = Constraint::cardinality_range(10.0, 10_000.0);
        let db = tpch_database(0.1, 21);
        let cfg = GenConfig::fast()
            .with_seed(5)
            .with_execute_rewards(ExecBudget {
                max_rows: 200_000,
                max_micros: 0,
            });
        assert!(matches!(cfg.reward_source, RewardSource::Execute { .. }));

        // In-memory execute store.
        let mem = std::sync::Arc::new(ExecDb::Mem(db.clone()));
        let mut g = LearnedSqlGen::from_exec_db(mem, constraint, cfg.clone());
        g.train(40);
        let out = g.generate(8);
        assert_eq!(out.len(), 8);
        for q in &out {
            sqlgen_engine::validate(&db, &q.statement).unwrap();
        }

        // Paged execute store: persist, reopen, train on real disk reads.
        let path = std::env::temp_dir().join(format!(
            "sqlgen_gen_exec_{}_{}.db",
            std::process::id(),
            0x9e
        ));
        sqlgen_storage::save_database(&db, &path).unwrap();
        let paged = sqlgen_storage::PagedDb::open(&path, 1 << 20).unwrap();
        let pg = std::sync::Arc::new(ExecDb::Paged(paged));
        let mut g2 = LearnedSqlGen::from_exec_db(pg.clone(), constraint, cfg);
        // Paged and in-memory backends derive the same action space.
        assert_eq!(g.vocab().size(), g2.vocab().size());
        g2.train(40);
        let out = g2.generate(8);
        assert_eq!(out.len(), 8);
        for q in &out {
            sqlgen_engine::validate(&db, &q.statement).unwrap();
        }
        // Real executions actually happened against the paged store.
        let (hits, _misses, _evics, _wb) = {
            let p = pg.as_paged().unwrap();
            let s = p.pool_stats();
            (s.hits, s.misses, s.evictions, s.write_backs)
        };
        assert!(hits > 0, "no buffer pool traffic during execute rewards");
        drop(g2);
        drop(pg);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reinforce_algorithm_also_works() {
        let db = tpch_database(0.2, 21);
        let mut g = LearnedSqlGen::new(
            &db,
            Constraint::cardinality_range(50.0, 5_000.0),
            GenConfig::fast().with_algorithm(Algorithm::Reinforce),
        );
        g.train(100);
        let qs = g.generate(10);
        assert_eq!(qs.len(), 10);
    }
}
