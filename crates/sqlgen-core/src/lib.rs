//! # LearnedSQLGen core
//!
//! The paper's headline system: given a database and a cardinality/cost
//! constraint, train an RL policy whose generated SQL satisfies the
//! constraint (paper §3).
//!
//! ```no_run
//! use sqlgen_core::{Constraint, GenConfig, LearnedSqlGen};
//! use sqlgen_storage::gen::Benchmark;
//!
//! let db = Benchmark::TpcH.build(1.0, 42);
//! let mut generator = LearnedSqlGen::new(
//!     &db,
//!     Constraint::cardinality_range(1_000.0, 2_000.0),
//!     GenConfig::default(),
//! );
//! generator.train(500);
//! for q in generator.generate(10) {
//!     println!("{} -> {:.0} (satisfied: {})", q.sql, q.measured, q.satisfied);
//! }
//! ```

pub mod checkpoint;
pub mod config;
pub mod diversity;
pub mod generator;
pub mod meta;
pub mod metrics;
pub mod refine;

pub use checkpoint::{Checkpoint, CheckpointError, CheckpointMeta, CHECKPOINT_VERSION};
pub use config::{Algorithm, GenConfig};
pub use diversity::{profile, structure_signature, DiversityReport};
pub use generator::{GeneratedQuery, LearnedSqlGen, TrainStats};
pub use meta::{MetaSqlGen, Specialized};
pub use metrics::{timed, GenerationReport};
pub use refine::{RefineConfig, RefineOutcome, RefineStep, Refiner};
// Re-export the constraint vocabulary so users need only this crate.
pub use sqlgen_rl::{
    Constraint, ExecBudget, ExecDb, Metric, RewardSource, Target, POINT_TOLERANCE,
};
