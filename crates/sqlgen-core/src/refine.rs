//! Constraint-miss refinement: structure-preserving local search.
//!
//! When a generated query misses its constraint, full regeneration throws
//! the whole episode away. This module instead keeps the query's structure
//! and runs a **bounded, deterministic local search** over the component
//! that broke the constraint (DESIGN.md §12):
//!
//! 1. **Predicate constants** — swap a range/equality literal for another
//!    sampled value of the same column. The estimator's histogram
//!    `fraction_below` makes cardinality monotone in a range constant, so
//!    this tier almost always finds the fix.
//! 2. **Comparison operators** — swap `op` within the FSM's own operator
//!    set for the column type (numerics: all six; otherwise `{=, >, <}`),
//!    so every candidate stays inside the FSM language.
//! 3. **Predicate drops** — drop one AND/OR arm, the whole WHERE, or the
//!    HAVING clause (raises selectivity when every constant is too tight).
//! 4. **Join order** — swap adjacent joins (cost metric; never changes
//!    cardinality) while preserving the FROM invariant that every join's
//!    left side references an earlier table.
//!
//! Each candidate is scored with [`Constraint::reward`] on the shared
//! estimator (memoized via `EstimatorCache`); the search accepts the first
//! candidate *inside* the constraint, otherwise takes the best strictly
//! improving candidate and iterates. Accepted steps therefore have strictly
//! increasing reward — the estimator score moves monotonically toward the
//! constraint interval, the invariant the `refine-validity` fuzz family
//! checks. A hard budget caps estimator evaluations; past it callers fall
//! back to resampling.
//!
//! **Determinism.** The search draws no randomness: move enumeration is a
//! pure function of the statement and the vocabulary (tiers in fixed
//! order, candidate constants taken evenly spaced from the column's sorted
//! sample), and scoring is bit-exact estimator arithmetic. Refining a
//! query is therefore a pure function of `(schema, constraint, query)`,
//! which keeps seeded generation and served responses reproducible.
//!
//! Results are memoized in a small LRU keyed on
//! `(schema fingerprint, constraint, missed SQL)` — the miss signature —
//! so repeated misses on the same shape (common under a trained policy)
//! cost one lookup.

use sqlgen_engine::{render, CmpOp, Predicate, Rhs, SelectQuery, Statement};
use sqlgen_fsm::{Token, Vocabulary};
use sqlgen_rl::{Metric, SqlGenEnv, Target, POINT_TOLERANCE};
use sqlgen_storage::Value;
use std::collections::HashMap;
use std::sync::Mutex;

/// Default hard budget on estimator evaluations per refinement. Structurally
/// unfixable misses never get near it — the reachability bound in [`search`]
/// rejects them after at most one eval — so the budget is spent only on
/// genuinely searchable neighborhoods.
pub const DEFAULT_REFINE_BUDGET: usize = 96;
/// Default capacity of the refinement LRU cache.
pub const DEFAULT_REFINE_CACHE_CAPACITY: usize = 512;
/// Default resampling rounds after refinement gives up (fallback policy).
pub const DEFAULT_RESAMPLE_ROUNDS: usize = 16;
/// Candidate constants tried per predicate atom per round (evenly spaced
/// over the column's sorted sample so the span is covered, not just the
/// neighborhood).
const CONSTANTS_PER_ATOM: usize = 8;

/// Knobs for constraint-miss refinement. Default **on**; the benches and
/// CLI expose a `--no-refine` escape hatch.
#[derive(Debug, Clone)]
pub struct RefineConfig {
    pub enabled: bool,
    /// Hard budget on estimator evaluations per refinement attempt.
    pub max_evals: usize,
    /// LRU capacity of the `(schema, constraint, miss)` result cache.
    pub cache_capacity: usize,
    /// Resampling rounds after local search gives up. Each round redraws
    /// the still-missing slots with fresh deterministic seeds and refines
    /// the redraws; `0` disables the fallback.
    pub resample_rounds: usize,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig {
            enabled: true,
            max_evals: DEFAULT_REFINE_BUDGET,
            cache_capacity: DEFAULT_REFINE_CACHE_CAPACITY,
            resample_rounds: DEFAULT_RESAMPLE_ROUNDS,
        }
    }
}

impl RefineConfig {
    /// Refinement disabled: the legacy generate-and-hope path, bit-exact.
    pub fn off() -> Self {
        RefineConfig {
            enabled: false,
            ..Default::default()
        }
    }
}

/// One accepted state of the search (for the `refine-validity` fuzz family
/// and debugging). `reward` strictly increases along the accepted chain.
#[derive(Debug, Clone)]
pub struct RefineStep {
    pub statement: Statement,
    pub sql: String,
    pub measured: f64,
    pub reward: f64,
}

/// Outcome of one bounded local search.
#[derive(Debug, Clone)]
pub struct RefineOutcome {
    /// A satisfying rewrite, if the search found one within budget.
    pub result: Option<(Statement, f64)>,
    /// Accepted intermediate states, in order (monotone in `reward`).
    pub steps: Vec<RefineStep>,
    /// Estimator evaluations spent.
    pub evals: usize,
}

/// Bounded local search from `stmt` (measured at `measured`, missing
/// `env.constraint`) toward the constraint. Pure: no RNG, no side effects
/// beyond the env's estimator memo cache. See the module docs for the move
/// tiers and acceptance rule.
pub fn search(env: &SqlGenEnv, stmt: &Statement, measured: f64, max_evals: usize) -> RefineOutcome {
    let constraint = env.constraint;
    if constraint.satisfied(measured) {
        return RefineOutcome {
            result: Some((stmt.clone(), measured)),
            steps: Vec::new(),
            evals: 0,
        };
    }
    let mut cur = stmt.clone();
    let mut cur_reward = constraint.reward(measured);
    let mut steps = Vec::new();
    let mut evals = 0usize;

    // Reachability bound for cardinality-from-below misses (the dominant
    // class: small tables, aggregate group counts). Every tier-1–3 move is
    // a constant/operator swap or a predicate/HAVING drop, and conjuncts
    // never *raise* cardinality (the `estimator` fuzz invariant), so the
    // predicate-free, HAVING-free rendering is an upper bound on anything
    // local search can reach; join reorders are cardinality-neutral. When
    // even the bound misses the constraint's floor, give up after at most
    // one eval instead of proving the local optimum move by move —
    // resampling redraws the slot far cheaper.
    if constraint.metric == Metric::Cardinality {
        let floor = match constraint.target {
            Target::Point(c) => c / (1.0 + POINT_TOLERANCE),
            Target::Range(lo, _) => lo,
        };
        if measured < floor {
            let mut loose = with_predicate(stmt, None);
            if let Statement::Select(q) = &mut loose {
                q.having = None;
            }
            let bound = if statement_predicate(stmt).is_none()
                && !matches!(stmt, Statement::Select(q) if q.having.is_some())
            {
                measured // nothing to loosen: the statement is its own bound
            } else {
                evals += 1;
                env.measure(&loose)
            };
            if bound < floor {
                return RefineOutcome {
                    result: None,
                    steps,
                    evals,
                };
            }
        }
    }

    loop {
        let mut best: Option<(Statement, f64, f64)> = None;
        let mut accepted = false;
        'cands: for cand in candidates(env.vocab, &cur) {
            if evals >= max_evals {
                break 'cands;
            }
            evals += 1;
            let m = env.measure(&cand);
            let r = constraint.reward(m);
            if constraint.satisfied(m) {
                // First candidate inside the constraint wins outright.
                // `reward ≥ 1/(1+tol)` inside the band while every
                // unsatisfied state scores strictly below it, so the
                // accepted chain stays strictly increasing.
                best = Some((cand, m, r));
                accepted = true;
                break 'cands;
            }
            if r > cur_reward && best.as_ref().is_none_or(|(_, _, br)| r > *br) {
                best = Some((cand, m, r));
            }
        }
        match best {
            Some((cand, m, r)) if accepted || r > cur_reward => {
                cur = cand;
                cur_reward = r;
                steps.push(RefineStep {
                    sql: render(&cur),
                    statement: cur.clone(),
                    measured: m,
                    reward: r,
                });
                if accepted {
                    return RefineOutcome {
                        result: Some((cur, m)),
                        steps,
                        evals,
                    };
                }
                if evals >= max_evals {
                    return RefineOutcome {
                        result: None,
                        steps,
                        evals,
                    };
                }
            }
            // No strictly improving neighbor (local optimum) or budget
            // exhausted mid-scan: give up, let the caller resample.
            _ => {
                return RefineOutcome {
                    result: None,
                    steps,
                    evals,
                }
            }
        }
    }
}

/// The refinement engine: bounded local search plus the
/// `(schema, constraint, miss-signature)` LRU memo.
pub struct Refiner {
    cfg: RefineConfig,
    cache: Mutex<RefineLru>,
}

impl Refiner {
    pub fn new(cfg: RefineConfig) -> Self {
        let capacity = cfg.cache_capacity;
        Refiner {
            cfg,
            cache: Mutex::new(RefineLru::new(capacity)),
        }
    }

    pub fn config(&self) -> &RefineConfig {
        &self.cfg
    }

    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Refines one missed statement. Returns the satisfying rewrite and
    /// its measured metric, or `None` when the search gave up (callers
    /// then fall back to resampling). Consults and fills the miss cache;
    /// emits `refine.*` metrics.
    pub fn refine(
        &self,
        env: &SqlGenEnv,
        stmt: &Statement,
        measured: f64,
    ) -> Option<(Statement, f64)> {
        if !self.cfg.enabled {
            return None;
        }
        sqlgen_obs::obs_count!("refine.attempts");
        let key = miss_key(env, stmt);
        if let Some(hit) = self.cache.lock().unwrap().get(&key) {
            sqlgen_obs::obs_count!("refine.cache.hits");
            if hit.is_some() {
                sqlgen_obs::obs_count!("refine.successes");
            }
            return hit;
        }
        sqlgen_obs::obs_count!("refine.cache.misses");
        let out = search(env, stmt, measured, self.cfg.max_evals);
        sqlgen_obs::obs_count!("refine.steps", out.evals as u64);
        if out.result.is_some() {
            sqlgen_obs::obs_count!("refine.successes");
        }
        self.cache.lock().unwrap().put(key, out.result.clone());
        out.result
    }

    /// Refines a finished episode in place (post-EOS: the token stream and
    /// the lane determinism contract are untouched — only the terminal
    /// statement is rewritten). Returns whether the episode now satisfies.
    pub fn refine_episode(&self, env: &SqlGenEnv, ep: &mut sqlgen_rl::Episode) -> bool {
        if ep.satisfied {
            return true;
        }
        match self.refine(env, &ep.statement, ep.measured) {
            Some((stmt, m)) => {
                ep.statement = stmt;
                ep.measured = m;
                ep.satisfied = true;
                true
            }
            None => false,
        }
    }
}

/// Cache key: schema fingerprint | constraint | rendered missed SQL.
/// The fingerprint folds the vocabulary's tables and column count so
/// generators over different schemas (or sample configs) never collide.
fn miss_key(env: &SqlGenEnv, stmt: &Statement) -> String {
    let mut fp = 0xcbf29ce484222325u64;
    for t in &env.vocab.tables {
        for b in t.as_bytes() {
            fp = (fp ^ *b as u64).wrapping_mul(0x100000001b3);
        }
    }
    fp ^= (env.vocab.columns.len() as u64) << 1 ^ env.vocab.values.len() as u64;
    format!("{fp:016x}|{}|{}", env.constraint, render(stmt))
}

/// Minimal LRU keyed by miss signature. `None` values memoize exhausted
/// searches so hopeless shapes don't re-burn the eval budget.
struct RefineLru {
    capacity: usize,
    tick: u64,
    map: HashMap<String, (u64, Option<(Statement, f64)>)>,
}

impl RefineLru {
    fn new(capacity: usize) -> Self {
        RefineLru {
            capacity: capacity.max(1),
            tick: 0,
            map: HashMap::new(),
        }
    }

    fn get(&mut self, key: &str) -> Option<Option<(Statement, f64)>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|slot| {
            slot.0 = tick;
            slot.1.clone()
        })
    }

    fn put(&mut self, key: String, value: Option<(Statement, f64)>) {
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            // Evict the least-recently-used entry.
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
            }
        }
        self.map.insert(key, (self.tick, value));
    }
}

// ---------------------------------------------------------------------------
// Move enumeration
// ---------------------------------------------------------------------------

/// All candidate rewrites of `stmt`, in tier order (constants, operators,
/// drops, join order). Deterministic: a pure function of `(vocab, stmt)`.
fn candidates(vocab: &Vocabulary, stmt: &Statement) -> Vec<Statement> {
    let mut out = Vec::new();
    let pred = statement_predicate(stmt);

    // Tier 1+2: constant and operator swaps on each Cmp atom.
    if let Some(p) = pred {
        let mut cmp_paths = Vec::new();
        collect_cmp_paths(p, &mut Vec::new(), &mut cmp_paths);
        for path in &cmp_paths {
            let Some((col, op, value)) = cmp_at(p, path) else {
                continue;
            };
            let Some(ci) = vocab_column(vocab, &col.table, &col.column) else {
                continue;
            };
            for v in constant_candidates(vocab, ci, &value) {
                out.push(with_cmp(stmt, path, op, Rhs::Value(v)));
            }
            for swapped in op_candidates(vocab, ci, op) {
                out.push(with_cmp(stmt, path, swapped, Rhs::Value(value.clone())));
            }
        }
        // Tier 3a: drop one AND/OR arm.
        let mut units = Vec::new();
        collect_unit_paths(p, &mut Vec::new(), &mut units);
        for path in &units {
            if path.is_empty() {
                continue; // whole-WHERE drop handled below
            }
            if let Some(rest) = remove_unit(p, path) {
                out.push(with_predicate(stmt, Some(rest)));
            }
        }
        // Tier 3b: drop the whole WHERE.
        out.push(with_predicate(stmt, None));
    }

    if let Statement::Select(q) = stmt {
        // Tier 3c: drop HAVING.
        if q.having.is_some() {
            let mut dropped = q.clone();
            dropped.having = None;
            out.push(Statement::Select(dropped));
        }
        // Tier 4: adjacent join swaps preserving the FROM invariant.
        for swapped in join_reorders(q) {
            out.push(Statement::Select(swapped));
        }
    }
    out
}

fn statement_predicate(stmt: &Statement) -> Option<&Predicate> {
    match stmt {
        Statement::Select(q) => q.predicate.as_ref(),
        Statement::Update(u) => u.predicate.as_ref(),
        Statement::Delete(d) => d.predicate.as_ref(),
        Statement::Insert(_) => None,
    }
}

fn with_predicate(stmt: &Statement, pred: Option<Predicate>) -> Statement {
    let mut out = stmt.clone();
    match &mut out {
        Statement::Select(q) => q.predicate = pred,
        Statement::Update(u) => u.predicate = pred,
        Statement::Delete(d) => d.predicate = pred,
        Statement::Insert(_) => {}
    }
    out
}

/// Paths (child indices; `Not` descends with 0) to every `Cmp` atom with a
/// literal right-hand side — the atoms tiers 1 and 2 can edit.
fn collect_cmp_paths(p: &Predicate, path: &mut Vec<u8>, out: &mut Vec<Vec<u8>>) {
    match p {
        Predicate::Cmp {
            rhs: Rhs::Value(_), ..
        } => out.push(path.clone()),
        Predicate::Not(inner) => {
            path.push(0);
            collect_cmp_paths(inner, path, out);
            path.pop();
        }
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            path.push(0);
            collect_cmp_paths(a, path, out);
            path.pop();
            path.push(1);
            collect_cmp_paths(b, path, out);
            path.pop();
        }
        _ => {}
    }
}

fn node_at<'p>(p: &'p Predicate, path: &[u8]) -> &'p Predicate {
    let Some((&step, rest)) = path.split_first() else {
        return p;
    };
    match p {
        Predicate::Not(inner) => node_at(inner, rest),
        Predicate::And(a, b) | Predicate::Or(a, b) => node_at(if step == 0 { a } else { b }, rest),
        _ => p,
    }
}

fn cmp_at(p: &Predicate, path: &[u8]) -> Option<(sqlgen_engine::ColRef, CmpOp, Value)> {
    match node_at(p, path) {
        Predicate::Cmp {
            col,
            op,
            rhs: Rhs::Value(v),
        } => Some((col.clone(), *op, v.clone())),
        _ => None,
    }
}

/// Clones `stmt` with the `Cmp` atom at `path` rewritten to `(op, rhs)`.
fn with_cmp(stmt: &Statement, path: &[u8], op: CmpOp, rhs: Rhs) -> Statement {
    fn rewrite(p: &mut Predicate, path: &[u8], op: CmpOp, rhs: Rhs) {
        let Some((&step, rest)) = path.split_first() else {
            if let Predicate::Cmp { op: o, rhs: r, .. } = p {
                *o = op;
                *r = rhs;
            }
            return;
        };
        match p {
            Predicate::Not(inner) => rewrite(inner, rest, op, rhs),
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                rewrite(if step == 0 { a } else { b }, rest, op, rhs)
            }
            _ => {}
        }
    }
    let mut out = stmt.clone();
    let pred = match &mut out {
        Statement::Select(q) => q.predicate.as_mut(),
        Statement::Update(u) => u.predicate.as_mut(),
        Statement::Delete(d) => d.predicate.as_mut(),
        Statement::Insert(_) => None,
    };
    if let Some(p) = pred {
        rewrite(p, path, op, rhs);
    }
    out
}

/// Paths to droppable units: maximal subtrees that are not `And`/`Or`
/// (removing one promotes its sibling, keeping the tree well-formed).
fn collect_unit_paths(p: &Predicate, path: &mut Vec<u8>, out: &mut Vec<Vec<u8>>) {
    match p {
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            path.push(0);
            collect_unit_paths(a, path, out);
            path.pop();
            path.push(1);
            collect_unit_paths(b, path, out);
            path.pop();
        }
        _ => out.push(path.clone()),
    }
}

/// Clones the tree with the unit at `path` removed (sibling promoted).
/// `path` must be non-empty and pass only through `And`/`Or` nodes.
fn remove_unit(p: &Predicate, path: &[u8]) -> Option<Predicate> {
    let (&step, rest) = path.split_first()?;
    match p {
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            let (child, sibling) = if step == 0 { (a, b) } else { (b, a) };
            if rest.is_empty() {
                return Some((**sibling).clone());
            }
            let rebuilt = remove_unit(child, rest)?;
            let (l, r) = if step == 0 {
                (rebuilt, (**sibling).clone())
            } else {
                ((**sibling).clone(), rebuilt)
            };
            Some(match p {
                Predicate::And(..) => Predicate::And(Box::new(l), Box::new(r)),
                _ => Predicate::Or(Box::new(l), Box::new(r)),
            })
        }
        _ => None,
    }
}

fn vocab_column(vocab: &Vocabulary, table: &str, column: &str) -> Option<u32> {
    vocab
        .columns
        .iter()
        .position(|c| c.name == column && vocab.tables[c.table as usize] == table)
        .map(|i| i as u32)
}

/// Replacement constants for a `Cmp` atom on column `ci`: up to
/// [`CONSTANTS_PER_ATOM`] values evenly spaced over the column's sorted
/// vocabulary sample (so candidates span the selectivity range), minus the
/// current literal. Every candidate is a vocabulary value, hence a token
/// the FSM itself could have emitted.
fn constant_candidates(vocab: &Vocabulary, ci: u32, current: &Value) -> Vec<Value> {
    let mut vals: Vec<Value> = vocab
        .value_tokens_of(ci)
        .iter()
        .filter_map(|&tid| match vocab.token(tid as usize) {
            Token::Value(v) => Some(vocab.values[*v as usize].1.clone()),
            _ => None,
        })
        .collect();
    vals.sort_by(|a, b| a.total_cmp(b));
    vals.dedup_by(|a, b| a.total_cmp(b).is_eq());
    let cur_sql = current.to_sql();
    let picks: Vec<Value> = if vals.len() <= CONSTANTS_PER_ATOM {
        vals
    } else {
        (0..CONSTANTS_PER_ATOM)
            .map(|i| vals[i * (vals.len() - 1) / (CONSTANTS_PER_ATOM - 1)].clone())
            .collect()
    };
    picks
        .into_iter()
        .filter(|v| v.to_sql() != cur_sql)
        .collect()
}

/// Alternative operators for the atom, restricted to the FSM's operator
/// set for the column type (paper: strings get `{=, >, <}`).
fn op_candidates(vocab: &Vocabulary, ci: u32, current: CmpOp) -> Vec<CmpOp> {
    let allowed: &[CmpOp] = if vocab.columns[ci as usize].dtype.is_numeric() {
        &CmpOp::ALL
    } else {
        &[CmpOp::Eq, CmpOp::Gt, CmpOp::Lt]
    };
    allowed.iter().copied().filter(|&o| o != current).collect()
}

/// Adjacent join transpositions that keep the FROM invariant: every join's
/// left side must reference the base table or an earlier join's table.
fn join_reorders(q: &SelectQuery) -> Vec<SelectQuery> {
    let joins = &q.from.joins;
    let mut out = Vec::new();
    for i in 0..joins.len().saturating_sub(1) {
        let mut cand = q.clone();
        cand.from.joins.swap(i, i + 1);
        if from_order_valid(&cand.from) {
            out.push(cand);
        }
    }
    out
}

fn from_order_valid(from: &sqlgen_engine::FromClause) -> bool {
    from.joins.iter().enumerate().all(|(i, j)| {
        j.left.table == from.base || from.joins[..i].iter().any(|e| e.table == j.left.table)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlgen_engine::Estimator;
    use sqlgen_rl::Constraint;
    use sqlgen_storage::gen::tpch_database;
    use sqlgen_storage::sample::SampleConfig;

    fn setup() -> (sqlgen_storage::Database, Vocabulary) {
        let db = tpch_database(0.2, 21);
        let vocab = Vocabulary::build(
            &db,
            &SampleConfig {
                k: 20,
                ..Default::default()
            },
        );
        (db, vocab)
    }

    /// A simple range scan the estimator is monotone in: refinement must
    /// move it inside a constraint the original misses.
    #[test]
    fn search_fixes_a_missed_range_scan() {
        let (db, vocab) = setup();
        let est = Estimator::build(&db);
        // Start from a query the FSM could emit: full scan of lineitem,
        // then constrain cardinality far below the table size.
        let stmt = sqlgen_engine::parse("SELECT lineitem.l_orderkey FROM lineitem").unwrap();
        let full = est.cardinality(&stmt);
        assert!(full > 100.0, "fixture table too small: {full}");
        let constraint = Constraint::cardinality_range(1.0, full / 2.0);
        let env = SqlGenEnv::new(&vocab, &est, constraint);
        let measured = env.measure(&stmt);
        assert!(!constraint.satisfied(measured));
        let out = search(&env, &stmt, measured, DEFAULT_REFINE_BUDGET);
        // A full scan has no predicate to tighten, so tiers 1–3 offer no
        // moves; the search must report failure honestly, not loop.
        assert!(out.result.is_none());

        // Now a predicated query whose constant is simply too loose.
        let col = (0..vocab.columns.len() as u32)
            .find(|&ci| {
                let c = &vocab.columns[ci as usize];
                c.dtype.is_numeric()
                    && vocab.tables[c.table as usize] == "lineitem"
                    && !vocab.value_tokens_of(ci).is_empty()
            })
            .expect("lineitem has a sampled numeric column");
        let cname = &vocab.columns[col as usize].name;
        let vals = constant_candidates(&vocab, col, &Value::Null);
        let lo = &vals[0];
        let sql = format!(
            "SELECT lineitem.l_orderkey FROM lineitem WHERE lineitem.{cname} > {}",
            lo.to_sql()
        );
        let stmt = sqlgen_engine::parse(&sql).unwrap();
        let measured = env.measure(&stmt);
        let out = search(&env, &stmt, measured, DEFAULT_REFINE_BUDGET);
        if let Some((fixed, m)) = &out.result {
            assert!(constraint.satisfied(*m));
            assert_eq!(env.measure(fixed).to_bits(), m.to_bits());
            // Accepted rewards strictly increase.
            let mut prev = constraint.reward(measured);
            for step in &out.steps {
                assert!(step.reward > prev, "non-monotone step");
                prev = step.reward;
            }
        }
    }

    /// The search is deterministic: same inputs, same outcome, bit-exact.
    #[test]
    fn search_is_deterministic() {
        let (db, vocab) = setup();
        let est = Estimator::build(&db);
        let constraint = Constraint::cardinality_range(10.0, 100.0);
        let env = SqlGenEnv::new(&vocab, &est, constraint);
        let stmt = sqlgen_engine::parse("SELECT lineitem.l_orderkey FROM lineitem").unwrap();
        let m = env.measure(&stmt);
        let a = search(&env, &stmt, m, 64);
        let b = search(&env, &stmt, m, 64);
        assert_eq!(a.evals, b.evals);
        assert_eq!(
            a.steps.iter().map(|s| &s.sql).collect::<Vec<_>>(),
            b.steps.iter().map(|s| &s.sql).collect::<Vec<_>>()
        );
        match (&a.result, &b.result) {
            (Some((sa, ma)), Some((sb, mb))) => {
                assert_eq!(render(sa), render(sb));
                assert_eq!(ma.to_bits(), mb.to_bits());
            }
            (None, None) => {}
            _ => panic!("divergent results"),
        }
    }

    /// The LRU memoizes both successes and exhausted searches, and evicts
    /// least-recently-used entries at capacity.
    #[test]
    fn lru_caches_and_evicts() {
        let mut lru = RefineLru::new(2);
        lru.put("a".into(), None);
        lru.put("b".into(), None);
        assert!(lru.get("a").is_some()); // refreshes a
        lru.put("c".into(), None); // evicts b
        assert!(lru.get("b").is_none());
        assert!(lru.get("a").is_some());
        assert!(lru.get("c").is_some());
    }

    /// Unit-drop rewrites keep the predicate tree well formed and the
    /// query parseable/renderable at a fixpoint.
    #[test]
    fn candidate_rewrites_parse_and_rerender() {
        let (db, vocab) = setup();
        let sql = "SELECT lineitem.l_orderkey FROM lineitem WHERE \
                   lineitem.l_orderkey > 5 AND (lineitem.l_partkey < 100 OR \
                   NOT lineitem.l_suppkey = 3)";
        let stmt = sqlgen_engine::parse(sql).unwrap();
        let cands = candidates(&vocab, &stmt);
        assert!(!cands.is_empty());
        for cand in &cands {
            let rendered = render(cand);
            let reparsed = sqlgen_engine::parse(&rendered)
                .unwrap_or_else(|e| panic!("candidate failed to parse: {rendered}: {e:?}"));
            assert_eq!(render(&reparsed), rendered);
            sqlgen_engine::validate(&db, cand)
                .unwrap_or_else(|e| panic!("candidate invalid: {rendered}: {e:?}"));
        }
    }

    /// Join transpositions must preserve the "left references an earlier
    /// table" FROM invariant.
    #[test]
    fn join_reorders_preserve_from_invariant() {
        let (db, _vocab) = setup();
        let sql = "SELECT orders.o_orderkey FROM orders \
                   JOIN customer ON orders.o_custkey = customer.c_custkey \
                   JOIN lineitem ON orders.o_orderkey = lineitem.l_orderkey";
        let stmt = sqlgen_engine::parse(sql).unwrap();
        let Statement::Select(q) = &stmt else {
            unreachable!()
        };
        for cand in join_reorders(q) {
            assert!(from_order_valid(&cand.from));
            sqlgen_engine::validate(&db, &Statement::Select(cand)).unwrap();
        }
    }
}
