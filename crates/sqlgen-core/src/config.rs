//! End-to-end generator configuration.

use crate::refine::RefineConfig;
use sqlgen_fsm::FsmConfig;
use sqlgen_rl::{ExecBudget, NetConfig, RewardSource, TrainConfig};
use sqlgen_storage::sample::SampleConfig;

/// Which RL algorithm drives generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Plain policy gradient (the paper's Figure 8 ablation).
    Reinforce,
    /// Actor-critic with TD advantages — the paper's shipped algorithm.
    ActorCritic,
}

/// Full configuration for [`crate::LearnedSqlGen`].
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Value sampling for the action space (paper default k = 100).
    pub sample: SampleConfig,
    /// FSM limits / statement kinds.
    pub fsm: FsmConfig,
    /// Network + optimizer hyper-parameters (§7.1 defaults).
    pub train: TrainConfig,
    pub algorithm: Algorithm,
    /// Default number of training episodes used by `train_default`.
    pub default_train_episodes: usize,
    /// Worker threads for episode collection. `1` (the default) keeps the
    /// exact single-threaded rollout sequence — bit-identical results for a
    /// fixed seed. Values > 1 fan rollouts across scoped threads; each
    /// `(seed, threads)` pair is reproducible, but different `threads`
    /// values are different (deterministic) runs.
    pub threads: usize,
    /// Lockstep GEMM lanes for batched inference. `1` (the default) keeps
    /// the exact single-stream rollout sequence — bit-identical results
    /// for a fixed seed. Values > 1 advance that many rollouts per step
    /// through batched kernels with continuous lane refill; each
    /// `(seed, batch_size)` pair is reproducible. When both are set,
    /// `batch_size > 1` takes precedence over `threads` for inference.
    /// `batch_size > 1` also selects lane-batched training (batched BPTT
    /// with one accumulated gradient step per round of `batch_size`
    /// episodes; see `sqlgen_rl::train_batch`).
    pub batch_size: usize,
    /// Run inference on an int8 per-output-channel quantized snapshot of
    /// the actor (see `sqlgen_nn::quant`). `false` (the default) keeps the
    /// bit-exact f32 path. Quantization is inference-only: training always
    /// updates the f32 weights, and the snapshot is refreshed after every
    /// train/load. Sampled token streams differ from the f32 path only
    /// within the quantization error bound of the logits.
    pub quantize: bool,
    /// Constraint-miss refinement (DESIGN.md §12): on a missed constraint,
    /// run bounded local search over the missed query before falling back
    /// to resampling. On by default; disable (`with_refine(false)` / the
    /// CLI `--no-refine` flag) to restore the legacy generate-and-hope
    /// path bit-for-bit.
    pub refine: RefineConfig,
    /// Cardinality reward signal (DESIGN.md §14): histogram estimates
    /// (the default, the paper's choice) or real execution against an
    /// attached store within a per-query budget. Execution requires
    /// [`crate::LearnedSqlGen::with_exec_db`] /
    /// [`crate::LearnedSqlGen::from_exec_db`].
    pub reward_source: RewardSource,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            sample: SampleConfig::default(),
            fsm: FsmConfig::default(),
            train: TrainConfig::default(),
            algorithm: Algorithm::ActorCritic,
            default_train_episodes: 600,
            threads: 1,
            batch_size: 1,
            quantize: false,
            refine: RefineConfig::default(),
            reward_source: RewardSource::default(),
        }
    }
}

impl GenConfig {
    /// A fast configuration for tests and examples: smaller networks,
    /// smaller value samples.
    pub fn fast() -> Self {
        GenConfig {
            sample: SampleConfig {
                k: 20,
                ..Default::default()
            },
            train: TrainConfig {
                net: NetConfig {
                    embed_dim: 16,
                    hidden: 16,
                    layers: 1,
                    dropout: 0.0,
                },
                ..Default::default()
            },
            default_train_episodes: 200,
            ..Default::default()
        }
    }

    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    pub fn with_fsm(mut self, fsm: FsmConfig) -> Self {
        self.fsm = fsm;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.train.seed = seed;
        self.sample.seed = seed ^ 0x5a5a;
        self
    }

    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    pub fn with_quantize(mut self, quantize: bool) -> Self {
        self.quantize = quantize;
        self
    }

    /// Enables or disables constraint-miss refinement (default on).
    pub fn with_refine(mut self, enabled: bool) -> Self {
        self.refine.enabled = enabled;
        self
    }

    /// Replaces the full refinement configuration (budgets, cache size,
    /// resample rounds).
    pub fn with_refine_config(mut self, refine: RefineConfig) -> Self {
        self.refine = refine;
        self
    }

    /// Selects the cardinality reward signal (estimates by default).
    pub fn with_reward_source(mut self, source: RewardSource) -> Self {
        self.reward_source = source;
        self
    }

    /// Shorthand for execution rewards with the given per-query budget.
    pub fn with_execute_rewards(mut self, budget: ExecBudget) -> Self {
        self.reward_source = RewardSource::Execute { budget };
        self
    }

    /// Overrides the per-column value-sample size `k` (paper default 100).
    /// Changing `k` changes the action-space size, so checkpoints are only
    /// portable between generators built with the same sample config.
    pub fn with_sample_k(mut self, k: usize) -> Self {
        self.sample.k = k;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = GenConfig::default();
        assert_eq!(c.sample.k, 100);
        assert_eq!(c.train.net.hidden, 30);
        assert_eq!(c.train.net.layers, 2);
        assert!((c.train.net.dropout - 0.3).abs() < 1e-6);
        assert!((c.train.lr_actor - 0.001).abs() < 1e-9);
        assert!((c.train.lr_critic - 0.003).abs() < 1e-9);
        assert!((c.train.lambda - 0.01).abs() < 1e-9);
        assert_eq!(c.algorithm, Algorithm::ActorCritic);
    }

    #[test]
    fn builders_compose() {
        let c = GenConfig::fast()
            .with_algorithm(Algorithm::Reinforce)
            .with_seed(99)
            .with_threads(4)
            .with_batch_size(8)
            .with_quantize(true);
        assert_eq!(c.algorithm, Algorithm::Reinforce);
        assert_eq!(c.train.seed, 99);
        assert_eq!(c.sample.seed, 99 ^ 0x5a5a);
        assert_eq!(c.threads, 4);
        assert_eq!(c.batch_size, 8);
        assert!(c.quantize);
        assert!(!GenConfig::default().quantize);
        // threads/batch_size must never be 0, and default to serial paths.
        assert_eq!(GenConfig::default().threads, 1);
        assert_eq!(GenConfig::default().batch_size, 1);
        assert_eq!(GenConfig::fast().with_threads(0).threads, 1);
        assert_eq!(GenConfig::fast().with_batch_size(0).batch_size, 1);
    }

    #[test]
    fn refine_defaults_on_with_escape_hatch() {
        assert!(GenConfig::default().refine.enabled);
        assert!(GenConfig::fast().refine.enabled);
        assert!(!GenConfig::fast().with_refine(false).refine.enabled);
        let custom = GenConfig::fast().with_refine_config(RefineConfig {
            enabled: true,
            max_evals: 7,
            cache_capacity: 3,
            resample_rounds: 2,
        });
        assert_eq!(custom.refine.max_evals, 7);
        assert_eq!(custom.refine.resample_rounds, 2);
    }
}
