//! Pre-training for different constraints (paper §6), as a user-facing API.
//!
//! `MetaSqlGen` owns a shared meta-critic pre-trained over a partition of a
//! cardinality/cost domain; `specialize` then adapts a fresh actor to any
//! unseen constraint in the domain, reusing the accumulated critic
//! knowledge ("the meta-critic keeps learning to criticize actors from new
//! tasks, it accumulates transferable knowledge and never gets
//! 'out of date'").

use crate::config::GenConfig;
use crate::generator::GeneratedQuery;
use sqlgen_engine::{render, Estimator};
use sqlgen_fsm::Vocabulary;
use sqlgen_rl::{Constraint, MetaCriticTrainer, Metric, SqlGenEnv, Target};
use sqlgen_storage::Database;

/// Domain-level pre-trainer + per-constraint specializer.
pub struct MetaSqlGen {
    vocab: Vocabulary,
    estimator: Estimator,
    config: GenConfig,
    metric: Metric,
    domain: (f64, f64),
    trainer: MetaCriticTrainer,
    /// Pre-training constraints (one per task slot, in order).
    pub pretrain_tasks: Vec<Constraint>,
}

/// A constraint-specialized handle into the shared trainer.
pub struct Specialized<'m> {
    meta: &'m mut MetaSqlGen,
    task: usize,
    pub constraint: Constraint,
}

impl MetaSqlGen {
    /// Partitions `domain` into `tasks` uniform sub-ranges of `metric` and
    /// builds one actor per task plus the shared meta-critic.
    pub fn new(
        db: &Database,
        metric: Metric,
        domain: (f64, f64),
        tasks: usize,
        config: GenConfig,
    ) -> Self {
        assert!(tasks >= 1 && domain.0 < domain.1, "bad domain partition");
        let vocab = Vocabulary::build(db, &config.sample);
        let estimator = Estimator::build(db);
        let width = (domain.1 - domain.0) / tasks as f64;
        let pretrain_tasks: Vec<Constraint> = (0..tasks)
            .map(|i| {
                let lo = domain.0 + i as f64 * width;
                match metric {
                    Metric::Cardinality => Constraint::cardinality_range(lo, lo + width),
                    Metric::Cost => Constraint::cost_range(lo, lo + width),
                    Metric::Latency => Constraint::latency_range_us(lo, lo + width),
                }
            })
            .collect();
        let trainer =
            MetaCriticTrainer::new(vocab.size(), pretrain_tasks.clone(), config.train.clone());
        MetaSqlGen {
            vocab,
            estimator,
            config,
            metric,
            domain,
            trainer,
            pretrain_tasks,
        }
    }

    pub fn domain(&self) -> (f64, f64) {
        self.domain
    }

    /// Pre-trains all tasks round-robin for `rounds` full passes.
    pub fn pretrain(&mut self, rounds: usize) {
        let tasks = self.pretrain_tasks.clone();
        for _ in 0..rounds {
            for (i, &c) in tasks.iter().enumerate() {
                // Split borrows: env reads vocab/estimator, the trainer is
                // updated mutably.
                let env = build_env(&self.vocab, &self.estimator, &self.config, c);
                self.trainer.train_task(i, &env);
            }
        }
    }

    /// Adds a new task for `constraint` (must use this generator's metric)
    /// and returns a handle that trains/generates against it.
    pub fn specialize(&mut self, constraint: Constraint) -> Specialized<'_> {
        assert_eq!(
            constraint.metric, self.metric,
            "constraint metric must match the pre-training metric"
        );
        if let Target::Range(lo, hi) = constraint.target {
            debug_assert!(
                lo >= self.domain.0 * 0.5 && hi <= self.domain.1 * 2.0,
                "constraint far outside the pre-training domain — transfer \
                 will not help"
            );
        }
        let task = self.trainer.add_task(self.vocab.size(), constraint);
        Specialized {
            meta: self,
            task,
            constraint,
        }
    }
}

/// Builds the environment from split borrows so the trainer can stay
/// mutably borrowed by the caller.
fn build_env<'a>(
    vocab: &'a Vocabulary,
    estimator: &'a Estimator,
    config: &GenConfig,
    constraint: Constraint,
) -> SqlGenEnv<'a> {
    SqlGenEnv::new(vocab, estimator, constraint).with_fsm_config(config.fsm.clone())
}

impl Specialized<'_> {
    /// Adapts the task's actor for `episodes` episodes (warm meta-critic).
    pub fn train(&mut self, episodes: usize) -> f32 {
        let meta = &mut *self.meta;
        let env = build_env(&meta.vocab, &meta.estimator, &meta.config, self.constraint);
        let mut total = 0.0;
        for _ in 0..episodes {
            let ep = meta.trainer.train_task(self.task, &env);
            total += ep.total_reward() / ep.len().max(1) as f32;
        }
        total / episodes.max(1) as f32
    }

    /// Generates `n` queries with the adapted actor.
    pub fn generate(&mut self, n: usize) -> Vec<GeneratedQuery> {
        let meta = &mut *self.meta;
        let env = build_env(&meta.vocab, &meta.estimator, &meta.config, self.constraint);
        (0..n)
            .map(|_| {
                let ep = meta.trainer.generate(self.task, &env);
                GeneratedQuery {
                    sql: render(&ep.statement),
                    statement: ep.statement.clone(),
                    measured: ep.measured,
                    satisfied: ep.satisfied,
                }
            })
            .collect()
    }

    /// Satisfied fraction over `n` generations.
    pub fn accuracy(&mut self, n: usize) -> f64 {
        let qs = self.generate(n);
        qs.iter().filter(|q| q.satisfied).count() as f64 / n.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GenConfig;
    use sqlgen_storage::gen::tpch_database;

    fn meta() -> MetaSqlGen {
        let db = tpch_database(0.2, 88);
        MetaSqlGen::new(
            &db,
            Metric::Cardinality,
            (10.0, 2_010.0),
            4,
            GenConfig::fast().with_seed(17),
        )
    }

    #[test]
    fn partitions_domain_uniformly() {
        let m = meta();
        assert_eq!(m.pretrain_tasks.len(), 4);
        match (m.pretrain_tasks[0].target, m.pretrain_tasks[3].target) {
            (Target::Range(lo0, hi0), Target::Range(lo3, hi3)) => {
                assert!((lo0 - 10.0).abs() < 1e-9);
                assert!((hi0 - 510.0).abs() < 1e-9);
                assert!((lo3 - 1_510.0).abs() < 1e-9);
                assert!((hi3 - 2_010.0).abs() < 1e-9);
            }
            other => panic!("unexpected targets {other:?}"),
        }
    }

    #[test]
    fn pretrain_then_specialize_generates_valid_queries() {
        let db = tpch_database(0.2, 88);
        let mut m = meta();
        m.pretrain(30);
        let mut s = m.specialize(Constraint::cardinality_range(400.0, 1_200.0));
        s.train(60);
        let qs = s.generate(10);
        assert_eq!(qs.len(), 10);
        for q in &qs {
            sqlgen_engine::validate(&db, &q.statement).unwrap();
        }
    }

    #[test]
    fn specialization_improves_over_no_adaptation() {
        // 40-sample accuracies carry ~0.07 binomial noise, so a single-seed
        // strict comparison is a coin flip; compare means over a few seeds
        // with a small tolerance to still catch adaptation actively hurting.
        let seeds: [u64; 3] = [17, 42, 99];
        let mut base_mean = 0.0;
        let mut trained_mean = 0.0;
        for &seed in &seeds {
            let db = tpch_database(0.2, 88);
            let mut m = MetaSqlGen::new(
                &db,
                Metric::Cardinality,
                (10.0, 2_010.0),
                4,
                GenConfig::fast().with_seed(seed),
            );
            m.pretrain(40);
            let constraint = Constraint::cardinality_range(100.0, 900.0);
            // Accuracy before any adaptation (fresh random actor).
            base_mean += {
                let mut s = m.specialize(constraint);
                s.accuracy(40)
            } / seeds.len() as f64;
            trained_mean += {
                let mut s = m.specialize(constraint);
                s.train(250);
                s.accuracy(40)
            } / seeds.len() as f64;
        }
        assert!(
            trained_mean >= base_mean - 0.05,
            "adaptation regressed: {base_mean:.2} -> {trained_mean:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "metric must match")]
    fn rejects_cross_metric_specialization() {
        let mut m = meta();
        m.specialize(Constraint::cost_range(1.0, 2.0));
    }
}
