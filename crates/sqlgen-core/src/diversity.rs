//! Diversity and complexity profiling of generated workloads.
//!
//! The paper's §7.5 case study reports the distribution of generated
//! queries over joins, nesting, aggregation, predicate counts, statement
//! kinds and SQL lengths (Figure 10). This module computes those profiles
//! as a reusable API — plus a distinctness ratio and a structure entropy
//! that quantify the paper's "the user definitely wants diverse queries
//! rather than almost the same ones" (§3.1 challenge 3).

use crate::generator::GeneratedQuery;
use sqlgen_engine::{Statement, StatementKind};
use std::collections::{BTreeMap, HashSet};

/// Aggregate profile of a generated workload.
#[derive(Debug, Clone, PartialEq)]
pub struct DiversityReport {
    pub total: usize,
    /// Fraction of distinct SQL strings.
    pub distinct_ratio: f64,
    /// Shannon entropy (bits) over structural signatures.
    pub structure_entropy: f64,
    /// Shannon entropy (bits) over *coarse* shapes (tables + clause
    /// counts, ignoring which columns appear). Unlike `structure_entropy`,
    /// this does not saturate at `log2(N)` for modest workloads.
    pub shape_entropy: f64,
    /// Histogram over the number of tables in FROM (SELECTs only).
    pub join_tables: BTreeMap<usize, usize>,
    /// SELECTs containing a subquery.
    pub nested: usize,
    /// SELECTs containing an aggregate or HAVING.
    pub aggregated: usize,
    /// Histogram over predicate atom counts.
    pub predicates: BTreeMap<usize, usize>,
    /// Histogram over statement kinds.
    pub kinds: BTreeMap<StatementKind, usize>,
    /// Histogram over whitespace-token SQL lengths, bucketed by 5.
    pub lengths: BTreeMap<usize, usize>,
    /// SELECT statements in the workload.
    pub selects: usize,
}

impl DiversityReport {
    pub fn nested_share(&self) -> f64 {
        self.nested as f64 / self.selects.max(1) as f64
    }

    pub fn aggregated_share(&self) -> f64 {
        self.aggregated as f64 / self.selects.max(1) as f64
    }

    pub fn multi_join_share(&self) -> f64 {
        let multi: usize = self
            .join_tables
            .iter()
            .filter(|(tables, _)| **tables > 1)
            .map(|(_, n)| n)
            .sum();
        multi as f64 / self.selects.max(1) as f64
    }
}

/// A coarse shape: the FROM tables and clause counts, ignoring which
/// columns/aggregates appear. Useful for entropy at modest workload sizes.
pub fn coarse_shape(stmt: &Statement) -> String {
    match stmt {
        Statement::Select(q) => format!(
            "S[{}]:i{}:p{}:n{}:g{}:h{}:a{}",
            q.from.tables().join(","),
            q.select.len(),
            q.predicate.as_ref().map_or(0, |p| p.atom_count()),
            u8::from(q.has_subquery()),
            q.group_by.len(),
            u8::from(q.having.is_some()),
            u8::from(q.has_aggregate()),
        ),
        Statement::Insert(i) => format!("I[{}]", i.table),
        Statement::Update(u) => format!(
            "U[{}]:{}:p{}",
            u.table,
            u.sets.len(),
            u.predicate.as_ref().map_or(0, |p| p.atom_count())
        ),
        Statement::Delete(d) => format!(
            "D[{}]:p{}",
            d.table,
            d.predicate.as_ref().map_or(0, |p| p.atom_count())
        ),
    }
}

/// A structural signature: everything about a statement except its
/// literals. Two queries with the same signature differ only in predicate
/// constants.
pub fn structure_signature(stmt: &Statement) -> String {
    match stmt {
        Statement::Select(q) => {
            let tables = q.from.tables().join(",");
            let items: Vec<String> = q
                .select
                .iter()
                .map(|i| match i {
                    sqlgen_engine::SelectItem::Column(c) => c.to_string(),
                    sqlgen_engine::SelectItem::Agg(f, c) => format!("{f}({c})"),
                })
                .collect();
            let preds = q.predicate.as_ref().map_or(0, |p| p.atom_count());
            let nested = q.has_subquery();
            format!(
                "S[{tables}]:{}:p{preds}:n{}:g{}:h{}",
                items.join(","),
                u8::from(nested),
                q.group_by.len(),
                u8::from(q.having.is_some())
            )
        }
        Statement::Insert(i) => format!("I[{}]", i.table),
        Statement::Update(u) => format!(
            "U[{}]:{}:p{}",
            u.table,
            u.sets.len(),
            u.predicate.as_ref().map_or(0, |p| p.atom_count())
        ),
        Statement::Delete(d) => format!(
            "D[{}]:p{}",
            d.table,
            d.predicate.as_ref().map_or(0, |p| p.atom_count())
        ),
    }
}

/// Profiles a workload.
pub fn profile(queries: &[GeneratedQuery]) -> DiversityReport {
    let mut distinct: HashSet<&str> = HashSet::new();
    let mut signatures: BTreeMap<String, usize> = BTreeMap::new();
    let mut shapes: BTreeMap<String, usize> = BTreeMap::new();
    let mut join_tables = BTreeMap::new();
    let mut predicates = BTreeMap::new();
    let mut kinds = BTreeMap::new();
    let mut lengths = BTreeMap::new();
    let (mut nested, mut aggregated, mut selects) = (0, 0, 0);

    for q in queries {
        distinct.insert(q.sql.as_str());
        *signatures
            .entry(structure_signature(&q.statement))
            .or_default() += 1;
        *shapes.entry(coarse_shape(&q.statement)).or_default() += 1;
        *kinds.entry(q.statement.kind()).or_default() += 1;
        let tokens = q.sql.split_whitespace().count();
        *lengths.entry((tokens / 5) * 5).or_default() += 1;
        let atoms = match &q.statement {
            Statement::Select(s) => {
                selects += 1;
                *join_tables.entry(s.join_count() + 1).or_default() += 1;
                nested += usize::from(s.has_subquery());
                aggregated += usize::from(s.has_aggregate());
                s.predicate.as_ref().map_or(0, |p| p.atom_count())
            }
            Statement::Update(u) => u.predicate.as_ref().map_or(0, |p| p.atom_count()),
            Statement::Delete(d) => d.predicate.as_ref().map_or(0, |p| p.atom_count()),
            Statement::Insert(_) => 0,
        };
        *predicates.entry(atoms).or_default() += 1;
    }

    let total = queries.len();
    let shannon = |hist: &BTreeMap<String, usize>| -> f64 {
        let n = total.max(1) as f64;
        hist.values()
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.log2()
            })
            .sum()
    };
    let entropy = shannon(&signatures);
    let shape_entropy = shannon(&shapes);

    DiversityReport {
        total,
        distinct_ratio: distinct.len() as f64 / total.max(1) as f64,
        structure_entropy: entropy,
        shape_entropy,
        join_tables,
        nested,
        aggregated,
        predicates,
        kinds,
        lengths,
        selects,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GeneratedQuery;
    use sqlgen_engine::{parse, render};

    fn gq(sql: &str) -> GeneratedQuery {
        let statement = parse(sql).unwrap();
        GeneratedQuery {
            sql: render(&statement),
            statement,
            measured: 0.0,
            satisfied: true,
        }
    }

    #[test]
    fn profile_counts_features() {
        let qs = vec![
            gq("SELECT t.a FROM t"),
            gq("SELECT t.a FROM t JOIN u ON t.id = u.tid WHERE t.a < 1 AND u.b = 2"),
            gq("SELECT COUNT(t.a) FROM t GROUP BY t.g"),
            gq("SELECT t.a FROM t WHERE t.x IN (SELECT u.x FROM u)"),
            gq("DELETE FROM t WHERE t.a = 1"),
            gq("INSERT INTO t VALUES (1)"),
        ];
        let r = profile(&qs);
        assert_eq!(r.total, 6);
        assert_eq!(r.selects, 4);
        assert_eq!(r.nested, 1);
        assert_eq!(r.aggregated, 1);
        assert_eq!(r.join_tables[&2], 1);
        assert_eq!(r.predicates[&2], 1); // the AND query
        assert_eq!(r.kinds[&StatementKind::Delete], 1);
        assert!((r.distinct_ratio - 1.0).abs() < 1e-12);
        assert!(r.structure_entropy > 2.0, "6 distinct structures");
        assert!(r.shape_entropy > 2.0 && r.shape_entropy <= r.structure_entropy + 1e-9);
    }

    #[test]
    fn coarse_shape_ignores_column_choice() {
        let a = parse("SELECT t.a FROM t WHERE t.a < 1").unwrap();
        let b = parse("SELECT t.b FROM t WHERE t.c < 9").unwrap();
        assert_eq!(coarse_shape(&a), coarse_shape(&b));
        assert_ne!(structure_signature(&a), structure_signature(&b));
    }

    #[test]
    fn duplicates_reduce_distinctness_and_entropy() {
        let unique = vec![gq("SELECT t.a FROM t"), gq("SELECT u.b FROM u")];
        let dupes = vec![gq("SELECT t.a FROM t"), gq("SELECT t.a FROM t")];
        let ru = profile(&unique);
        let rd = profile(&dupes);
        assert!(ru.distinct_ratio > rd.distinct_ratio);
        assert!(ru.structure_entropy > rd.structure_entropy);
        assert_eq!(rd.structure_entropy, 0.0);
    }

    #[test]
    fn signature_ignores_literals_only() {
        let a = parse("SELECT t.a FROM t WHERE t.a < 1").unwrap();
        let b = parse("SELECT t.a FROM t WHERE t.a < 999").unwrap();
        let c = parse("SELECT t.a FROM t WHERE t.a < 1 AND t.b = 2").unwrap();
        assert_eq!(structure_signature(&a), structure_signature(&b));
        assert_ne!(structure_signature(&a), structure_signature(&c));
    }

    #[test]
    fn shares_are_fractions_of_selects() {
        let qs = vec![
            gq("SELECT t.a FROM t WHERE t.x IN (SELECT u.x FROM u)"),
            gq("SELECT t.a FROM t"),
            gq("DELETE FROM t"),
        ];
        let r = profile(&qs);
        assert!((r.nested_share() - 0.5).abs() < 1e-12);
        assert_eq!(r.multi_join_share(), 0.0);
    }

    #[test]
    fn empty_workload() {
        let r = profile(&[]);
        assert_eq!(r.total, 0);
        assert_eq!(r.distinct_ratio, 0.0);
        assert_eq!(r.structure_entropy, 0.0);
    }
}
