//! Evaluation metrics (paper §7.1): generation accuracy and generation time.

use std::time::{Duration, Instant};

/// Result of a timed generation run.
#[derive(Debug, Clone)]
pub struct GenerationReport {
    /// Method label (for harness tables).
    pub method: String,
    /// Satisfied queries found.
    pub satisfied: usize,
    /// Total queries generated (attempts).
    pub attempts: usize,
    /// Wall-clock time, including training when applicable.
    pub elapsed: Duration,
}

impl GenerationReport {
    /// Generation accuracy `acc = n_s / n` (§7.1).
    pub fn accuracy(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.satisfied as f64 / self.attempts as f64
        }
    }

    /// Satisfied queries per second.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.satisfied as f64 / secs
        }
    }
}

/// Times a closure and packages the result.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_and_throughput() {
        let r = GenerationReport {
            method: "x".into(),
            satisfied: 30,
            attempts: 100,
            elapsed: Duration::from_secs(10),
        };
        assert!((r.accuracy() - 0.3).abs() < 1e-12);
        assert!((r.throughput() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_division_guards() {
        let r = GenerationReport {
            method: "x".into(),
            satisfied: 0,
            attempts: 0,
            elapsed: Duration::ZERO,
        };
        assert_eq!(r.accuracy(), 0.0);
        assert_eq!(r.throughput(), 0.0);
    }

    #[test]
    fn timed_measures_something() {
        let (v, d) = timed(|| {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(d >= Duration::from_millis(4));
    }
}
