//! Versioned policy checkpoints.
//!
//! A checkpoint is a one-line magic/version header followed by a JSON
//! payload carrying the actor, the critic (when the algorithm has one) and
//! enough configuration to validate compatibility at load time:
//!
//! ```text
//! sqlgen-checkpoint v1
//! {"config":{...},"actor":{...},"critic":{...}}
//! ```
//!
//! The header lets loaders reject future formats with a typed
//! [`CheckpointError::UnsupportedVersion`] instead of a serde panic, and
//! lets tools identify checkpoint files cheaply (read one line). Payloads
//! without a header are parsed as the legacy bare-`ActorNet` JSON emitted
//! by `save_actor` before this format existed.
//!
//! [`write_atomic`] publishes checkpoints via tmp-file + `rename` so a
//! concurrently-scanning model registry never observes a torn file.

use serde::{Deserialize, Serialize};
use sqlgen_rl::{ActorNet, Constraint, CriticNet, NetConfig, QuantizedActor};
use std::fmt;
use std::path::Path;

/// First token of the header line.
pub const CHECKPOINT_MAGIC: &str = "sqlgen-checkpoint";
/// Current (and only) supported format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Typed checkpoint failure — every malformed input maps here, never to a
/// panic.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// Neither a versioned checkpoint header nor legacy actor JSON.
    BadMagic,
    /// Header is well-formed but names a version this build cannot read.
    UnsupportedVersion { found: u32, supported: u32 },
    /// Header or payload failed to parse.
    Parse(String),
    /// The checkpoint's network was trained over a different action space
    /// than the loader's vocabulary.
    VocabMismatch { expected: usize, found: usize },
    /// Filesystem error while reading or (atomically) writing.
    Io(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => {
                write!(f, "not a checkpoint: missing `{CHECKPOINT_MAGIC}` header and not legacy actor JSON")
            }
            CheckpointError::UnsupportedVersion { found, supported } => {
                write!(f, "checkpoint format v{found} is newer than supported v{supported}")
            }
            CheckpointError::Parse(e) => write!(f, "malformed checkpoint: {e}"),
            CheckpointError::VocabMismatch { expected, found } => write!(
                f,
                "checkpoint vocabulary size {found} does not match the current action space {expected} \
                 (was it trained on a different schema or sample config?)"
            ),
            CheckpointError::Io(e) => write!(f, "checkpoint io: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e.to_string())
    }
}

/// Configuration block stored alongside the weights. Optional fields are
/// `None` for checkpoints upgraded from the legacy bare-actor format.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointMeta {
    /// `"actor-critic"`, `"reinforce"`, or `"legacy"` for upgraded files.
    pub algorithm: String,
    /// Action-space size the networks were trained over; validated against
    /// the loader's vocabulary.
    pub vocab_size: usize,
    pub net: Option<NetConfig>,
    /// Constraint the policy was trained for (provenance; loading under a
    /// different constraint is allowed).
    pub constraint: Option<Constraint>,
}

/// A versioned policy checkpoint: actor + optional critic + config.
#[derive(Debug, Serialize, Deserialize)]
pub struct Checkpoint {
    pub config: CheckpointMeta,
    pub actor: ActorNet,
    pub critic: Option<CriticNet>,
}

impl Checkpoint {
    /// Wraps a legacy bare actor (no critic, no recorded config).
    pub fn legacy(actor: ActorNet) -> Self {
        Checkpoint {
            config: CheckpointMeta {
                algorithm: "legacy".to_string(),
                vocab_size: actor.vocab_size,
                net: None,
                constraint: None,
            },
            actor,
            critic: None,
        }
    }

    /// Serializes to the on-disk format (header line + JSON payload).
    pub fn render(&self) -> String {
        let payload = serde_json::to_string(self).expect("checkpoint serializes");
        format!("{CHECKPOINT_MAGIC} v{CHECKPOINT_VERSION}\n{payload}\n")
    }

    /// Parses either a versioned checkpoint or legacy bare-actor JSON.
    /// Weight buffers are restored; the result is ready to run.
    pub fn parse(text: &str) -> Result<Checkpoint, CheckpointError> {
        let mut ckpt = Self::parse_raw(text)?;
        ckpt.actor.restore_buffers();
        if let Some(critic) = &mut ckpt.critic {
            critic.restore_buffers();
        }
        Ok(ckpt)
    }

    /// Builds an int8 per-output-channel quantized snapshot of this
    /// checkpoint's actor (quantize-at-load: checkpoints always store f32
    /// weights; the int8 form exists only in memory). See
    /// `sqlgen_nn::quant` for the format and error bound.
    pub fn quantized_actor(&self) -> QuantizedActor {
        QuantizedActor::from_actor(&self.actor)
    }

    /// Like [`Checkpoint::parse`], then validates the action space against
    /// `expected_vocab` (both actor and critic).
    pub fn parse_for_vocab(
        text: &str,
        expected_vocab: usize,
    ) -> Result<Checkpoint, CheckpointError> {
        let ckpt = Self::parse(text)?;
        for found in
            std::iter::once(ckpt.actor.vocab_size).chain(ckpt.critic.as_ref().map(|c| c.vocab_size))
        {
            if found != expected_vocab {
                return Err(CheckpointError::VocabMismatch {
                    expected: expected_vocab,
                    found,
                });
            }
        }
        Ok(ckpt)
    }

    fn parse_raw(text: &str) -> Result<Checkpoint, CheckpointError> {
        let trimmed = text.trim_start();
        if !trimmed.starts_with(CHECKPOINT_MAGIC) {
            // Legacy fallback: `save_actor` used to emit the bare ActorNet
            // JSON with no header.
            let actor: ActorNet =
                serde_json::from_str(text).map_err(|_| CheckpointError::BadMagic)?;
            return Ok(Checkpoint::legacy(actor));
        }
        let (header, payload) = trimmed
            .split_once('\n')
            .ok_or_else(|| CheckpointError::Parse("missing payload after header".to_string()))?;
        let version_tok = header[CHECKPOINT_MAGIC.len()..].trim();
        let version: u32 = version_tok
            .strip_prefix('v')
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| CheckpointError::Parse(format!("bad version token `{version_tok}`")))?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion {
                found: version,
                supported: CHECKPOINT_VERSION,
            });
        }
        serde_json::from_str(payload).map_err(|e| CheckpointError::Parse(e.to_string()))
    }
}

/// Writes `contents` to `path` atomically (tmp file in the same directory +
/// `rename`), so concurrent readers see either the old file or the new one,
/// never a torn write.
pub fn write_atomic(path: &Path, contents: &str) -> Result<(), CheckpointError> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        CheckpointError::Io(e.to_string())
    })
}

/// Reads and parses a checkpoint file.
pub fn read_file(path: &Path) -> Result<Checkpoint, CheckpointError> {
    Checkpoint::parse(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlgen_rl::NetConfig;

    fn small_actor(vocab: usize) -> ActorNet {
        ActorNet::new(
            vocab,
            &NetConfig {
                embed_dim: 4,
                hidden: 4,
                layers: 1,
                dropout: 0.0,
            },
            7,
        )
    }

    #[test]
    fn roundtrip_preserves_weights_and_meta() {
        let ckpt = Checkpoint {
            config: CheckpointMeta {
                algorithm: "actor-critic".to_string(),
                vocab_size: 11,
                net: Some(NetConfig {
                    embed_dim: 4,
                    hidden: 4,
                    layers: 1,
                    dropout: 0.0,
                }),
                constraint: Some(Constraint::cardinality_range(1.0, 5.0)),
            },
            actor: small_actor(11),
            critic: None,
        };
        let text = ckpt.render();
        assert!(text.starts_with("sqlgen-checkpoint v1\n"));
        let back = Checkpoint::parse(&text).unwrap();
        assert_eq!(back.config.algorithm, "actor-critic");
        assert_eq!(back.config.vocab_size, 11);
        assert_eq!(back.actor.vocab_size, 11);
        assert!(back.critic.is_none());
        // Weight-level equality via re-serialization.
        assert_eq!(
            serde_json::to_string(&ckpt.actor).unwrap(),
            serde_json::to_string(&back.actor).unwrap()
        );
    }

    #[test]
    fn legacy_bare_actor_json_still_loads() {
        let actor = small_actor(9);
        let legacy = serde_json::to_string(&actor).unwrap();
        let ckpt = Checkpoint::parse(&legacy).unwrap();
        assert_eq!(ckpt.config.algorithm, "legacy");
        assert_eq!(ckpt.actor.vocab_size, 9);
        assert!(ckpt.critic.is_none());
    }

    #[test]
    fn version_mismatch_is_a_typed_error_not_a_panic() {
        let err = Checkpoint::parse("sqlgen-checkpoint v2\n{}").unwrap_err();
        assert_eq!(
            err,
            CheckpointError::UnsupportedVersion {
                found: 2,
                supported: 1
            }
        );
    }

    #[test]
    fn garbage_inputs_give_typed_errors() {
        assert_eq!(
            Checkpoint::parse("not a checkpoint at all").unwrap_err(),
            CheckpointError::BadMagic
        );
        assert!(matches!(
            Checkpoint::parse("sqlgen-checkpoint vX\n{}").unwrap_err(),
            CheckpointError::Parse(_)
        ));
        assert!(matches!(
            Checkpoint::parse("sqlgen-checkpoint v1").unwrap_err(),
            CheckpointError::Parse(_)
        ));
        assert!(matches!(
            Checkpoint::parse("sqlgen-checkpoint v1\nnot json").unwrap_err(),
            CheckpointError::Parse(_)
        ));
    }

    #[test]
    fn quantize_at_load_roundtrips_through_the_wire_format() {
        let ckpt = Checkpoint::legacy(small_actor(9));
        let back = Checkpoint::parse(&ckpt.render()).unwrap();
        let q = back.quantized_actor();
        assert_eq!(q.vocab_size, 9);
        // Same weights in, same int8 snapshot out.
        let direct = ckpt.quantized_actor();
        assert_eq!(q.head.w.data, direct.head.w.data);
        assert_eq!(q.head.w.scales, direct.head.w.scales);
    }

    #[test]
    fn vocab_validation_rejects_mismatched_checkpoints() {
        let text = Checkpoint::legacy(small_actor(9)).render();
        let err = Checkpoint::parse_for_vocab(&text, 13).unwrap_err();
        assert_eq!(
            err,
            CheckpointError::VocabMismatch {
                expected: 13,
                found: 9
            }
        );
        assert!(Checkpoint::parse_for_vocab(&text, 9).is_ok());
    }

    #[test]
    fn write_atomic_replaces_file_without_leaving_tmp() {
        let dir = std::env::temp_dir().join(format!("sqlgen-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        write_atomic(&path, "first").unwrap();
        write_atomic(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(leftovers.len(), 1, "tmp file leaked: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
