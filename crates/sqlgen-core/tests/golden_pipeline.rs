//! End-to-end pipeline determinism: `GenConfig::fast().with_seed(5)` must
//! reproduce the pre-kernel-rewrite reward trace (exact f32 bits) and the
//! rendered SQL of the first generated queries. The fixture was dumped by
//! `examples/golden_dump.rs` from the original serial implementation.

use sqlgen_core::{GenConfig, LearnedSqlGen};
use sqlgen_rl::Constraint;
use sqlgen_storage::gen::tpch_database;

#[test]
fn fast_config_pipeline_matches_golden_fixture() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/golden_pipeline.json"
    );
    let text = std::fs::read_to_string(path).expect("golden fixture present");
    let v: serde_json::Value = serde_json::from_str(&text).expect("fixture parses");
    let want_bits: Vec<u32> = v
        .get("reward_trace_bits")
        .expect("reward_trace_bits")
        .as_array()
        .expect("array")
        .iter()
        .map(|b| b.as_u64().expect("u32 bits") as u32)
        .collect();
    let want_sql: Vec<String> = v
        .get("sql")
        .expect("sql")
        .as_array()
        .expect("array")
        .iter()
        .map(|s| s.as_str().expect("string").to_string())
        .collect();

    let db = tpch_database(0.2, 21);
    // Refinement off: the fixture pins the legacy generate-and-hope path,
    // which `--no-refine` must reproduce bit-for-bit.
    let mut g = LearnedSqlGen::new(
        &db,
        Constraint::cardinality_range(100.0, 500.0),
        GenConfig::fast().with_seed(5).with_refine(false),
    );
    g.train(60);
    let got_bits: Vec<u32> = g.stats.reward_trace.iter().map(|r| r.to_bits()).collect();
    assert_eq!(got_bits, want_bits, "reward trace drifted (f32 bit-exact)");

    let got_sql: Vec<String> = g.generate(8).into_iter().map(|q| q.sql).collect();
    assert_eq!(got_sql, want_sql, "generated SQL drifted");
}

/// Int8 quantized inference is allowed to sample slightly different token
/// streams (logits move within the quantization error bound), but on the
/// golden training config its batch-1 constraint satisfied-rate must stay
/// within ±2 queries of the f32 path over the same per-job seeds — both
/// with refinement off (the raw policy) and on (the shipping path). The
/// reported "int8 batch-1 drop" (84 vs 99) was bench accounting keeping the
/// satisfied count of whichever nondeterministic timing rep was fastest,
/// not a quantization defect; this pins the deterministic truth.
#[test]
fn quantized_satisfied_rate_tracks_f32_on_golden_config() {
    let db = tpch_database(0.2, 21);
    let mut g = LearnedSqlGen::new(
        &db,
        Constraint::cardinality_range(100.0, 500.0),
        GenConfig::fast().with_seed(5),
    );
    g.train(60);
    g.set_batch_size(1);
    let n = 20;
    let count = |g: &LearnedSqlGen| {
        g.generate_seeded(n, 0x601d)
            .iter()
            .filter(|q| q.satisfied)
            .count() as i64
    };
    for refine in [false, true] {
        g.set_refine(refine);
        g.set_quantize(false);
        let f32_sat = count(&g);
        g.set_quantize(true);
        let q_sat = count(&g);
        assert!(
            (q_sat - f32_sat).abs() <= 2,
            "quantized satisfied-rate drifted (refine={refine}): \
             f32 {f32_sat}/{n} vs int8 {q_sat}/{n}"
        );
    }
}
