//! Constraints and reward functions (paper §2.1 and §4.2).
//!
//! A constraint pairs a metric (cardinality or cost) with a target (a point
//! or a range). The reward design is the paper's, verbatim:
//!
//! * point `C: metric = c`: `r = min(ĉ/c, c/ĉ)` for executable queries
//!   (0 if either side is 0), `r = 0` otherwise;
//! * range `C: metric ∈ [l, r]`: `r = 1` inside the range,
//!   `r = max(min(ĉ/l, l/ĉ), min(ĉ/r, r/ĉ))` outside, `r = 0` if not
//!   executable.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which query property the constraint talks about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Result-set size (estimated by the DB estimator).
    Cardinality,
    /// Optimizer cost units.
    Cost,
    /// Real execution latency in microseconds (paper Remark 3: latency is
    /// hardware-sensitive, which is why the paper — and our defaults — use
    /// cost instead; provided as an opt-in extension).
    Latency,
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Metric::Cardinality => write!(f, "Cardinality"),
            Metric::Cost => write!(f, "Cost"),
            Metric::Latency => write!(f, "Latency(us)"),
        }
    }
}

/// Point or range target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Target {
    Point(f64),
    Range(f64, f64),
}

/// A user constraint, e.g. `Cardinality ∈ [1k, 2k]` or `Cost = 10⁴`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    pub metric: Metric,
    pub target: Target,
}

/// Relative tolerance for point constraints: the paper counts a query as
/// satisfied when its metric is within `±10%` of the point (§7.1).
pub const POINT_TOLERANCE: f64 = 0.1;

impl Constraint {
    pub fn cardinality_point(c: f64) -> Self {
        Constraint {
            metric: Metric::Cardinality,
            target: Target::Point(c),
        }
    }

    pub fn cardinality_range(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "range constraint with lo > hi");
        Constraint {
            metric: Metric::Cardinality,
            target: Target::Range(lo, hi),
        }
    }

    pub fn cost_point(c: f64) -> Self {
        Constraint {
            metric: Metric::Cost,
            target: Target::Point(c),
        }
    }

    pub fn cost_range(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "range constraint with lo > hi");
        Constraint {
            metric: Metric::Cost,
            target: Target::Range(lo, hi),
        }
    }

    /// Latency range in microseconds (requires
    /// [`crate::SqlGenEnv::with_database`]).
    pub fn latency_range_us(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "range constraint with lo > hi");
        Constraint {
            metric: Metric::Latency,
            target: Target::Range(lo, hi),
        }
    }

    /// The §4.2 reward for an executable query whose measured metric is
    /// `measured`. Call only for executable queries; non-executable partial
    /// queries receive 0 at the environment level.
    pub fn reward(&self, measured: f64) -> f64 {
        match self.target {
            Target::Point(c) => ratio_closeness(measured, c),
            Target::Range(lo, hi) => {
                if measured >= lo && measured <= hi {
                    1.0
                } else {
                    ratio_closeness(measured, lo).max(ratio_closeness(measured, hi))
                }
            }
        }
    }

    /// Whether a measured metric satisfies the constraint (point: within the
    /// ±10% tolerance band; range: inside the range).
    pub fn satisfied(&self, measured: f64) -> bool {
        match self.target {
            Target::Point(c) => (measured - c).abs() <= POINT_TOLERANCE * c,
            Target::Range(lo, hi) => measured >= lo && measured <= hi,
        }
    }

    /// A representative value inside the constraint (used by the meta-critic
    /// experiments to order tasks).
    pub fn center(&self) -> f64 {
        match self.target {
            Target::Point(c) => c,
            Target::Range(lo, hi) => 0.5 * (lo + hi),
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.target {
            Target::Point(c) => write!(f, "{} = {c}", self.metric),
            Target::Range(lo, hi) => write!(f, "{} in [{lo}, {hi}]", self.metric),
        }
    }
}

/// `min(a/b, b/a)`, with 0 when either side is 0 (paper: "If c or ĉ is
/// zero, we set δ as 0").
fn ratio_closeness(a: f64, b: f64) -> f64 {
    if a <= 0.0 || b <= 0.0 {
        0.0
    } else {
        (a / b).min(b / a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Example 3: point constraint Card = 10 000.
    #[test]
    fn point_reward_matches_paper_example_3() {
        let c = Constraint::cardinality_point(10_000.0);
        assert!((c.reward(100.0) - 0.01).abs() < 1e-9);
        assert!((c.reward(11_000.0) - 10_000.0 / 11_000.0).abs() < 1e-9);
        assert_eq!(c.reward(10_000.0), 1.0);
        assert_eq!(c.reward(0.0), 0.0);
    }

    /// Paper Example 4: range constraint Card ∈ [1k, 2k].
    #[test]
    fn range_reward_matches_paper_example_4() {
        let c = Constraint::cardinality_range(1_000.0, 2_000.0);
        assert_eq!(c.reward(1_500.0), 1.0);
        assert!((c.reward(10_000.0) - 0.2).abs() < 1e-9);
        // Below the range: closeness to the left bound dominates.
        assert!((c.reward(500.0) - 0.5).abs() < 1e-9);
        assert_eq!(c.reward(1_000.0), 1.0);
        assert_eq!(c.reward(2_000.0), 1.0);
    }

    #[test]
    fn reward_is_monotone_toward_the_target() {
        let c = Constraint::cost_point(1_000.0);
        assert!(c.reward(900.0) > c.reward(500.0));
        assert!(c.reward(1_100.0) > c.reward(2_000.0));
        let r = Constraint::cost_range(100.0, 200.0);
        assert!(r.reward(90.0) > r.reward(10.0));
        assert!(r.reward(250.0) > r.reward(2_500.0));
    }

    #[test]
    fn reward_bounds() {
        let c = Constraint::cardinality_range(10.0, 20.0);
        for m in [0.0, 1.0, 10.0, 15.0, 20.0, 1e9] {
            let r = c.reward(m);
            assert!((0.0..=1.0).contains(&r), "reward {r} for {m}");
        }
    }

    #[test]
    fn satisfaction_tolerance() {
        let p = Constraint::cardinality_point(100.0);
        assert!(p.satisfied(95.0));
        assert!(p.satisfied(110.0));
        assert!(!p.satisfied(111.0));
        assert!(!p.satisfied(89.0));
        let r = Constraint::cardinality_range(100.0, 200.0);
        assert!(r.satisfied(100.0));
        assert!(r.satisfied(200.0));
        assert!(!r.satisfied(99.9));
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            Constraint::cardinality_range(1000.0, 2000.0).to_string(),
            "Cardinality in [1000, 2000]"
        );
        assert_eq!(Constraint::cost_point(10.0).to_string(), "Cost = 10");
    }

    #[test]
    #[should_panic(expected = "lo > hi")]
    fn rejects_inverted_range() {
        Constraint::cardinality_range(10.0, 1.0);
    }
}
