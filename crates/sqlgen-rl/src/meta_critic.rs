//! The meta-critic network (paper §6).
//!
//! One shared value function is trained across many constraint tasks. A
//! *constraint encoder* consumes recent `(state, action, reward)` triples of
//! the current task and produces an embedding `z` that identifies the task
//! ("the task directly determines the reward, given the query and selected
//! token"); the *meta-value network* maps `(state encoding h_t, z)` to a
//! V-value. Each task keeps its own actor; all actors are criticized by the
//! shared meta-critic, which is what transfers knowledge to unseen
//! constraints.
//!
//! Design note (documented in DESIGN.md): `z` is computed once per episode
//! from the *previous* episode's triples of the same task, so it is constant
//! within an episode; the encoder is trained by backpropagating the sum of
//! the per-step `∂L/∂z` through its final hidden state.

use crate::constraint::Constraint;
use crate::env::SqlGenEnv;
use crate::episode::{run_episode, Episode};
use crate::nets::{ActorNet, NetConfig};
use crate::reinforce::TrainConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sqlgen_nn::{clip_grad_norm, Adam, Embedding, LstmStack, Mlp, Optimizer, Param, StackCache};

/// Encoder hidden size (z dimension).
pub const ENCODER_HIDDEN: usize = 16;
/// How many recent (s, a, r) triples the encoder sees.
pub const ENCODER_WINDOW: usize = 32;

/// Encodes recent `(action, reward)` history into a task embedding `z`.
///
/// The state component of the paper's `(s, a, r)` triple is implicit: the
/// encoder LSTM reads the action sequence, which *is* the state trajectory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConstraintEncoder {
    pub embed: Embedding,
    pub lstm: LstmStack,
}

impl ConstraintEncoder {
    pub fn new(vocab_size: usize, embed_dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        ConstraintEncoder {
            embed: Embedding::new(vocab_size + 1, embed_dim, &mut rng),
            lstm: LstmStack::new(embed_dim + 1, ENCODER_HIDDEN, 1, &mut rng),
        }
    }

    /// Encodes triples to `z`; returns the per-step caches for backprop.
    pub fn encode(&self, triples: &[(usize, f32)]) -> (Vec<f32>, Vec<StackCache>) {
        let mut state = self.lstm.zero_state();
        let mut caches = Vec::with_capacity(triples.len());
        let mut z = vec![0.0; ENCODER_HIDDEN];
        for &(action, reward) in triples {
            let mut x = self.embed.forward(action);
            x.push(reward);
            let (top, c) = self.lstm.forward_step(&x, &mut state);
            z = top;
            caches.push(c);
        }
        (z, caches)
    }

    /// Backprop `dz` (gradient w.r.t. the final hidden output) through the
    /// whole encoder sequence.
    pub fn backward(&mut self, triples: &[(usize, f32)], caches: &[StackCache], dz: &[f32]) {
        if caches.is_empty() {
            return;
        }
        let mut dtops = vec![vec![0.0; ENCODER_HIDDEN]; caches.len()];
        *dtops.last_mut().expect("non-empty") = dz.to_vec();
        let dxs = self.lstm.backward_sequence(caches, &dtops);
        for (&(action, _), dx) in triples.iter().zip(&dxs) {
            // The last input slot is the reward (no parameters).
            self.embed.backward(action, &dx[..dx.len() - 1]);
        }
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.embed.params_mut();
        p.extend(self.lstm.params_mut());
        p
    }

    pub fn zero_grad(&mut self) {
        self.embed.zero_grad();
        self.lstm.zero_grad();
    }
}

/// Per-step cache for the meta-critic's value estimates.
pub struct MetaValueStep {
    input_token: usize,
    caches: StackCache,
    mlp_cache: sqlgen_nn::MlpCache,
    pub value: f32,
}

/// The shared meta-critic: state LSTM + constraint encoder + value MLP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetaCritic {
    pub embed: Embedding,
    pub lstm: LstmStack,
    pub encoder: ConstraintEncoder,
    pub mlp: Mlp,
    pub vocab_size: usize,
}

impl MetaCritic {
    pub fn new(vocab_size: usize, cfg: &NetConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        MetaCritic {
            embed: Embedding::new(vocab_size + 1, cfg.embed_dim, &mut rng),
            lstm: LstmStack::new(cfg.embed_dim, cfg.hidden, cfg.layers, &mut rng),
            encoder: ConstraintEncoder::new(vocab_size, cfg.embed_dim, seed ^ 0xe17c),
            mlp: Mlp::new(&[cfg.hidden + ENCODER_HIDDEN, 32, 1], &mut rng),
            vocab_size,
        }
    }

    /// V-values for an episode's input-token stream, conditioned on `z`.
    pub fn forward_episode(&self, input_tokens: &[usize], z: &[f32]) -> Vec<MetaValueStep> {
        let mut state = self.lstm.zero_state();
        let mut out = Vec::with_capacity(input_tokens.len());
        for &tok in input_tokens {
            let x = self.embed.forward(tok);
            let (h, caches) = self.lstm.forward_step(&x, &mut state);
            let mut joint = h;
            joint.extend_from_slice(z);
            let (v, mlp_cache) = self.mlp.forward(&joint);
            out.push(MetaValueStep {
                input_token: tok,
                caches,
                mlp_cache,
                value: v[0],
            });
        }
        out
    }

    /// Backprop the value-loss gradients; returns the accumulated `∂L/∂z`.
    pub fn backward_episode(&mut self, steps: &[MetaValueStep], dvalues: &[f32]) -> Vec<f32> {
        let hidden = self.lstm.hidden();
        let mut dz = vec![0.0; ENCODER_HIDDEN];
        let mut dtops = Vec::with_capacity(steps.len());
        for (s, &dv) in steps.iter().zip(dvalues) {
            let djoint = self.mlp.backward(&s.mlp_cache, &[dv]);
            dtops.push(djoint[..hidden].to_vec());
            for (a, b) in dz.iter_mut().zip(&djoint[hidden..]) {
                *a += b;
            }
        }
        let caches: Vec<StackCache> = steps.iter().map(|s| s.caches.clone()).collect();
        let dxs = self.lstm.backward_sequence(&caches, &dtops);
        for (s, dx) in steps.iter().zip(&dxs) {
            self.embed.backward(s.input_token, dx);
        }
        dz
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.embed.params_mut();
        p.extend(self.lstm.params_mut());
        p.extend(self.encoder.params_mut());
        p.extend(self.mlp.params_mut());
        p
    }

    pub fn zero_grad(&mut self) {
        self.embed.zero_grad();
        self.lstm.zero_grad();
        self.encoder.zero_grad();
        self.mlp.zero_grad();
    }
}

/// One pre-training task: a constraint, its actor, and its recent history.
pub struct TaskSlot {
    pub constraint: Constraint,
    pub actor: ActorNet,
    /// Recent (action, reward) triples feeding the constraint encoder.
    pub triples: Vec<(usize, f32)>,
    opt_actor: Adam,
}

/// Multi-task trainer with a shared meta-critic.
pub struct MetaCriticTrainer {
    pub tasks: Vec<TaskSlot>,
    pub critic: MetaCritic,
    pub cfg: TrainConfig,
    opt_critic: Adam,
    rng: StdRng,
}

impl MetaCriticTrainer {
    /// Creates one actor per constraint plus the shared meta-critic.
    pub fn new(action_space: usize, constraints: Vec<Constraint>, cfg: TrainConfig) -> Self {
        let tasks = constraints
            .into_iter()
            .enumerate()
            .map(|(i, constraint)| TaskSlot {
                constraint,
                actor: ActorNet::new(action_space, &cfg.net, cfg.seed ^ (i as u64 * 7919 + 13)),
                triples: Vec::new(),
                opt_actor: Adam::new(cfg.lr_actor),
            })
            .collect();
        MetaCriticTrainer {
            tasks,
            critic: MetaCritic::new(action_space, &cfg.net, cfg.seed ^ 0x3e7a),
            opt_critic: Adam::new(cfg.lr_critic),
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x91e7),
            cfg,
        }
    }

    /// Adds a new task (e.g. an unseen constraint to adapt to); returns its
    /// index.
    pub fn add_task(&mut self, action_space: usize, constraint: Constraint) -> usize {
        let i = self.tasks.len();
        self.tasks.push(TaskSlot {
            constraint,
            actor: ActorNet::new(
                action_space,
                &self.cfg.net,
                self.cfg.seed ^ (i as u64 * 7919 + 13),
            ),
            triples: Vec::new(),
            opt_actor: Adam::new(self.cfg.lr_actor),
        });
        i
    }

    /// One training episode for task `idx`. The environment's constraint
    /// must match the task's (the caller builds envs per task).
    pub fn train_task(&mut self, idx: usize, env: &SqlGenEnv) -> Episode {
        debug_assert_eq!(env.constraint, self.tasks[idx].constraint);
        let ep = {
            let task = &self.tasks[idx];
            run_episode(&task.actor, env, true, &mut self.rng)
        };

        // Constraint encoding from the task's accumulated history.
        let (z, enc_caches) = self.critic.encoder.encode(&self.tasks[idx].triples);

        // Value estimates conditioned on z.
        let input_tokens: Vec<usize> = ep.steps.iter().map(|s| s.input_token).collect();
        let vsteps = self.critic.forward_episode(&input_tokens, &z);
        let values: Vec<f32> = vsteps.iter().map(|s| s.value).collect();
        let (advantages, dvalues) =
            crate::actor_critic::ActorCritic::td_terms(&values, &ep.rewards);

        // Actor update.
        let task = &mut self.tasks[idx];
        task.actor.zero_grad();
        task.actor
            .backward_episode(&ep.steps, &advantages, self.cfg.lambda);
        let mut ap = task.actor.params_mut();
        clip_grad_norm(&mut ap, self.cfg.grad_clip);
        task.opt_actor.step(&mut ap);

        // Meta-critic update (value path + encoder through z).
        self.critic.zero_grad();
        let dz = self.critic.backward_episode(&vsteps, &dvalues);
        let triples = self.tasks[idx].triples.clone();
        self.critic.encoder.backward(&triples, &enc_caches, &dz);
        let mut cp = self.critic.params_mut();
        clip_grad_norm(&mut cp, self.cfg.grad_clip);
        self.opt_critic.step(&mut cp);

        // Record this episode's triples for the next encoding.
        let task = &mut self.tasks[idx];
        for (s, &r) in ep.steps.iter().zip(&ep.rewards) {
            task.triples.push((s.action, r));
        }
        let overflow = task.triples.len().saturating_sub(ENCODER_WINDOW);
        if overflow > 0 {
            task.triples.drain(..overflow);
        }

        ep
    }

    /// Inference with task `idx`'s actor.
    pub fn generate(&mut self, idx: usize, env: &SqlGenEnv) -> Episode {
        run_episode(&self.tasks[idx].actor, env, false, &mut self.rng)
    }

    pub fn rng_fork(&mut self) -> StdRng {
        StdRng::seed_from_u64(self.rng.random::<u64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlgen_engine::Estimator;
    use sqlgen_fsm::{FsmConfig, Vocabulary};
    use sqlgen_storage::gen::tpch_database;
    use sqlgen_storage::sample::SampleConfig;

    #[test]
    fn encoder_distinguishes_histories() {
        let enc = ConstraintEncoder::new(50, 8, 1);
        let (z1, _) = enc.encode(&[(1, 0.9), (2, 0.8), (3, 1.0)]);
        let (z2, _) = enc.encode(&[(1, 0.0), (2, 0.1), (3, 0.0)]);
        let dist: f32 = z1
            .iter()
            .zip(&z2)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f32>()
            .sqrt();
        assert!(dist > 1e-3, "identical encodings for different histories");
    }

    #[test]
    fn empty_history_encodes_to_zero() {
        let enc = ConstraintEncoder::new(50, 8, 1);
        let (z, caches) = enc.encode(&[]);
        assert_eq!(z, vec![0.0; ENCODER_HIDDEN]);
        assert!(caches.is_empty());
        // Backward on empty history is a no-op.
        let mut enc = enc;
        enc.backward(&[], &caches, &[1.0; ENCODER_HIDDEN]);
    }

    #[test]
    fn meta_value_depends_on_z() {
        let cfg = NetConfig {
            embed_dim: 8,
            hidden: 8,
            layers: 1,
            dropout: 0.0,
        };
        let mc = MetaCritic::new(20, &cfg, 2);
        let tokens = vec![20usize, 1, 2]; // BOS, then two tokens
        let z1 = vec![0.5; ENCODER_HIDDEN];
        let z2 = vec![-0.5; ENCODER_HIDDEN];
        let v1 = mc.forward_episode(&tokens, &z1);
        let v2 = mc.forward_episode(&tokens, &z2);
        assert_ne!(v1[2].value, v2[2].value);
    }

    #[test]
    fn multi_task_training_improves_rewards() {
        let db = tpch_database(0.2, 9);
        let vocab = Vocabulary::build(
            &db,
            &SampleConfig {
                k: 10,
                ..Default::default()
            },
        );
        let est = Estimator::build(&db);
        let constraints = vec![
            Constraint::cardinality_range(10.0, 500.0),
            Constraint::cardinality_range(500.0, 5_000.0),
        ];
        let cfg = TrainConfig {
            net: NetConfig {
                embed_dim: 16,
                hidden: 16,
                layers: 1,
                dropout: 0.0,
            },
            ..Default::default()
        };
        let mut trainer = MetaCriticTrainer::new(vocab.size(), constraints.clone(), cfg);
        let envs: Vec<SqlGenEnv> = constraints
            .iter()
            .map(|&c| SqlGenEnv::new(&vocab, &est, c).with_fsm_config(FsmConfig::spj()))
            .collect();
        // Untrained baseline across both tasks.
        let eval = |trainer: &mut MetaCriticTrainer, envs: &[SqlGenEnv]| -> f32 {
            let mut acc = 0.0;
            for (i, env) in envs.iter().enumerate() {
                for _ in 0..15 {
                    let ep = trainer.generate(i, env);
                    acc += ep.total_reward() / ep.len() as f32;
                }
            }
            acc / (15.0 * envs.len() as f32)
        };
        let untrained = eval(&mut trainer, &envs);
        for _ in 0..350 {
            for (i, env) in envs.iter().enumerate() {
                trainer.train_task(i, env);
            }
        }
        let trained = eval(&mut trainer, &envs);
        assert!(
            trained > untrained,
            "no improvement: untrained {untrained:.3} trained {trained:.3}"
        );
        // Tasks accumulated history for the encoder.
        assert!(!trainer.tasks[0].triples.is_empty());
        assert!(trainer.tasks[0].triples.len() <= ENCODER_WINDOW);
    }

    #[test]
    fn add_task_extends_the_task_list() {
        let cfg = TrainConfig::default();
        let mut trainer =
            MetaCriticTrainer::new(30, vec![Constraint::cardinality_point(10.0)], cfg);
        let idx = trainer.add_task(30, Constraint::cardinality_point(99.0));
        assert_eq!(idx, 1);
        assert_eq!(trainer.tasks.len(), 2);
    }
}
