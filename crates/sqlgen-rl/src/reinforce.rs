//! The REINFORCE baseline algorithm (Williams 1992), §4.3.
//!
//! Plain policy gradient with reward-to-go returns and **no** baseline —
//! exactly the ablation the paper compares the actor-critic against in
//! Figure 8 (high return variance, slower/noisier convergence).

use crate::env::SqlGenEnv;
use crate::episode::{
    rewards_to_go_into, run_episode_infer, run_episode_into, Episode, InferRollout, Rollout,
};
use crate::nets::{ActorNet, ActorStep, NetConfig, NetGradsBatch, QuantizedActor};
use crate::parallel::collect_episodes;
use crate::train_batch::TrainRollout;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlgen_nn::{clip_grad_norm, Adam, Optimizer};

/// Trainer hyper-parameters (paper §7.1 values as defaults).
#[derive(Debug, Clone)]
pub struct TrainConfig {
    pub net: NetConfig,
    pub lr_actor: f32,
    pub lr_critic: f32,
    /// Entropy-regularization strength λ.
    pub lambda: f32,
    pub grad_clip: f32,
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            net: NetConfig::default(),
            lr_actor: 0.001,
            lr_critic: 0.003,
            lambda: 0.01,
            grad_clip: 5.0,
            seed: 0xacc01ade,
        }
    }
}

/// REINFORCE trainer.
pub struct Reinforce {
    pub actor: ActorNet,
    pub cfg: TrainConfig,
    opt: Adam,
    rng: StdRng,
    /// Recycled training-rollout arena (caches, scratch, LSTM state).
    rollout: Rollout,
    /// Recycled inference-rollout buffers.
    infer: InferRollout,
    /// Recycled returns buffer.
    returns: Vec<f32>,
}

impl Reinforce {
    pub fn new(action_space: usize, cfg: TrainConfig) -> Self {
        let actor = ActorNet::new(action_space, &cfg.net, cfg.seed);
        let opt = Adam::new(cfg.lr_actor);
        let rng = StdRng::seed_from_u64(cfg.seed ^ 0x5eed);
        Reinforce {
            actor,
            cfg,
            opt,
            rng,
            rollout: Rollout::new(),
            infer: InferRollout::new(),
            returns: Vec::new(),
        }
    }

    /// One policy-gradient update from a finished episode's steps/rewards.
    fn apply_update(&mut self, steps: &[ActorStep], rewards: &[f32]) {
        let mut returns = std::mem::take(&mut self.returns);
        rewards_to_go_into(rewards, &mut returns);
        self.actor.zero_grad();
        self.actor
            .backward_episode(steps, &returns, self.cfg.lambda);
        let mut params = self.actor.params_mut();
        clip_grad_norm(&mut params, self.cfg.grad_clip);
        self.opt.step(&mut params);
        self.returns = returns;
    }

    /// Runs one training episode and updates the policy. Returns the episode.
    pub fn train_episode(&mut self, env: &SqlGenEnv) -> Episode {
        let mut ro = std::mem::take(&mut self.rollout);
        let ep = run_episode_into(&self.actor, env, true, &mut self.rng, &mut ro);
        self.apply_update(ro.steps(), &ep.rewards);
        self.rollout = ro;
        ep
    }

    /// Trains on `episodes` episodes, collecting rollouts with `threads`
    /// parallel workers and applying updates serially in episode order.
    /// `threads <= 1` runs the exact single-threaded path (bit-identical to
    /// calling [`Reinforce::train_episode`] in a loop).
    pub fn train_batch(
        &mut self,
        env: &SqlGenEnv,
        episodes: usize,
        threads: usize,
    ) -> Vec<Episode> {
        if threads <= 1 {
            return (0..episodes).map(|_| self.train_episode(env)).collect();
        }
        let mut out = Vec::with_capacity(episodes);
        let mut remaining = episodes;
        while remaining > 0 {
            // One round = one episode per worker, so rollouts never run
            // more than `threads` episodes behind the policy they sample.
            let batch = remaining.min(threads);
            let base: u64 = self.rng.random();
            for mut ep in collect_episodes(&self.actor, env, batch, true, batch, base) {
                self.apply_update(&ep.steps, &ep.rewards);
                ep.steps = Vec::new();
                out.push(ep);
            }
            remaining -= batch;
        }
        out
    }

    /// Trains on `episodes` episodes with up to `batch` lockstep GEMM
    /// lanes (batched BPTT with gradient accumulation).
    ///
    /// Each round rolls one episode per lane under the current policy
    /// (lane token streams bitwise match serial rollouts of the lane
    /// seeds), runs one lane-batched backward into per-lane gradient
    /// arenas, reduces the arenas in ascending lane order, and applies
    /// **one** clipped Adam step for the whole round. `batch <= 1` is the
    /// exact legacy serial path; larger batches are reproducible per
    /// `(seed, batch)` but — like `threads > 1` — a different
    /// deterministic run than serial training (one accumulated update per
    /// round instead of one per episode). See [`crate::train_batch`].
    pub fn train_batched(
        &mut self,
        env: &SqlGenEnv,
        episodes: usize,
        batch: usize,
    ) -> Vec<Episode> {
        if batch <= 1 {
            return (0..episodes).map(|_| self.train_episode(env)).collect();
        }
        let mut ro = TrainRollout::new();
        let mut grads = NetGradsBatch::default();
        let mut advantages: Vec<Vec<f32>> = Vec::new();
        let mut out = Vec::with_capacity(episodes);
        let mut remaining = episodes;
        while remaining > 0 {
            // One round = one episode per lane, bounding policy staleness
            // at `batch` episodes (matching the threaded path).
            let b = remaining.min(batch);
            let base: u64 = self.rng.random();
            let eps = ro.collect(&self.actor, env, b, base);
            if advantages.len() < b {
                advantages.resize_with(b, Vec::new);
            }
            for (lane, ep) in eps.iter().enumerate() {
                rewards_to_go_into(&ep.rewards, &mut advantages[lane]);
            }
            self.actor.ensure_grads(&mut grads, b);
            self.actor.backward_episodes_batch(
                b,
                &ro.steps,
                &ro.lens,
                &advantages,
                self.cfg.lambda,
                &mut grads,
            );
            self.actor.zero_grad();
            self.actor.accumulate_grads(&grads, b);
            let mut params = self.actor.params_mut();
            clip_grad_norm(&mut params, self.cfg.grad_clip);
            self.opt.step(&mut params);
            out.extend(eps);
            remaining -= b;
        }
        out
    }

    /// Generates a query without updating the network (inference).
    pub fn generate(&mut self, env: &SqlGenEnv) -> Episode {
        run_episode_infer(&self.actor, env, &mut self.rng, &mut self.infer)
    }

    /// Generates `n` queries with `threads` parallel workers (no updates).
    /// `threads <= 1` matches [`Reinforce::generate`] in a loop bit-for-bit.
    pub fn generate_batch(&mut self, env: &SqlGenEnv, n: usize, threads: usize) -> Vec<Episode> {
        if threads <= 1 {
            return (0..n).map(|_| self.generate(env)).collect();
        }
        let base: u64 = self.rng.random();
        collect_episodes(&self.actor, env, n, false, threads, base)
    }

    /// Generates `n` queries with `batch` lockstep GEMM lanes (no updates).
    /// `batch <= 1` matches [`Reinforce::generate`] in a loop bit-for-bit;
    /// larger batches are reproducible per (seed, batch) — see
    /// [`crate::batch`] for the determinism contract.
    pub fn generate_batched(&mut self, env: &SqlGenEnv, n: usize, batch: usize) -> Vec<Episode> {
        if batch <= 1 {
            return (0..n).map(|_| self.generate(env)).collect();
        }
        let base: u64 = self.rng.random();
        crate::batch::collect_episodes_batched(&self.actor, env, n, batch, base)
    }

    /// Generates `n` queries on an int8 snapshot of the actor with `batch`
    /// lockstep lanes (no updates). Same engine and determinism contract
    /// as [`Reinforce::generate_batched`]; the sampled streams differ from
    /// the f32 path only within the quantization error of the logits.
    pub fn generate_batched_quant(
        &mut self,
        quant: &QuantizedActor,
        env: &SqlGenEnv,
        n: usize,
        batch: usize,
    ) -> Vec<Episode> {
        let base: u64 = self.rng.random();
        crate::batch::collect_episodes_batched(quant, env, n, batch.max(1), base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use sqlgen_engine::Estimator;
    use sqlgen_fsm::Vocabulary;
    use sqlgen_storage::gen::tpch_database;
    use sqlgen_storage::sample::SampleConfig;

    /// REINFORCE must improve the average reward on a real constraint task.
    #[test]
    fn reinforce_improves_reward() {
        let db = tpch_database(0.2, 9);
        let vocab = Vocabulary::build(
            &db,
            &SampleConfig {
                k: 10,
                ..Default::default()
            },
        );
        let est = Estimator::build(&db);
        // A generous range constraint so the signal is learnable quickly.
        let env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(50.0, 5_000.0))
            .with_fsm_config(sqlgen_fsm::FsmConfig::spj());
        let cfg = TrainConfig {
            net: NetConfig {
                embed_dim: 16,
                hidden: 16,
                layers: 1,
                dropout: 0.0,
            },
            ..Default::default()
        };
        let mut trainer = Reinforce::new(vocab.size(), cfg);
        let mut early = 0.0;
        let mut late = 0.0;
        let n = 150;
        for i in 0..n {
            let ep = trainer.train_episode(&env);
            let r = ep.total_reward() / ep.len() as f32;
            if i < 30 {
                early += r;
            }
            if i >= n - 30 {
                late += r;
            }
        }
        assert!(
            late > early,
            "no improvement: early {early:.3} late {late:.3}"
        );
    }

    #[test]
    fn generation_does_not_change_weights() {
        let db = tpch_database(0.1, 9);
        let vocab = Vocabulary::build(
            &db,
            &SampleConfig {
                k: 8,
                ..Default::default()
            },
        );
        let est = Estimator::build(&db);
        let env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_point(100.0));
        let mut trainer = Reinforce::new(vocab.size(), TrainConfig::default());
        let before = trainer.actor.head.w.value.data.clone();
        for _ in 0..3 {
            trainer.generate(&env);
        }
        assert_eq!(before, trainer.actor.head.w.value.data);
    }
}
