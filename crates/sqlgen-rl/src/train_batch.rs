//! Lane-batched training rollouts: batched BPTT with gradient accumulation.
//!
//! The lockstep inference engine in [`crate::batch`] amortizes weight reads
//! across lanes for generation; this module extends the same lane protocol
//! to *training*, where the forward pass must record backward caches and
//! the backward pass must produce gradients. One training round rolls one
//! episode per lane (no refill — a round is a closed set of episodes
//! collected under one policy snapshot), then the trainer runs a
//! lane-batched BPTT into per-lane gradient arenas and applies **one**
//! accumulated optimizer step for the round.
//!
//! Determinism contract:
//!
//! * lane `l` draws from the RNG stream seeded [`worker_seed`]`(base, l)`
//!   and its collected episode is bit-identical to a serial
//!   [`run_episode_into`](crate::episode::run_episode_into) with that seed
//!   (same dropout and sampling draws, same batched-kernel accumulation
//!   order as the serial kernels);
//! * each lane's gradient arena is bit-identical to a serial backward of
//!   that lane's episode alone; arenas reduce into `Param::grad` in
//!   ascending lane order, so the summed gradient is deterministic;
//! * a round applies one accumulated update instead of one update per
//!   episode, so `batch > 1` training is — exactly like `threads > 1` — a
//!   *different* (but per-`(seed, batch)` reproducible) run than serial
//!   training. `batch <= 1` delegates to the legacy serial path upstream,
//!   bit-exactly.

use crate::env::{RewardShaper, SqlGenEnv};
use crate::episode::{finish_episode, Episode};
use crate::nets::{ActorNet, ActorStep, BatchScratch, CriticNet, CriticStep};
use crate::parallel::worker_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqlgen_fsm::GenState;
use sqlgen_nn::LstmBatchState;

/// One in-flight training episode owned by a lane.
struct LaneRun<'a> {
    state: GenState<'a>,
    shaper: RewardShaper,
    actions: Vec<usize>,
    rewards: Vec<f32>,
}

/// Reusable buffers for lane-batched training rounds: the batched LSTM
/// states, the per-lane [`ActorStep`]/[`CriticStep`] arenas, and the
/// lockstep bookkeeping. One instance serves many rounds; arenas grow to
/// the longest episode seen and are then allocation-free.
#[derive(Default)]
pub struct TrainRollout {
    state: LstmBatchState,
    cstate: LstmBatchState,
    scratch: BatchScratch,
    /// Row-major `[batch × vocab]` FSM mask block.
    masks: Vec<bool>,
    prev: Vec<Option<usize>>,
    active: Vec<bool>,
    actions: Vec<usize>,
    rngs: Vec<StdRng>,
    /// Per-lane actor step arenas; `steps[lane][..lens[lane]]` live.
    pub steps: Vec<Vec<ActorStep>>,
    pub lens: Vec<usize>,
    /// Per-lane critic step arenas (used by the actor-critic trainer);
    /// `csteps[lane][..lens[lane]]` live after [`TrainRollout::critic_forward`].
    pub csteps: Vec<Vec<CriticStep>>,
}

impl TrainRollout {
    pub fn new() -> Self {
        Self::default()
    }

    /// Rolls out one **training** episode per lane in lockstep (dropout
    /// on, backward caches recorded into `self.steps`). Lane `l` seeds its
    /// RNG with [`worker_seed`]`(base, l)`; its episode is bit-identical
    /// to a serial training rollout with that stream. Returns episodes in
    /// lane order (steps stay in the arena, like
    /// [`Rollout`](crate::episode::Rollout)).
    ///
    /// Finished lanes are **compacted away** ([`Vec::swap_remove`]-style):
    /// physical slot `p` hosts logical lane `order[p]`, every per-slot
    /// buffer (LSTM state, masks, RNGs, …) shrinks with the live set, and
    /// the batched kernels always run at the live width. Legal because a
    /// lane's forward math reads only its own slot — the batched kernels
    /// are bitwise position- and width-independent per lane — and each
    /// lane's RNG stream travels with its slot.
    pub fn collect(
        &mut self,
        actor: &ActorNet,
        env: &SqlGenEnv,
        batch: usize,
        base: u64,
    ) -> Vec<Episode> {
        let b = batch.max(1);
        let vocab = env.action_space();
        self.state = actor.begin_batch(b);
        self.masks.clear();
        self.masks.resize(b * vocab, false);
        self.prev.clear();
        self.prev.resize(b, None);
        self.active.clear();
        self.active.resize(b, true);
        self.actions.clear();
        self.actions.resize(b, 0);
        self.rngs.clear();
        self.rngs
            .extend((0..b).map(|w| StdRng::seed_from_u64(worker_seed(base, w))));
        if self.steps.len() < b {
            self.steps.resize_with(b, Vec::new);
        }
        self.lens.clear();
        self.lens.resize(b, 0);

        let mut runs: Vec<Option<LaneRun>> = (0..b)
            .map(|_| {
                Some(LaneRun {
                    state: env.reset(),
                    shaper: RewardShaper::new(),
                    actions: Vec::new(),
                    rewards: Vec::new(),
                })
            })
            .collect();
        let mut out: Vec<Option<Episode>> = (0..b).map(|_| None).collect();
        // Physical slot `p` → logical lane `order[p]`.
        let mut order: Vec<usize> = (0..b).collect();

        let mut t = 0usize;
        while !order.is_empty() {
            let w = order.len();
            let start = sqlgen_obs::timing_enabled().then(std::time::Instant::now);
            for (p, &lane) in order.iter().enumerate() {
                runs[lane]
                    .as_ref()
                    .expect("live lane has a run")
                    .state
                    .mask_into_row(&mut self.masks, p);
            }
            // Every live lane gets an arena slot at `t` (the arena reaches
            // the longest episode's length and is then reused verbatim).
            for &lane in &order {
                let arena = &mut self.steps[lane];
                while arena.len() <= t {
                    arena.push(ActorStep::default());
                }
            }
            {
                // Permuted mutable arena borrows: each live lane's slot is
                // taken exactly once, in physical-slot order.
                let mut slots: Vec<Option<&mut Vec<ActorStep>>> =
                    self.steps[..b].iter_mut().map(Some).collect();
                let mut cur: Vec<&mut ActorStep> = order
                    .iter()
                    .map(|&lane| {
                        let arena = slots[lane].take().expect("lanes are distinct");
                        &mut arena[t]
                    })
                    .collect();
                actor.train_step_batch(
                    &self.prev[..w],
                    &self.active[..w],
                    &mut self.state,
                    &self.masks[..w * vocab],
                    &mut self.rngs[..w],
                    &mut self.scratch,
                    &mut cur,
                    &mut self.actions[..w],
                );
            }
            let mut done_slots: Vec<usize> = Vec::new();
            for (p, &lane) in order.iter().enumerate() {
                let run = runs[lane].as_mut().expect("live lane has a run");
                let action = self.actions[p];
                let (reward, done) = env.step(&mut run.state, action, &mut run.shaper);
                self.prev[p] = Some(action);
                run.actions.push(action);
                run.rewards.push(reward);
                self.lens[lane] = t + 1;
                if done {
                    let LaneRun {
                        state,
                        actions,
                        rewards,
                        ..
                    } = runs[lane].take().expect("live lane has a run");
                    out[lane] = Some(finish_episode(env, &state, actions, rewards));
                    done_slots.push(p);
                }
            }
            // Compact finished slots out, highest physical index first so
            // each swap_remove only moves a still-live slot.
            for &p in done_slots.iter().rev() {
                self.state.swap_remove_lane(p);
                self.rngs.swap_remove(p);
                self.prev.swap_remove(p);
                self.actions.swap_remove(p);
                order.swap_remove(p);
            }
            self.active.truncate(order.len());
            if let Some(start) = start {
                // One histogram sample per emitted token (matching the
                // serial path's count contract) at the amortized cost.
                let us = start.elapsed().as_nanos() as f64 / 1_000.0 / w.max(1) as f64;
                for _ in 0..w {
                    sqlgen_obs::obs_record!("rl.step.latency_us", us);
                }
            }
            t += 1;
        }
        out.into_iter()
            .map(|e| e.expect("every lane finished an episode"))
            .collect()
    }

    /// Runs the critic over every lane's collected token stream in
    /// lockstep, filling `self.csteps[lane][..self.lens[lane]]`.
    /// `crngs[lane]` drives lane `lane`'s dropout draws — the batched
    /// sibling of the per-episode critic RNG of the serial update path.
    /// Input tokens the critic does not own (the actor's BOS/context rows,
    /// `>= critic.vocab_size`) fall back to the critic's own start token,
    /// exactly like the serial forward.
    /// The episode lengths are known up front here, so lanes are packed
    /// **statically**: physical slots sorted by descending length make the
    /// live set a contiguous prefix that only shrinks — the batched state
    /// is truncated to the live width each step instead of dragging
    /// finished lanes through the GEMMs. `crngs[lane]` is cloned into its
    /// physical slot once; each lane still consumes its own stream.
    pub fn critic_forward(&mut self, critic: &CriticNet, batch: usize, crngs: &mut [StdRng]) {
        let b = batch.max(1);
        debug_assert!(self.lens.len() >= b);
        debug_assert_eq!(crngs.len(), b);
        self.cstate = critic.begin_batch(b);
        if self.csteps.len() < b {
            self.csteps.resize_with(b, Vec::new);
        }
        let max_t = self.lens[..b].iter().copied().max().unwrap_or(0);
        // Physical slot `p` → logical lane `order[p]`, longest first.
        let order = sqlgen_nn::ragged_order(&self.lens[..b]);
        let mut prngs: Vec<StdRng> = order.iter().map(|&lane| crngs[lane].clone()).collect();
        self.prev.clear();
        self.prev.resize(b, None);
        self.active.clear();
        self.active.resize(b, true);
        for t in 0..max_t {
            let n_active = order.iter().take_while(|&&l| self.lens[l] > t).count();
            if n_active < self.cstate.batch {
                self.cstate.truncate_lanes(n_active);
            }
            for (p, &lane) in order[..n_active].iter().enumerate() {
                let tok = self.steps[lane][t].input_token;
                self.prev[p] = if tok >= critic.vocab_size {
                    None
                } else {
                    Some(tok)
                };
                let arena = &mut self.csteps[lane];
                while arena.len() <= t {
                    arena.push(CriticStep::default());
                }
            }
            let mut slots: Vec<Option<&mut Vec<CriticStep>>> =
                self.csteps[..b].iter_mut().map(Some).collect();
            let mut cur: Vec<&mut CriticStep> = order[..n_active]
                .iter()
                .map(|&lane| {
                    let arena = slots[lane].take().expect("lanes are distinct");
                    &mut arena[t]
                })
                .collect();
            critic.forward_step_batch(
                &self.prev[..n_active],
                &self.active[..n_active],
                &mut self.cstate,
                &mut prngs[..n_active],
                &mut self.scratch,
                &mut cur,
            );
        }
    }
}
