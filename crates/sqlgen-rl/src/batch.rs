//! Batched lockstep rollout collection with continuous lane refill.
//!
//! Single-stream inference re-reads the full weight matrices once per token
//! (memory-bandwidth bound), and the threaded path cannot help on a
//! single-core host. The batched engine instead advances `B` independent
//! rollouts ("lanes") one token per lockstep iteration: each weight block
//! is read once per iteration and amortized across all lanes via the
//! matrix-matrix kernels in `sqlgen-nn`, raising arithmetic intensity even
//! on one core.
//!
//! Lane ownership mirrors the threaded worker model of [`crate::parallel`]:
//! lane `l` owns its FSM [`GenState`], its [`RewardShaper`], and the RNG
//! stream seeded [`worker_seed`]`(base, l)`. When a lane emits `EOF` its
//! finished query is flushed and the lane immediately restarts on the next
//! pending job — **continuous refill** — so short queries never stall the
//! batch. A refilled lane keeps its RNG stream running (exactly like a
//! worker collecting its next episode), which yields the determinism
//! contract:
//!
//! * every lane's token stream is bit-identical to a serial
//!   [`run_episode_infer`](crate::episode::run_episode_infer) loop over
//!   that lane's seed (the batched kernels accumulate in the same order as
//!   their serial counterparts, and inactive lanes draw no RNG);
//! * for a fixed `(base, n, batch)` the collected episodes are a pure
//!   function of the policy weights — single-threaded lockstep has no
//!   scheduling freedom — so runs reproduce exactly;
//! * `batch = 1` degenerates to one lane whose stream equals the legacy
//!   serial path with worker seed `base ^ 0`.

use crate::env::{RewardShaper, SqlGenEnv};
use crate::episode::{finish_episode, Episode};
use crate::nets::{ActorNet, BatchScratch};
use crate::parallel::worker_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqlgen_fsm::GenState;
use sqlgen_nn::LstmBatchState;

/// One in-flight episode owned by a lane.
struct LaneRun<'a> {
    state: GenState<'a>,
    shaper: RewardShaper,
    actions: Vec<usize>,
    rewards: Vec<f32>,
    /// Index of this episode in the caller's job queue (`0..n`).
    job: usize,
}

/// Reusable buffers for batched lockstep generation. One instance can
/// serve many [`BatchRollout::collect`] calls; buffers are resized (not
/// reallocated) when the batch width or vocabulary stays the same.
#[derive(Default)]
pub struct BatchRollout {
    state: LstmBatchState,
    scratch: BatchScratch,
    /// Row-major `[batch × vocab]` FSM mask block.
    masks: Vec<bool>,
    prev: Vec<Option<usize>>,
    active: Vec<bool>,
    actions: Vec<usize>,
    rngs: Vec<StdRng>,
}

impl BatchRollout {
    pub fn new() -> Self {
        Self::default()
    }

    /// Collects `n` episodes with up to `batch` lockstep lanes, returning
    /// `(job, lane, episode)` tuples in completion order. `job` is the
    /// episode's index in the deterministic refill queue and `lane` the
    /// lane that produced it — enough to replay any lane serially.
    pub fn collect_tagged(
        &mut self,
        actor: &ActorNet,
        env: &SqlGenEnv,
        n: usize,
        batch: usize,
        base: u64,
    ) -> Vec<(usize, usize, Episode)> {
        let b = batch.clamp(1, n.max(1));
        let vocab = env.action_space();
        self.state = actor.begin_batch(b);
        self.masks.clear();
        self.masks.resize(b * vocab, false);
        self.prev.clear();
        self.prev.resize(b, None);
        self.active.clear();
        self.active.resize(b, false);
        self.actions.clear();
        self.actions.resize(b, 0);
        self.rngs.clear();
        self.rngs
            .extend((0..b).map(|w| StdRng::seed_from_u64(worker_seed(base, w))));

        let mut lanes: Vec<Option<LaneRun>> = (0..b).map(|_| None).collect();
        let mut next_job = 0usize;
        let mut out = Vec::with_capacity(n);
        for (lane, slot) in lanes.iter_mut().enumerate() {
            if next_job < n {
                *slot = Some(LaneRun {
                    state: env.reset(),
                    shaper: RewardShaper::new(),
                    actions: Vec::new(),
                    rewards: Vec::new(),
                    job: next_job,
                });
                self.active[lane] = true;
                next_job += 1;
            }
        }

        while self.active.iter().any(|&a| a) {
            let start = sqlgen_obs::timing_enabled().then(std::time::Instant::now);
            for (lane, slot) in lanes.iter().enumerate() {
                if self.active[lane] {
                    slot.as_ref()
                        .expect("active lane has a run")
                        .state
                        .mask_into_row(&mut self.masks, lane);
                }
            }
            actor.infer_step_batch(
                &self.prev,
                &self.active,
                &mut self.state,
                &self.masks,
                &mut self.rngs,
                &mut self.scratch,
                &mut self.actions,
            );
            let mut n_active = 0usize;
            for (lane, slot) in lanes.iter_mut().enumerate() {
                if !self.active[lane] {
                    continue;
                }
                n_active += 1;
                let run = slot.as_mut().expect("active lane has a run");
                let action = self.actions[lane];
                let (reward, done) = env.step(&mut run.state, action, &mut run.shaper);
                self.prev[lane] = Some(action);
                run.actions.push(action);
                run.rewards.push(reward);
                if done {
                    let LaneRun {
                        state,
                        actions,
                        rewards,
                        job,
                        ..
                    } = slot.take().expect("active lane has a run");
                    out.push((job, lane, finish_episode(env, &state, actions, rewards)));
                    if next_job < n {
                        // Refill: fresh episode, zeroed LSTM lane, BOS
                        // input — the lane's RNG stream continues, exactly
                        // like a serial worker starting its next episode.
                        *slot = Some(LaneRun {
                            state: env.reset(),
                            shaper: RewardShaper::new(),
                            actions: Vec::new(),
                            rewards: Vec::new(),
                            job: next_job,
                        });
                        next_job += 1;
                        self.state.reset_lane(lane);
                        self.prev[lane] = None;
                    } else {
                        self.active[lane] = false;
                    }
                }
            }
            if let Some(start) = start {
                // One histogram sample per emitted token (matching the
                // serial path's count contract) at the amortized cost.
                let us = start.elapsed().as_nanos() as f64 / 1_000.0 / n_active.max(1) as f64;
                for _ in 0..n_active {
                    sqlgen_obs::obs_record!("rl.step.latency_us", us);
                }
            }
        }
        out
    }

    /// Collects `n` episodes with up to `batch` lockstep lanes, ordered by
    /// job index (the stable order a serial loop would produce them in).
    pub fn collect(
        &mut self,
        actor: &ActorNet,
        env: &SqlGenEnv,
        n: usize,
        batch: usize,
        base: u64,
    ) -> Vec<Episode> {
        let mut tagged = self.collect_tagged(actor, env, n, batch, base);
        tagged.sort_by_key(|(job, _, _)| *job);
        tagged.into_iter().map(|(_, _, ep)| ep).collect()
    }
}

/// Collects `n` inference episodes with `batch` lockstep lanes (see
/// [`BatchRollout`]). Convenience entry point mirroring
/// [`collect_episodes`](crate::parallel::collect_episodes).
pub fn collect_episodes_batched(
    actor: &ActorNet,
    env: &SqlGenEnv,
    n: usize,
    batch: usize,
    base: u64,
) -> Vec<Episode> {
    BatchRollout::new().collect(actor, env, n, batch, base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use crate::episode::{run_episode_infer, InferRollout};
    use crate::nets::NetConfig;
    use sqlgen_engine::Estimator;
    use sqlgen_fsm::Vocabulary;
    use sqlgen_storage::gen::tpch_database;
    use sqlgen_storage::sample::SampleConfig;

    fn setup() -> (sqlgen_storage::Database, Vocabulary) {
        let db = tpch_database(0.1, 2);
        let vocab = Vocabulary::build(
            &db,
            &SampleConfig {
                k: 8,
                ..Default::default()
            },
        );
        (db, vocab)
    }

    fn actor_for(vocab: &Vocabulary) -> ActorNet {
        ActorNet::new(
            vocab.size(),
            &NetConfig {
                embed_dim: 8,
                hidden: 8,
                layers: 1,
                dropout: 0.0,
            },
            1,
        )
    }

    /// Every lane's token stream must equal a serial `run_episode_infer`
    /// loop over that lane's worker seed — including across refills.
    #[test]
    fn lanes_match_serial_runs_bitwise() {
        let (db, vocab) = setup();
        let est = Estimator::build(&db);
        let env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(1.0, 500.0));
        let actor = actor_for(&vocab);
        let base = 0xfeed;
        for &batch in &[1usize, 3, 4] {
            let n = batch * 2 + 1; // forces refill on at least one lane
            let tagged = BatchRollout::new().collect_tagged(&actor, &env, n, batch, base);
            assert_eq!(tagged.len(), n);
            let b = batch.min(n);
            for lane in 0..b {
                let mut lane_eps: Vec<_> = tagged.iter().filter(|(_, l, _)| *l == lane).collect();
                lane_eps.sort_by_key(|(job, _, _)| *job);
                let mut rng = StdRng::seed_from_u64(worker_seed(base, lane));
                let mut ro = InferRollout::new();
                for (_, _, ep) in lane_eps {
                    let serial = run_episode_infer(&actor, &env, &mut rng, &mut ro);
                    assert_eq!(ep.actions, serial.actions, "lane {lane} batch {batch}");
                    assert_eq!(ep.rewards, serial.rewards, "lane {lane} batch {batch}");
                }
            }
        }
    }

    /// Fixed (seed, batch) must reproduce run-to-run, and `collect` must
    /// order episodes by job index.
    #[test]
    fn collection_is_reproducible_and_job_ordered() {
        let (db, vocab) = setup();
        let est = Estimator::build(&db);
        let env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(1.0, 500.0));
        let actor = actor_for(&vocab);
        let a = collect_episodes_batched(&actor, &env, 7, 4, 0xabc);
        let b = collect_episodes_batched(&actor, &env, 7, 4, 0xabc);
        assert_eq!(a.len(), 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.actions, y.actions);
            assert_eq!(x.rewards, y.rewards);
        }
        let tagged = BatchRollout::new().collect_tagged(&actor, &env, 7, 4, 0xabc);
        let jobs: Vec<usize> = {
            let mut t: Vec<usize> = tagged.iter().map(|(j, _, _)| *j).collect();
            t.sort_unstable();
            t
        };
        assert_eq!(jobs, (0..7).collect::<Vec<_>>());
    }
}
