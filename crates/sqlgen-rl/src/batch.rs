//! Batched lockstep rollout collection with continuous lane refill.
//!
//! Single-stream inference re-reads the full weight matrices once per token
//! (memory-bandwidth bound), and the threaded path cannot help on a
//! single-core host. The batched engine instead advances `B` independent
//! rollouts ("lanes") one token per lockstep iteration: each weight block
//! is read once per iteration and amortized across all lanes via the
//! matrix-matrix kernels in `sqlgen-nn`, raising arithmetic intensity even
//! on one core.
//!
//! Lane ownership mirrors the threaded worker model of [`crate::parallel`]:
//! lane `l` owns its FSM [`GenState`], its [`RewardShaper`], and the RNG
//! stream seeded [`worker_seed`]`(base, l)`. When a lane emits `EOF` its
//! finished query is flushed and the lane immediately restarts on the next
//! pending job — **continuous refill** — so short queries never stall the
//! batch. A refilled lane keeps its RNG stream running (exactly like a
//! worker collecting its next episode), which yields the determinism
//! contract:
//!
//! * every lane's token stream is bit-identical to a serial
//!   [`run_episode_infer`](crate::episode::run_episode_infer) loop over
//!   that lane's seed (the batched kernels accumulate in the same order as
//!   their serial counterparts, and inactive lanes draw no RNG);
//! * for a fixed `(base, n, batch)` the collected episodes are a pure
//!   function of the policy weights — single-threaded lockstep has no
//!   scheduling freedom — so runs reproduce exactly;
//! * `batch = 1` degenerates to one lane whose stream equals the legacy
//!   serial path with worker seed `base ^ 0`.

use crate::env::{RewardShaper, SqlGenEnv};
use crate::episode::{finish_episode, Episode};
use crate::nets::{BatchScratch, InferActor};
use crate::parallel::worker_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqlgen_fsm::GenState;
use sqlgen_nn::LstmBatchState;
use sqlgen_obs::TraceHandle;
use std::time::Instant;

/// Elapsed microseconds since `t0`.
fn us_since(t0: Instant) -> f64 {
    t0.elapsed().as_nanos() as f64 / 1_000.0
}

/// One in-flight episode owned by a lane.
struct LaneRun<'a> {
    state: GenState<'a>,
    shaper: RewardShaper,
    actions: Vec<usize>,
    rewards: Vec<f32>,
    /// Index of this episode in the caller's job queue (`0..n`).
    job: usize,
}

/// Reusable buffers for batched lockstep generation. One instance can
/// serve many [`BatchRollout::collect`] calls; buffers are resized (not
/// reallocated) when the batch width or vocabulary stays the same.
#[derive(Default)]
pub struct BatchRollout {
    state: LstmBatchState,
    scratch: BatchScratch,
    /// Row-major `[batch × vocab]` FSM mask block.
    masks: Vec<bool>,
    prev: Vec<Option<usize>>,
    active: Vec<bool>,
    actions: Vec<usize>,
    rngs: Vec<StdRng>,
}

impl BatchRollout {
    pub fn new() -> Self {
        Self::default()
    }

    /// Collects `n` episodes with up to `batch` lockstep lanes, returning
    /// `(job, lane, episode)` tuples in completion order. `job` is the
    /// episode's index in the deterministic refill queue and `lane` the
    /// lane that produced it — enough to replay any lane serially.
    ///
    /// Once the job queue is exhausted, finished lanes are **compacted
    /// away** ([`Vec::swap_remove`]-style) instead of riding through the
    /// GEMMs inactive: the drain tail runs at the shrinking live width.
    /// Legal because each lane's forward math reads only its own slot —
    /// the batched kernels are bitwise position- and width-independent per
    /// lane — and a lane's RNG stream travels with its slot, so every
    /// episode is unchanged.
    pub fn collect_tagged<A: InferActor>(
        &mut self,
        actor: &A,
        env: &SqlGenEnv,
        n: usize,
        batch: usize,
        base: u64,
    ) -> Vec<(usize, usize, Episode)> {
        let b = batch.clamp(1, n.max(1));
        let vocab = env.action_space();
        self.state = actor.begin_batch(b);
        self.masks.clear();
        self.masks.resize(b * vocab, false);
        self.prev.clear();
        self.prev.resize(b, None);
        self.active.clear();
        self.active.resize(b, true);
        self.actions.clear();
        self.actions.resize(b, 0);
        self.rngs.clear();
        self.rngs
            .extend((0..b).map(|w| StdRng::seed_from_u64(worker_seed(base, w))));

        // `b <= n`, so every slot starts with a job. Physical slot `p`
        // hosts the lane originally numbered `order[p]` (the tag reported
        // in the output tuples and the lane whose RNG stream slot `p`
        // carries).
        let mut order: Vec<usize> = (0..b).collect();
        let mut lanes: Vec<LaneRun> = (0..b)
            .map(|job| LaneRun {
                state: env.reset(),
                shaper: RewardShaper::new(),
                actions: Vec::new(),
                rewards: Vec::new(),
                job,
            })
            .collect();
        let mut next_job = b.min(n);
        let mut out = Vec::with_capacity(n);

        while !order.is_empty() {
            let w = order.len();
            let start = sqlgen_obs::timing_enabled().then(std::time::Instant::now);
            for (p, run) in lanes.iter().enumerate() {
                run.state.mask_into_row(&mut self.masks, p);
            }
            actor.infer_step_batch(
                &self.prev[..w],
                &self.active[..w],
                &mut self.state,
                &self.masks[..w * vocab],
                &mut self.rngs[..w],
                &mut self.scratch,
                &mut self.actions[..w],
            );
            let mut done_slots: Vec<usize> = Vec::new();
            for (p, run) in lanes.iter_mut().enumerate() {
                let action = self.actions[p];
                let (reward, done) = env.step(&mut run.state, action, &mut run.shaper);
                self.prev[p] = Some(action);
                run.actions.push(action);
                run.rewards.push(reward);
                if done {
                    if next_job < n {
                        // Refill: fresh episode, zeroed LSTM lane, BOS
                        // input — the lane's RNG stream continues, exactly
                        // like a serial worker starting its next episode.
                        let fresh = LaneRun {
                            state: env.reset(),
                            shaper: RewardShaper::new(),
                            actions: Vec::new(),
                            rewards: Vec::new(),
                            job: next_job,
                        };
                        let LaneRun {
                            state,
                            actions,
                            rewards,
                            job,
                            ..
                        } = std::mem::replace(run, fresh);
                        out.push((job, order[p], finish_episode(env, &state, actions, rewards)));
                        next_job += 1;
                        self.state.reset_lane(p);
                        self.prev[p] = None;
                    } else {
                        done_slots.push(p);
                    }
                }
            }
            // Compact drained slots out, highest physical index first so
            // each swap_remove only moves a still-live slot.
            for &p in done_slots.iter().rev() {
                let LaneRun {
                    state,
                    actions,
                    rewards,
                    job,
                    ..
                } = lanes.swap_remove(p);
                out.push((job, order[p], finish_episode(env, &state, actions, rewards)));
                self.state.swap_remove_lane(p);
                self.rngs.swap_remove(p);
                self.prev.swap_remove(p);
                self.actions.swap_remove(p);
                order.swap_remove(p);
            }
            self.active.truncate(order.len());
            if let Some(start) = start {
                // One histogram sample per emitted token (matching the
                // serial path's count contract) at the amortized cost.
                let us = start.elapsed().as_nanos() as f64 / 1_000.0 / w.max(1) as f64;
                for _ in 0..w {
                    sqlgen_obs::obs_record!("rl.step.latency_us", us);
                }
            }
        }
        out
    }

    /// Collects `n` episodes with up to `batch` lockstep lanes, ordered by
    /// job index (the stable order a serial loop would produce them in).
    pub fn collect<A: InferActor>(
        &mut self,
        actor: &A,
        env: &SqlGenEnv,
        n: usize,
        batch: usize,
        base: u64,
    ) -> Vec<Episode> {
        let mut tagged = self.collect_tagged(actor, env, n, batch, base);
        tagged.sort_by_key(|(job, _, _)| *job);
        tagged.into_iter().map(|(_, _, ep)| ep).collect()
    }
}

/// One generation job for the pull-based [`BatchRollout::run_jobs`] engine.
///
/// Unlike [`BatchRollout::collect_tagged`] — where a lane's RNG stream spans
/// every episode the lane produces — a job carries its **own** seed and gets
/// a fresh RNG and a zeroed LSTM lane at assignment. Its token stream is
/// therefore a pure function of `(weights, env, seed)`: independent of the
/// batch width, of which lane it lands on, and of whatever co-tenant jobs
/// share the batch. That is the determinism contract a serving batcher
/// needs to coalesce unrelated requests without perturbing any of them.
pub struct Job<'e, 'v: 'e> {
    /// Environment the episode rolls out in. Jobs in one `run_jobs` call may
    /// use different environments (constraints), but every environment must
    /// expose the same action space as the actor vocabulary.
    pub env: &'e SqlGenEnv<'v>,
    /// Seed for this job's private RNG stream.
    pub seed: u64,
    /// Absolute deadline; once passed the job aborts mid-generation and is
    /// reported as [`JobOutcome::Expired`].
    pub deadline: Option<Instant>,
    /// Caller-chosen id handed back with the outcome.
    pub tag: u64,
    /// Request trace to attribute this job's lane time to: an `episode`
    /// span per job plus accumulated `estimator` and `refill` phases.
    /// Untraced jobs (`None`) pay one branch per token and nothing else.
    pub trace: Option<TraceHandle>,
}

/// Terminal state of one [`Job`].
pub enum JobOutcome {
    Done(Box<Episode>),
    /// The deadline passed before the episode finished.
    Expired,
}

/// One in-flight job owned by a lane (multi-env variant of [`LaneRun`]).
struct JobRun<'e, 'v: 'e> {
    env: &'e SqlGenEnv<'v>,
    state: GenState<'v>,
    shaper: RewardShaper,
    actions: Vec<usize>,
    rewards: Vec<f32>,
    deadline: Option<Instant>,
    tag: u64,
    trace: Option<TraceHandle>,
    /// When this job was assigned to its lane (traced jobs only).
    assigned: Option<Instant>,
    /// Accumulated `env.step` time — estimator-dominated (the shaped
    /// reward's cardinality/cost probes), flushed to the trace once at
    /// completion so the hot loop never touches the trace mutex.
    est_us: f64,
}

impl JobRun<'_, '_> {
    /// Flushes this job's trace attribution: the `episode` wall span plus
    /// the accumulated `estimator` time and token count.
    fn flush_trace(&self, tokens: usize) {
        let Some(handle) = &self.trace else {
            return;
        };
        let now = Instant::now();
        if let Some(assigned) = self.assigned {
            handle.span_between("episode", assigned, now);
        }
        handle.accum("estimator", self.est_us);
        handle.trace.annotate_add("tokens", tokens as f64);
    }
}

impl BatchRollout {
    /// Runs jobs pulled from `source` through up to `lanes` lockstep lanes,
    /// reporting each outcome to `sink` as it completes. A finishing (or
    /// expiring) lane immediately pulls its next job — continuous refill —
    /// so `source` may keep yielding work admitted after the call started
    /// (a live request queue). Returns the number of episodes completed.
    ///
    /// Each assignment zeroes the lane (LSTM state, BOS input) and reseeds
    /// its RNG from [`Job::seed`]; see [`Job`] for the determinism contract.
    /// Outcome order is completion order, deterministic for a fixed job
    /// stream (single-threaded lockstep has no scheduling freedom).
    pub fn run_jobs<'e, 'v: 'e, A: InferActor>(
        &mut self,
        actor: &A,
        lanes: usize,
        mut source: impl FnMut() -> Option<Job<'e, 'v>>,
        mut sink: impl FnMut(u64, JobOutcome),
    ) -> usize {
        let b = lanes.max(1);
        let vocab = actor.vocab_size();
        self.state = actor.begin_batch(b);
        self.masks.clear();
        self.masks.resize(b * vocab, false);
        self.prev.clear();
        self.prev.resize(b, None);
        self.active.clear();
        self.active.resize(b, false);
        self.actions.clear();
        self.actions.resize(b, 0);
        self.rngs.clear();
        // Placeholder streams; every assignment reseeds its lane from the
        // job's own seed before the lane draws anything.
        self.rngs
            .extend((0..b).map(|w| StdRng::seed_from_u64(w as u64)));

        let mut slots: Vec<Option<JobRun>> = (0..b).map(|_| None).collect();
        let mut completed = 0usize;
        for (lane, slot) in slots.iter_mut().enumerate() {
            if !Self::refill_lane(
                &mut source,
                slot,
                lane,
                vocab,
                &mut self.state,
                &mut self.prev,
                &mut self.rngs,
            ) {
                break;
            }
            self.active[lane] = true;
        }

        while self.active.iter().any(|&a| a) {
            // Deadline sweep before spending another lockstep iteration.
            // One clock read per iteration, and only when some lane has a
            // deadline at all.
            if slots.iter().flatten().any(|run| run.deadline.is_some()) {
                let now = Instant::now();
                for (lane, slot) in slots.iter_mut().enumerate() {
                    let expired = slot
                        .as_ref()
                        .is_some_and(|run| run.deadline.is_some_and(|d| now >= d));
                    if expired {
                        let run = slot.take().expect("expired lane has a run");
                        run.flush_trace(run.actions.len());
                        sink(run.tag, JobOutcome::Expired);
                        if !Self::refill_lane(
                            &mut source,
                            slot,
                            lane,
                            vocab,
                            &mut self.state,
                            &mut self.prev,
                            &mut self.rngs,
                        ) {
                            self.active[lane] = false;
                        }
                    }
                }
                if !self.active.iter().any(|&a| a) {
                    break;
                }
            }

            let start = sqlgen_obs::timing_enabled().then(Instant::now);
            for (lane, slot) in slots.iter().enumerate() {
                if self.active[lane] {
                    slot.as_ref()
                        .expect("active lane has a run")
                        .state
                        .mask_into_row(&mut self.masks, lane);
                }
            }
            actor.infer_step_batch(
                &self.prev,
                &self.active,
                &mut self.state,
                &self.masks,
                &mut self.rngs,
                &mut self.scratch,
                &mut self.actions,
            );
            let mut n_active = 0usize;
            for (lane, slot) in slots.iter_mut().enumerate() {
                if !self.active[lane] {
                    continue;
                }
                n_active += 1;
                let run = slot.as_mut().expect("active lane has a run");
                let action = self.actions[lane];
                // Traced jobs time each env.step locally (estimator-
                // dominated: the shaped reward's cardinality/cost probes);
                // untraced jobs pay one branch, no clock read.
                let step_t0 = run.trace.is_some().then(Instant::now);
                let (reward, done) = run.env.step(&mut run.state, action, &mut run.shaper);
                if let Some(t0) = step_t0 {
                    run.est_us += us_since(t0);
                }
                self.prev[lane] = Some(action);
                run.actions.push(action);
                run.rewards.push(reward);
                if done {
                    let mut run = slot.take().expect("active lane has a run");
                    let fin_t0 = run.trace.is_some().then(Instant::now);
                    let ep = finish_episode(run.env, &run.state, run.actions, run.rewards);
                    if let Some(t0) = fin_t0 {
                        // finish_episode re-measures the final query; that
                        // probe is estimator time too.
                        run.est_us += us_since(t0);
                    }
                    run.actions = Vec::new();
                    run.rewards = Vec::new();
                    run.flush_trace(ep.actions.len());
                    sink(run.tag, JobOutcome::Done(Box::new(ep)));
                    completed += 1;
                    if !Self::refill_lane(
                        &mut source,
                        slot,
                        lane,
                        vocab,
                        &mut self.state,
                        &mut self.prev,
                        &mut self.rngs,
                    ) {
                        self.active[lane] = false;
                    }
                }
            }
            sqlgen_obs::obs_record!("rl.batch.occupancy", n_active as f64);
            if let Some(start) = start {
                // One histogram sample per emitted token (matching the
                // serial path's count contract) at the amortized cost.
                let us = start.elapsed().as_nanos() as f64 / 1_000.0 / n_active.max(1) as f64;
                for _ in 0..n_active {
                    sqlgen_obs::obs_record!("rl.step.latency_us", us);
                }
            }
        }
        completed
    }

    /// Pulls the next job into an empty lane slot; `false` when the source
    /// is (currently) dry.
    fn refill_lane<'e, 'v: 'e>(
        source: &mut impl FnMut() -> Option<Job<'e, 'v>>,
        slot: &mut Option<JobRun<'e, 'v>>,
        lane: usize,
        vocab: usize,
        state: &mut LstmBatchState,
        prev: &mut [Option<usize>],
        rngs: &mut [StdRng],
    ) -> bool {
        match source() {
            Some(job) => {
                assert_eq!(
                    job.env.action_space(),
                    vocab,
                    "job env action space must match the actor vocabulary"
                );
                let t0 = job.trace.is_some().then(Instant::now);
                state.reset_lane(lane);
                prev[lane] = None;
                rngs[lane] = StdRng::seed_from_u64(job.seed);
                *slot = Some(JobRun {
                    state: job.env.reset(),
                    env: job.env,
                    shaper: RewardShaper::new(),
                    actions: Vec::new(),
                    rewards: Vec::new(),
                    deadline: job.deadline,
                    tag: job.tag,
                    assigned: t0,
                    est_us: 0.0,
                    trace: job.trace,
                });
                if let (Some(t0), Some(run)) = (t0, slot.as_ref()) {
                    // Lane reset + reseed + env reset on behalf of the
                    // incoming job.
                    if let Some(handle) = &run.trace {
                        handle.accum("refill", us_since(t0));
                    }
                }
                true
            }
            None => false,
        }
    }
}

/// Runs a batch of seeded jobs to completion and returns `(tag, outcome)`
/// pairs in completion order. Convenience wrapper over
/// [`BatchRollout::run_jobs`] for callers with a fixed job list.
pub fn run_jobs_batched<'e, 'v: 'e, A: InferActor>(
    actor: &A,
    jobs: Vec<Job<'e, 'v>>,
    lanes: usize,
) -> Vec<(u64, JobOutcome)> {
    let mut queue = std::collections::VecDeque::from(jobs);
    let mut out = Vec::with_capacity(queue.len());
    BatchRollout::new().run_jobs(
        actor,
        lanes,
        || queue.pop_front(),
        |tag, outcome| out.push((tag, outcome)),
    );
    out
}

/// Collects `n` inference episodes with `batch` lockstep lanes (see
/// [`BatchRollout`]). Convenience entry point mirroring
/// [`collect_episodes`](crate::parallel::collect_episodes).
pub fn collect_episodes_batched<A: InferActor>(
    actor: &A,
    env: &SqlGenEnv,
    n: usize,
    batch: usize,
    base: u64,
) -> Vec<Episode> {
    BatchRollout::new().collect(actor, env, n, batch, base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use crate::episode::{run_episode_infer, InferRollout};
    use crate::nets::{ActorNet, NetConfig};
    use sqlgen_engine::Estimator;
    use sqlgen_fsm::Vocabulary;
    use sqlgen_storage::gen::tpch_database;
    use sqlgen_storage::sample::SampleConfig;

    fn setup() -> (sqlgen_storage::Database, Vocabulary) {
        let db = tpch_database(0.1, 2);
        let vocab = Vocabulary::build(
            &db,
            &SampleConfig {
                k: 8,
                ..Default::default()
            },
        );
        (db, vocab)
    }

    fn actor_for(vocab: &Vocabulary) -> ActorNet {
        ActorNet::new(
            vocab.size(),
            &NetConfig {
                embed_dim: 8,
                hidden: 8,
                layers: 1,
                dropout: 0.0,
            },
            1,
        )
    }

    /// Every lane's token stream must equal a serial `run_episode_infer`
    /// loop over that lane's worker seed — including across refills.
    #[test]
    fn lanes_match_serial_runs_bitwise() {
        let (db, vocab) = setup();
        let est = Estimator::build(&db);
        let env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(1.0, 500.0));
        let actor = actor_for(&vocab);
        let base = 0xfeed;
        for &batch in &[1usize, 3, 4] {
            let n = batch * 2 + 1; // forces refill on at least one lane
            let tagged = BatchRollout::new().collect_tagged(&actor, &env, n, batch, base);
            assert_eq!(tagged.len(), n);
            let b = batch.min(n);
            for lane in 0..b {
                let mut lane_eps: Vec<_> = tagged.iter().filter(|(_, l, _)| *l == lane).collect();
                lane_eps.sort_by_key(|(job, _, _)| *job);
                let mut rng = StdRng::seed_from_u64(worker_seed(base, lane));
                let mut ro = InferRollout::new();
                for (_, _, ep) in lane_eps {
                    let serial = run_episode_infer(&actor, &env, &mut rng, &mut ro);
                    assert_eq!(ep.actions, serial.actions, "lane {lane} batch {batch}");
                    assert_eq!(ep.rewards, serial.rewards, "lane {lane} batch {batch}");
                }
            }
        }
    }

    /// A job's episode must equal a serial `run_episode_infer` with the
    /// job's own seed — at every batch width, regardless of co-tenant jobs
    /// or which constraint each job carries.
    #[test]
    fn jobs_match_serial_runs_at_any_batch_width() {
        let (db, vocab) = setup();
        let est = Estimator::build(&db);
        let env_a = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(1.0, 500.0));
        let env_b = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_point(50.0));
        let actor = actor_for(&vocab);
        let seeds: Vec<u64> = (0..7).map(|i| 0x1000 + 7 * i).collect();

        // Serial references: one fresh RNG per seed, env alternating a/b.
        let mut serial = Vec::new();
        for (i, &seed) in seeds.iter().enumerate() {
            let env = if i.is_multiple_of(2) { &env_a } else { &env_b };
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ro = InferRollout::new();
            serial.push(run_episode_infer(&actor, env, &mut rng, &mut ro));
        }

        for &lanes in &[1usize, 3, 8] {
            let jobs: Vec<Job> = seeds
                .iter()
                .enumerate()
                .map(|(i, &seed)| Job {
                    env: if i % 2 == 0 { &env_a } else { &env_b },
                    seed,
                    deadline: None,
                    trace: None,
                    tag: i as u64,
                })
                .collect();
            let out = run_jobs_batched(&actor, jobs, lanes);
            assert_eq!(out.len(), seeds.len());
            for (tag, outcome) in out {
                let JobOutcome::Done(ep) = outcome else {
                    panic!("job {tag} expired without a deadline");
                };
                let want = &serial[tag as usize];
                assert_eq!(ep.actions, want.actions, "job {tag} lanes {lanes}");
                assert_eq!(ep.rewards, want.rewards, "job {tag} lanes {lanes}");
            }
        }
    }

    /// Jobs whose deadline has passed are reported `Expired` (aborting
    /// mid-generation) while co-tenant jobs without deadlines complete
    /// bit-exactly.
    #[test]
    fn deadline_expiry_aborts_without_perturbing_neighbors() {
        let (db, vocab) = setup();
        let est = Estimator::build(&db);
        let env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(1.0, 500.0));
        let actor = actor_for(&vocab);

        let mut rng = StdRng::seed_from_u64(0x77);
        let mut ro = InferRollout::new();
        let want = run_episode_infer(&actor, &env, &mut rng, &mut ro);

        let past = Instant::now() - std::time::Duration::from_millis(1);
        let jobs = vec![
            Job {
                env: &env,
                seed: 0x77,
                deadline: None,
                tag: 0,
                trace: None,
            },
            Job {
                env: &env,
                seed: 0x88,
                deadline: Some(past),
                tag: 1,
                trace: None,
            },
            Job {
                env: &env,
                seed: 0x99,
                deadline: Some(past),
                tag: 2,
                trace: None,
            },
        ];
        let out = run_jobs_batched(&actor, jobs, 3);
        assert_eq!(out.len(), 3);
        let mut done = 0;
        let mut expired = 0;
        for (tag, outcome) in out {
            match outcome {
                JobOutcome::Done(ep) => {
                    done += 1;
                    assert_eq!(tag, 0);
                    assert_eq!(ep.actions, want.actions);
                    assert_eq!(ep.rewards, want.rewards);
                }
                JobOutcome::Expired => {
                    expired += 1;
                    assert!(tag == 1 || tag == 2);
                }
            }
        }
        assert_eq!((done, expired), (1, 2));
    }

    /// The source is consulted again after every completion, so jobs
    /// admitted "live" (after the call started) still run — the continuous
    /// refill contract a serving batcher relies on.
    #[test]
    fn source_is_polled_continuously() {
        let (db, vocab) = setup();
        let est = Estimator::build(&db);
        let env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(1.0, 500.0));
        let actor = actor_for(&vocab);
        // Yield jobs one at a time; the queue "arrives" while earlier jobs
        // are in flight.
        let mut next = 0u64;
        let mut outcomes = Vec::new();
        let completed = BatchRollout::new().run_jobs(
            &actor,
            2,
            || {
                if next < 5 {
                    next += 1;
                    Some(Job {
                        env: &env,
                        seed: next,
                        deadline: None,
                        tag: next,
                        trace: None,
                    })
                } else {
                    None
                }
            },
            |tag, outcome| outcomes.push((tag, outcome)),
        );
        assert_eq!(completed, 5);
        assert_eq!(outcomes.len(), 5);
    }

    /// After an EOS → refill, the refilled lane must carry its own job's
    /// constraint target, a fresh FSM state, and untainted estimator-cache
    /// keying: every episode from a refilled slot (job index ≥ lane count)
    /// must be bit-identical — token stream, rewards, measured value,
    /// satisfied flag, rendered SQL — to a fresh serial run of the same
    /// seed against the same constraint with its own private cache, even
    /// though the batched run shares one estimator cache across jobs with
    /// *different* constraints (a keying bug would surface as a measured
    /// or reward drift here).
    #[test]
    fn refilled_lanes_match_fresh_serial_runs_with_caches() {
        use crate::cache::EstimatorCache;
        use sqlgen_engine::render;
        let (db, vocab) = setup();
        let est = Estimator::build(&db);
        let shared = EstimatorCache::new(256);
        let env_a = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(1.0, 500.0))
            .with_cache(&shared);
        let env_b = SqlGenEnv::new(&vocab, &est, Constraint::cost_point(50.0)).with_cache(&shared);
        let actor = actor_for(&vocab);
        let lanes = 2usize;
        let seeds: Vec<u64> = (0..6).map(|i| 0xBEE5 + 13 * i).collect();

        let jobs: Vec<Job> = seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| Job {
                env: if i % 2 == 0 { &env_a } else { &env_b },
                seed,
                deadline: None,
                trace: None,
                tag: i as u64,
            })
            .collect();
        let out = run_jobs_batched(&actor, jobs, lanes);
        assert_eq!(out.len(), seeds.len());

        let mut refilled = 0;
        for (tag, outcome) in out {
            let JobOutcome::Done(ep) = outcome else {
                panic!("job {tag} expired without a deadline");
            };
            let i = tag as usize;
            if i >= lanes {
                refilled += 1;
            }
            let solo_cache = EstimatorCache::new(256);
            let env = if i.is_multiple_of(2) {
                SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(1.0, 500.0))
            } else {
                SqlGenEnv::new(&vocab, &est, Constraint::cost_point(50.0))
            }
            .with_cache(&solo_cache);
            let mut rng = StdRng::seed_from_u64(seeds[i]);
            let mut ro = InferRollout::new();
            let want = run_episode_infer(&actor, &env, &mut rng, &mut ro);
            assert_eq!(ep.actions, want.actions, "job {tag}: token stream drifted");
            assert_eq!(ep.rewards, want.rewards, "job {tag}: reward drifted");
            assert_eq!(
                ep.measured.to_bits(),
                want.measured.to_bits(),
                "job {tag}: estimator measurement drifted"
            );
            assert_eq!(ep.satisfied, want.satisfied, "job {tag}: satisfied drifted");
            assert_eq!(
                render(&ep.statement),
                render(&want.statement),
                "job {tag}: statement drifted"
            );
        }
        assert_eq!(
            refilled,
            seeds.len() - lanes,
            "expected every job past the initial lane fill to run in a refilled slot"
        );
    }

    /// Fixed (seed, batch) must reproduce run-to-run, and `collect` must
    /// order episodes by job index.
    #[test]
    fn collection_is_reproducible_and_job_ordered() {
        let (db, vocab) = setup();
        let est = Estimator::build(&db);
        let env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(1.0, 500.0));
        let actor = actor_for(&vocab);
        let a = collect_episodes_batched(&actor, &env, 7, 4, 0xabc);
        let b = collect_episodes_batched(&actor, &env, 7, 4, 0xabc);
        assert_eq!(a.len(), 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.actions, y.actions);
            assert_eq!(x.rewards, y.rewards);
        }
        let tagged = BatchRollout::new().collect_tagged(&actor, &env, 7, 4, 0xabc);
        let jobs: Vec<usize> = {
            let mut t: Vec<usize> = tagged.iter().map(|(j, _, _)| *j).collect();
            t.sort_unstable();
            t
        };
        assert_eq!(jobs, (0..7).collect::<Vec<_>>());
    }
}
