//! The RL environment (paper §3.2): the database system.
//!
//! The environment owns the FSM (action masking), the estimator + cost
//! model (reward computation from *estimated* cardinality/cost — "we do not
//! use the real cardinality for the efficiency issue"), and the constraint.

use crate::cache::EstimatorCache;
use crate::constraint::{Constraint, Metric};
use sqlgen_engine::{CostModel, Estimator, ExecError, ExecOptions, Executor, Statement};
use sqlgen_fsm::{FsmConfig, GenState, Vocabulary};
use sqlgen_storage::{Database, PagedDb};
use std::sync::atomic::{AtomicU64, Ordering};

/// Weight of the potential-based shaping term (see [`RewardShaper`]).
pub const DEFAULT_PARTIAL_WEIGHT: f32 = 0.5;
/// Weight of the terminal (complete-query) reward.
pub const DEFAULT_TERMINAL_WEIGHT: f32 = 4.0;

/// How intermediate rewards are emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RewardMode {
    /// Potential-based shaping (the default; see [`RewardShaper`]).
    #[default]
    Shaped,
    /// The paper's literal scheme: the raw §4.2 reward at every executable
    /// boundary. Kept for the reward-shaping ablation bench — it is
    /// vulnerable to boundary-padding reward hacking (DESIGN.md §5).
    RawBoundary,
}

/// Per-query execution budget for [`RewardSource::Execute`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecBudget {
    /// Abort (and fall back to the estimator) when an intermediate join
    /// result exceeds this many tuples.
    pub max_rows: usize,
    /// Per-query wall-clock budget in microseconds. `0` (the default)
    /// disables the deadline, keeping rewards fully deterministic —
    /// only the rows budget bounds execution.
    pub max_micros: u64,
}

impl Default for ExecBudget {
    fn default() -> Self {
        ExecBudget {
            max_rows: 2_000_000,
            max_micros: 0,
        }
    }
}

/// Where the cardinality reward signal comes from (DESIGN.md §14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RewardSource {
    /// Histogram-based estimates — the paper's choice ("we do not use the
    /// real cardinality for the efficiency issue").
    #[default]
    Estimator,
    /// Execute the query against the attached [`ExecDb`] and reward on
    /// the *true* cardinality, within `budget`. Failed executions
    /// (row-limit, timeout, malformed query) fall back to the estimate
    /// so training never stalls; [`ExecStats`] counts both paths.
    Execute { budget: ExecBudget },
}

/// A store the execute reward source can run queries against.
pub enum ExecDb {
    /// In-memory columnar tables.
    Mem(Database),
    /// Disk-backed slotted pages behind the buffer pool.
    Paged(PagedDb),
}

impl ExecDb {
    /// True result cardinality of `stmt` under `opts`.
    pub fn cardinality(&self, stmt: &Statement, opts: ExecOptions) -> Result<u64, ExecError> {
        match self {
            ExecDb::Mem(db) => Executor::with_options(db, opts).cardinality(stmt),
            ExecDb::Paged(db) => Executor::with_options(db, opts).cardinality(stmt),
        }
    }

    /// The in-memory database, when this store is one.
    pub fn as_mem(&self) -> Option<&Database> {
        match self {
            ExecDb::Mem(db) => Some(db),
            ExecDb::Paged(_) => None,
        }
    }

    /// The paged store, when this store is one.
    pub fn as_paged(&self) -> Option<&PagedDb> {
        match self {
            ExecDb::Paged(db) => Some(db),
            ExecDb::Mem(_) => None,
        }
    }
}

/// Execute-reward counters: how many rewards came from real execution
/// versus estimator fallback (surfaced in `BENCH_storage.json`).
#[derive(Debug, Default)]
pub struct ExecStats {
    pub executed: AtomicU64,
    pub fallbacks: AtomicU64,
}

impl ExecStats {
    pub fn snapshot(&self) -> (u64, u64) {
        (
            self.executed.load(Ordering::Relaxed),
            self.fallbacks.load(Ordering::Relaxed),
        )
    }
}

/// Potential-based reward shaping over executable-prefix rewards.
///
/// The paper rewards every executable partial query (§4.2 Remark) to
/// densify the training signal. Summing those raw boundary rewards,
/// however, makes the *return* maximizable by padding the query with many
/// mediocre boundaries instead of ending on a satisfying query — a reward
/// hack we observed empirically (DESIGN.md §5). The standard fix (Ng et
/// al., 1999) is to emit the *difference* of a potential function instead:
///
/// `Φ(s) :=` §4.2 reward of the longest executable prefix of `s`
/// (carried over non-executable states), and
/// `r_t = w·(Φ(s_{t+1}) − Φ(s_t)) + [done]·W·Φ(s_T)`.
///
/// The shaping terms telescope to `w·Φ(s_T)`, so every trajectory's return
/// is `(w + W)·Φ(s_T)` — exactly proportional to the final query's §4.2
/// reward — while the agent still receives feedback at every clause
/// boundary.
#[derive(Debug, Clone, Default)]
pub struct RewardShaper {
    last_phi: f32,
}

impl RewardShaper {
    pub fn new() -> Self {
        RewardShaper::default()
    }

    /// The shaped reward after an action has been applied to `state`.
    pub fn shaped_reward(&mut self, env: &SqlGenEnv, state: &GenState, done: bool) -> f32 {
        match env.reward_mode {
            RewardMode::Shaped => {
                let phi = match state.partial_statement() {
                    Some(stmt) => env.constraint.reward(env.measure(&stmt)) as f32,
                    None => self.last_phi,
                };
                let delta = phi - self.last_phi;
                self.last_phi = phi;
                env.partial_weight * delta + if done { env.terminal_weight * phi } else { 0.0 }
            }
            RewardMode::RawBoundary => {
                let raw = env.reward_of(state);
                if done {
                    env.terminal_weight * raw
                } else {
                    raw
                }
            }
        }
    }
}

/// The SQL-generation environment.
pub struct SqlGenEnv<'a> {
    pub vocab: &'a Vocabulary,
    pub fsm_config: FsmConfig,
    pub estimator: &'a Estimator,
    pub cost_model: CostModel,
    pub constraint: Constraint,
    /// Scale applied to rewards of executable partial queries.
    pub partial_weight: f32,
    /// Scale applied to the complete query's reward at `EOF`.
    pub terminal_weight: f32,
    /// Intermediate-reward scheme (shaped by default).
    pub reward_mode: RewardMode,
    /// Live database for the latency metric (optional; estimates need no
    /// data access).
    pub db: Option<&'a Database>,
    /// Optional memo cache for estimator lookups (pure bit-exact
    /// memoization; never consulted for [`Metric::Latency`]).
    pub cache: Option<&'a EstimatorCache>,
    /// Cardinality reward signal: estimates (default) or real execution.
    pub reward_source: RewardSource,
    /// Store for [`RewardSource::Execute`] (in-memory or paged).
    pub exec_db: Option<&'a ExecDb>,
    /// Executed-vs-fallback counters for the execute reward source.
    pub exec_stats: ExecStats,
}

impl<'a> SqlGenEnv<'a> {
    pub fn new(vocab: &'a Vocabulary, estimator: &'a Estimator, constraint: Constraint) -> Self {
        SqlGenEnv {
            vocab,
            fsm_config: FsmConfig::default(),
            estimator,
            cost_model: CostModel::default(),
            constraint,
            partial_weight: DEFAULT_PARTIAL_WEIGHT,
            terminal_weight: DEFAULT_TERMINAL_WEIGHT,
            reward_mode: RewardMode::default(),
            db: None,
            cache: None,
            reward_source: RewardSource::default(),
            exec_db: None,
            exec_stats: ExecStats::default(),
        }
    }

    pub fn with_fsm_config(mut self, cfg: FsmConfig) -> Self {
        self.fsm_config = cfg;
        self
    }

    pub fn with_reward_mode(mut self, mode: RewardMode) -> Self {
        self.reward_mode = mode;
        self
    }

    /// Selects where cardinality rewards come from (estimates by default).
    pub fn with_reward_source(mut self, source: RewardSource) -> Self {
        self.reward_source = source;
        self
    }

    /// Attaches the store [`RewardSource::Execute`] runs queries against.
    pub fn with_exec_db(mut self, db: &'a ExecDb) -> Self {
        self.exec_db = Some(db);
        self
    }

    /// Attaches the live database, enabling [`Metric::Latency`].
    pub fn with_database(mut self, db: &'a Database) -> Self {
        self.db = Some(db);
        self
    }

    /// Attaches an estimator memo cache consulted by [`SqlGenEnv::measure`]
    /// for the cardinality and cost metrics (pure functions of the rendered
    /// statement, so memoization is bit-exact). Latency always executes.
    pub fn with_cache(mut self, cache: &'a EstimatorCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Starts a new episode: an empty query.
    pub fn reset(&self) -> GenState<'a> {
        GenState::new(self.vocab, self.fsm_config.clone())
    }

    /// The constrained metric of a statement, per the constraint's kind.
    /// Cardinality/cost lookups go through the memo cache when one is
    /// attached; latency never does (it measures wall-clock execution).
    pub fn measure(&self, stmt: &Statement) -> f64 {
        match self.constraint.metric {
            Metric::Cardinality => match self.reward_source {
                RewardSource::Estimator => match self.cache {
                    Some(c) => c
                        .get_or_insert_with(&format!("k{}", sqlgen_engine::render(stmt)), || {
                            self.estimator.cardinality(stmt)
                        }),
                    None => self.estimator.cardinality(stmt),
                },
                RewardSource::Execute { budget } => {
                    // Executed cardinalities live under a distinct "x" key
                    // prefix: they are not interchangeable with estimates.
                    let run = || self.execute_cardinality(stmt, budget);
                    match self.cache {
                        Some(c) => {
                            c.get_or_insert_with(&format!("x{}", sqlgen_engine::render(stmt)), run)
                        }
                        None => run(),
                    }
                }
            },
            Metric::Cost => match self.cache {
                Some(c) => c
                    .get_or_insert_with(&format!("c{}", sqlgen_engine::render(stmt)), || {
                        self.cost_model.cost(self.estimator, stmt)
                    }),
                None => self.cost_model.cost(self.estimator, stmt),
            },
            Metric::Latency => {
                let db = self.db.expect(
                    "latency metric requires SqlGenEnv::with_database                      (estimates cannot measure wall-clock time)",
                );
                let ex = Executor::with_options(
                    db,
                    ExecOptions {
                        max_rows: 5_000_000,
                        deadline: None,
                    },
                );
                let start = std::time::Instant::now();
                // Failed executions (e.g. row-limit) count as very slow.
                match ex.cardinality(stmt) {
                    Ok(_) => start.elapsed().as_secs_f64() * 1e6,
                    Err(_) => f64::INFINITY,
                }
            }
        }
    }

    /// Real-execution cardinality within `budget`, falling back to the
    /// estimate when execution errors out or blows the budget.
    fn execute_cardinality(&self, stmt: &Statement, budget: ExecBudget) -> f64 {
        let db = self.exec_db.expect(
            "RewardSource::Execute requires SqlGenEnv::with_exec_db \
             (no store attached to run queries against)",
        );
        let opts = ExecOptions {
            max_rows: budget.max_rows,
            deadline: (budget.max_micros > 0).then(|| {
                std::time::Instant::now() + std::time::Duration::from_micros(budget.max_micros)
            }),
        };
        match db.cardinality(stmt, opts) {
            Ok(n) => {
                self.exec_stats.executed.fetch_add(1, Ordering::Relaxed);
                n as f64
            }
            Err(_) => {
                self.exec_stats.fallbacks.fetch_add(1, Ordering::Relaxed);
                self.estimator.cardinality(stmt)
            }
        }
    }

    /// Whether a statement satisfies the constraint (on estimates, like the
    /// paper's evaluation).
    pub fn satisfies(&self, stmt: &Statement) -> bool {
        self.constraint.satisfied(self.measure(stmt))
    }

    /// The §4.2 step reward for the current (partial or complete) state:
    /// executable → constraint reward of the estimated metric, else 0.
    pub fn reward_of(&self, state: &GenState) -> f32 {
        match state.partial_statement() {
            Some(stmt) => self.constraint.reward(self.measure(&stmt)) as f32,
            None => 0.0,
        }
    }

    /// Applies an action and returns `(shaped reward, done)`. The shaper
    /// carries the episode's potential; use one shaper per episode.
    pub fn step(
        &self,
        state: &mut GenState<'a>,
        action: usize,
        shaper: &mut RewardShaper,
    ) -> (f32, bool) {
        state
            .apply(action)
            .expect("environment only offers masked actions");
        let done = state.is_complete();
        (shaper.shaped_reward(self, state, done), done)
    }

    /// The action-space size.
    pub fn action_space(&self) -> usize {
        self.vocab.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sqlgen_storage::gen::tpch_database;
    use sqlgen_storage::sample::SampleConfig;

    fn setup() -> (sqlgen_storage::Database, Vocabulary) {
        let db = tpch_database(0.2, 3);
        let vocab = Vocabulary::build(
            &db,
            &SampleConfig {
                k: 10,
                ..Default::default()
            },
        );
        (db, vocab)
    }

    #[test]
    fn random_episode_produces_rewards_and_terminates() {
        let (db, vocab) = setup();
        let est = Estimator::build(&db);
        let env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(10.0, 1000.0));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..30 {
            let mut state = env.reset();
            let mut shaper = RewardShaper::new();
            let mut steps = 0;
            let mut saw_nonzero = false;
            let mut total = 0.0f32;
            loop {
                let allowed = state.allowed();
                let action = allowed[rng.random_range(0..allowed.len())];
                let (r, done) = env.step(&mut state, action, &mut shaper);
                total += r;
                assert!((-1.0..=1.0 + DEFAULT_TERMINAL_WEIGHT).contains(&r));
                saw_nonzero |= r > 0.0;
                steps += 1;
                assert!(steps < 200, "episode failed to terminate");
                if done {
                    break;
                }
            }
            // Every complete SELECT is executable, so the final step always
            // carries a reward signal (possibly small but computed).
            let stmt = state.statement().unwrap();
            let measured = env.measure(stmt);
            assert!(measured.is_finite() && measured >= 0.0);
            // Potential-based shaping telescopes: the return equals
            // (w + W) * final reward.
            let expected =
                (env.partial_weight + env.terminal_weight) * env.constraint.reward(measured) as f32;
            assert!(
                (total - expected).abs() < 1e-3,
                "return {total} != telescoped {expected}"
            );
            let _ = saw_nonzero;
        }
    }

    #[test]
    fn cost_metric_uses_cost_model() {
        let (db, vocab) = setup();
        let est = Estimator::build(&db);
        let card_env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_point(100.0));
        let cost_env = SqlGenEnv::new(&vocab, &est, Constraint::cost_point(100.0));
        let stmt = sqlgen_engine::parse("SELECT lineitem.l_quantity FROM lineitem").unwrap();
        let card = card_env.measure(&stmt);
        let cost = cost_env.measure(&stmt);
        assert!(card > 0.0 && cost > 0.0);
        assert_ne!(card, cost);
    }

    #[test]
    fn latency_metric_measures_real_execution() {
        let (db, vocab) = setup();
        let est = Estimator::build(&db);
        let env =
            SqlGenEnv::new(&vocab, &est, Constraint::latency_range_us(0.0, 1e9)).with_database(&db);
        let stmt = sqlgen_engine::parse("SELECT lineitem.l_quantity FROM lineitem").unwrap();
        let us = env.measure(&stmt);
        assert!(us.is_finite() && us > 0.0, "latency {us}");
        assert!(env.satisfies(&stmt));
    }

    #[test]
    #[should_panic(expected = "latency metric requires")]
    fn latency_without_database_panics() {
        let (db, vocab) = setup();
        let est = Estimator::build(&db);
        let env = SqlGenEnv::new(&vocab, &est, Constraint::latency_range_us(0.0, 1e9));
        let stmt = sqlgen_engine::parse("SELECT region.r_name FROM region").unwrap();
        env.measure(&stmt);
    }

    #[test]
    fn cached_measure_is_bit_exact() {
        let (db, vocab) = setup();
        let est = Estimator::build(&db);
        let cache = crate::cache::EstimatorCache::new(64);
        let plain = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_point(100.0));
        let cached =
            SqlGenEnv::new(&vocab, &est, Constraint::cardinality_point(100.0)).with_cache(&cache);
        let stmt = sqlgen_engine::parse("SELECT lineitem.l_quantity FROM lineitem").unwrap();
        for _ in 0..3 {
            assert_eq!(
                plain.measure(&stmt).to_bits(),
                cached.measure(&stmt).to_bits()
            );
        }
        assert_eq!(cache.stats(), (2, 1));
        // Cost uses a distinct key space: same SQL, separate entry.
        let cost_env =
            SqlGenEnv::new(&vocab, &est, Constraint::cost_point(100.0)).with_cache(&cache);
        let plain_cost = SqlGenEnv::new(&vocab, &est, Constraint::cost_point(100.0));
        assert_eq!(
            cost_env.measure(&stmt).to_bits(),
            plain_cost.measure(&stmt).to_bits()
        );
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn satisfies_follows_constraint() {
        let (db, vocab) = setup();
        let est = Estimator::build(&db);
        let stmt = sqlgen_engine::parse("SELECT lineitem.l_quantity FROM lineitem").unwrap();
        let card = est.cardinality(&stmt);
        let tight = SqlGenEnv::new(
            &vocab,
            &est,
            Constraint::cardinality_range(card - 1.0, card + 1.0),
        );
        assert!(tight.satisfies(&stmt));
        let wrong = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(0.0, 1.0));
        assert!(!wrong.satisfies(&stmt));
    }
}
