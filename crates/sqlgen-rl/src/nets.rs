//! The actor and critic networks (paper §4.3).
//!
//! Both are `embedding → 2-layer LSTM(30) → dropout(0.3) → linear`
//! (hyper-parameters from §7.1); the actor's output layer spans the action
//! space and feeds a masked softmax, the critic's is a scalar V-value.
//!
//! Networks process the token stream incrementally: at step `t` the input is
//! the token emitted at `t−1` (a learned beginning-of-sequence embedding at
//! `t = 0`), so the LSTM hidden state *is* the state representation `s_t`
//! of the partial query.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sqlgen_nn::{
    actor_logit_grad, actor_logit_grad_into, masked_softmax, sample_categorical, Dropout,
    Embedding, Linear, LinearGrads, LstmBatchState, LstmStack, LstmStackGrads, Mat, Param,
    QuantizedLinear, QuantizedLstmStack, StackCache, StackState,
};

/// Reusable per-step forward scratch shared by the actor and critic hot
/// paths. Sized lazily on first use; steady-state steps allocate nothing.
#[derive(Debug, Default)]
pub struct NetScratch {
    /// Embedding input (embed_dim).
    x: Vec<f32>,
    /// LSTM gate pre-activations (4 × hidden).
    z: Vec<f32>,
    /// Head output for the cacheless inference path (vocab for the actor).
    probs: Vec<f32>,
}

/// Reusable `[B × dim]` activation arena for the batched inference path.
/// Sized lazily on first use; steady-state steps allocate nothing.
#[derive(Debug, Default)]
pub struct BatchScratch {
    /// Embedding inputs (`batch × embed_dim`).
    x: Vec<f32>,
    /// LSTM gate pre-activations (`batch × 4 × hidden`).
    z: Vec<f32>,
    /// Head outputs / masked-softmax probabilities (`batch × vocab`).
    probs: Vec<f32>,
    /// Second gate plane for the quantized LSTM (`batch × 4 × hidden`;
    /// the int8 kernels keep the `W_ih·x` and `W_hh·h` products apart so
    /// the gate sum order matches the f32 path).
    tmp: Vec<f32>,
    /// Post-dropout head inputs for the batched training step
    /// (`batch × hidden`).
    tops: Vec<f32>,
    /// Admissible token ids of the lane being sampled (quantized compact
    /// head path).
    ids: Vec<usize>,
    /// Compact admissible-row logits matching `ids`.
    compact: Vec<f32>,
}

/// Network hyper-parameters (§7.1 defaults).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetConfig {
    pub embed_dim: usize,
    pub hidden: usize,
    pub layers: usize,
    pub dropout: f32,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            embed_dim: 32,
            hidden: 30,
            layers: 2,
            dropout: 0.3,
        }
    }
}

/// A policy that can drive the lockstep batched generation engine in
/// [`crate::batch`]. Implemented by the full-precision [`ActorNet`] and by
/// the int8 [`QuantizedActor`]; the rollout machinery (lane ownership,
/// continuous refill, FSM masking, per-lane RNG streams) is identical for
/// both, so generation and serving code swap precision without forking
/// the engine.
pub trait InferActor {
    /// Size of the action space (the FSM mask width).
    fn vocab_size(&self) -> usize;
    /// Allocates a zeroed batched LSTM state for `batch` lanes.
    fn begin_batch(&self, batch: usize) -> LstmBatchState;
    /// One batched inference step over lockstep lanes. Exactly one uniform
    /// draw per *active* lane — inactive lanes ride through the GEMMs but
    /// never touch their RNG (see [`ActorNet::infer_step_batch`]).
    #[allow(clippy::too_many_arguments)]
    fn infer_step_batch(
        &self,
        prev: &[Option<usize>],
        active: &[bool],
        state: &mut LstmBatchState,
        masks: &[bool],
        rngs: &mut [StdRng],
        scratch: &mut BatchScratch,
        actions: &mut [usize],
    );
}

/// Per-lane detached gradient arenas for one network's parameters
/// (embedding table, LSTM stack, head), one entry per lane. Lane `l`'s
/// arena receives exactly the op sequence a serial backward of lane `l`'s
/// episode would apply to `Param::grad`, so each arena is bit-identical
/// to that serial gradient; the trainer reduces arenas into `Param::grad`
/// in ascending lane order for a deterministic sum.
#[derive(Debug, Default)]
pub struct NetGradsBatch {
    pub embed: Vec<Mat>,
    pub lstm: Vec<LstmStackGrads>,
    pub head: Vec<LinearGrads>,
}

impl NetGradsBatch {
    /// Number of lane arenas currently allocated.
    pub fn lanes(&self) -> usize {
        self.embed.len()
    }
}

/// Per-step cache the actor needs for backprop.
#[derive(Debug, Default)]
pub struct ActorStep {
    /// Token row fed to the embedding (BOS = `vocab_size`).
    pub input_token: usize,
    pub caches: StackCache,
    pub drop_mask: Vec<f32>,
    /// Head input (top LSTM output after dropout).
    pub top: Vec<f32>,
    /// Masked softmax output.
    pub probs: Vec<f32>,
    /// Sampled action.
    pub action: usize,
}

/// The policy network π_θ.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActorNet {
    pub embed: Embedding,
    pub lstm: LstmStack,
    pub head: Linear,
    #[serde(skip, default = "default_dropout")]
    pub dropout: Dropout,
    pub vocab_size: usize,
    /// Embedding row fed at step 0 (BOS by default; the AC-extend ablation
    /// points this at a constraint-bucket row to condition the policy).
    pub start_token: usize,
    /// Optional context row whose embedding is *added to every step's
    /// input* — persistent conditioning for AC-extend (a start token alone
    /// washes out of a 30-cell LSTM after a few steps).
    #[serde(default)]
    pub context_token: Option<usize>,
}

fn default_dropout() -> Dropout {
    Dropout::new(0.3)
}

impl ActorNet {
    pub fn new(vocab_size: usize, cfg: &NetConfig, seed: u64) -> Self {
        Self::with_context_rows(vocab_size, 0, cfg, seed)
    }

    /// Like [`ActorNet::new`] but reserves `context_rows` extra embedding
    /// rows after BOS (ids `vocab_size + 1 ..`), usable as alternative
    /// start tokens that encode external context such as a constraint.
    pub fn with_context_rows(
        vocab_size: usize,
        context_rows: usize,
        cfg: &NetConfig,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        ActorNet {
            // +1 row: the beginning-of-sequence token.
            embed: Embedding::new(vocab_size + 1 + context_rows, cfg.embed_dim, &mut rng),
            lstm: LstmStack::new(cfg.embed_dim, cfg.hidden, cfg.layers, &mut rng),
            head: Linear::new(cfg.hidden, vocab_size, &mut rng),
            dropout: Dropout::new(cfg.dropout),
            vocab_size,
            start_token: vocab_size,
            context_token: None,
        }
    }

    pub fn bos(&self) -> usize {
        self.vocab_size
    }

    /// Sets the step-0 input row (must be BOS or a reserved context row).
    pub fn set_start_token(&mut self, token: usize) {
        assert!(token >= self.vocab_size && token < self.embed.vocab_size());
        self.start_token = token;
    }

    /// Sets (or clears) the persistent context row added to every input.
    pub fn set_context_token(&mut self, token: Option<usize>) {
        if let Some(t) = token {
            assert!(t >= self.vocab_size && t < self.embed.vocab_size());
        }
        self.context_token = token;
    }

    pub fn begin(&self) -> StackState {
        self.lstm.zero_state()
    }

    /// Builds the step input `x = embed(token) [+ embed(ctx)]` into
    /// `scratch.x` without allocating.
    fn input_into(&self, input_token: usize, scratch: &mut NetScratch) {
        scratch.x.clear();
        scratch.x.extend_from_slice(self.embed.row(input_token));
        if let Some(ctx) = self.context_token {
            for (xi, ci) in scratch.x.iter_mut().zip(self.embed.row(ctx)) {
                *xi += ci;
            }
        }
    }

    /// One generation step into recycled buffers: `step`'s vectors are
    /// overwritten in place (an arena-owned `ActorStep` reaches steady state
    /// after its first use and allocates nothing afterwards). RNG draw order
    /// matches [`ActorNet::step`] exactly: dropout mask draws (train only),
    /// then one sampling draw.
    // Hot path: the arguments are the rollout's split borrows — bundling
    // them into a struct would force the borrow conflicts this API avoids.
    #[allow(clippy::too_many_arguments)]
    pub fn step_into<R: Rng + ?Sized>(
        &self,
        prev: Option<usize>,
        state: &mut StackState,
        mask: &[bool],
        train: bool,
        rng: &mut R,
        step: &mut ActorStep,
        scratch: &mut NetScratch,
    ) {
        let input_token = prev.unwrap_or(self.start_token);
        self.input_into(input_token, scratch);
        scratch.z.resize(self.lstm.scratch_len(), 0.0);
        if step.caches.len() != self.lstm.layers.len() {
            step.caches = self.lstm.empty_cache();
        }
        self.lstm
            .forward_step_into(&scratch.x, state, &mut step.caches, &mut scratch.z);
        let top_h = &state.last().expect("non-empty stack").h;
        step.top.clear();
        step.top.extend_from_slice(top_h);
        if train {
            self.dropout
                .apply_into(&mut step.top, rng, &mut step.drop_mask);
        } else {
            step.drop_mask.clear();
            step.drop_mask.resize(step.top.len(), 1.0);
        }
        step.probs.resize(self.vocab_size, 0.0);
        self.head.forward_into(&step.top, &mut step.probs);
        masked_softmax(&mut step.probs, mask);
        step.action = sample_categorical(&step.probs, rng);
        step.input_token = input_token;
    }

    /// One generation step: feeds the previous token, applies the FSM mask,
    /// samples an action from the masked policy. Allocating wrapper over
    /// [`ActorNet::step_into`].
    pub fn step<R: Rng + ?Sized>(
        &self,
        prev: Option<usize>,
        state: &mut StackState,
        mask: &[bool],
        train: bool,
        rng: &mut R,
    ) -> ActorStep {
        let mut step = ActorStep::default();
        let mut scratch = NetScratch::default();
        self.step_into(prev, state, mask, train, rng, &mut step, &mut scratch);
        step
    }

    /// One *inference* step: no backward caches, no dropout, zero heap
    /// allocations in steady state. Produces the same action stream as
    /// [`ActorNet::step`] with `train = false` for the same RNG (one uniform
    /// draw per token).
    pub fn infer_step<R: Rng + ?Sized>(
        &self,
        prev: Option<usize>,
        state: &mut StackState,
        mask: &[bool],
        rng: &mut R,
        scratch: &mut NetScratch,
    ) -> usize {
        let input_token = prev.unwrap_or(self.start_token);
        self.input_into(input_token, scratch);
        scratch.z.resize(self.lstm.scratch_len(), 0.0);
        self.lstm.infer_step_into(&scratch.x, state, &mut scratch.z);
        scratch.probs.resize(self.vocab_size, 0.0);
        self.head.forward_into(
            &state.last().expect("non-empty stack").h,
            &mut scratch.probs,
        );
        masked_softmax(&mut scratch.probs, mask);
        sample_categorical(&scratch.probs, rng)
    }

    /// Allocates a zeroed batched LSTM state for `batch` lanes.
    pub fn begin_batch(&self, batch: usize) -> LstmBatchState {
        self.lstm.zero_batch_state(batch)
    }

    /// One batched inference step over `batch` lockstep lanes.
    ///
    /// Per lane `l` the math is bit-identical to [`ActorNet::infer_step`]
    /// fed `prev[l]` under `masks[l·vocab..(l+1)·vocab]` with `rngs[l]`:
    /// the batched kernels accumulate each output element in the same
    /// left-to-right order as their serial counterparts, and each lane has
    /// its own accumulators, so lanes cannot perturb one another.
    ///
    /// Inactive lanes (`active[l] == false`) are still fed through the
    /// batched kernels (with the start-token embedding; their state is
    /// garbage and never read) but are skipped for softmax and sampling,
    /// so their RNG streams do not advance. Exactly one uniform draw is
    /// taken per *active* lane per call.
    // Hot path: the arguments are the rollout's split borrows — bundling
    // them into a struct would force the borrow conflicts this API avoids.
    #[allow(clippy::too_many_arguments)]
    pub fn infer_step_batch<R: Rng>(
        &self,
        prev: &[Option<usize>],
        active: &[bool],
        state: &mut LstmBatchState,
        masks: &[bool],
        rngs: &mut [R],
        scratch: &mut BatchScratch,
        actions: &mut [usize],
    ) {
        let batch = state.batch;
        debug_assert_eq!(prev.len(), batch);
        debug_assert_eq!(active.len(), batch);
        debug_assert_eq!(masks.len(), batch * self.vocab_size);
        debug_assert_eq!(rngs.len(), batch);
        debug_assert_eq!(actions.len(), batch);
        let embed_dim = self.embed.dim();
        scratch.x.resize(batch * embed_dim, 0.0);
        for (lane, p) in prev.iter().enumerate() {
            let token = p.unwrap_or(self.start_token);
            let xl = &mut scratch.x[lane * embed_dim..(lane + 1) * embed_dim];
            xl.copy_from_slice(self.embed.row(token));
            if let Some(ctx) = self.context_token {
                for (xi, ci) in xl.iter_mut().zip(self.embed.row(ctx)) {
                    *xi += ci;
                }
            }
        }
        scratch.z.resize(self.lstm.batch_scratch_len(batch), 0.0);
        self.lstm
            .infer_step_batch_into(&scratch.x, state, &mut scratch.z);
        scratch.probs.resize(batch * self.vocab_size, 0.0);
        let top = state.h.last().expect("non-empty stack");
        self.head.forward_batch_into(top, batch, &mut scratch.probs);
        for lane in 0..batch {
            if !active[lane] {
                continue;
            }
            let row = &mut scratch.probs[lane * self.vocab_size..(lane + 1) * self.vocab_size];
            let mask = &masks[lane * self.vocab_size..(lane + 1) * self.vocab_size];
            masked_softmax(row, mask);
            actions[lane] = sample_categorical(row, &mut rngs[lane]);
        }
    }

    /// Backpropagates the policy-gradient + entropy loss through a whole
    /// episode (Eq. 4): per step, `∂L/∂logits = A·(π − e_a) + λ·π(logπ+H)`.
    pub fn backward_episode(&mut self, steps: &[ActorStep], advantages: &[f32], lambda: f32) {
        debug_assert_eq!(steps.len(), advantages.len());
        // The scalar loss is never needed for the gradients; materialize it
        // only when observability is collecting (extra O(steps·vocab) pass).
        if sqlgen_obs::timing_enabled() {
            let mut loss = 0.0f64;
            let mut entropy = 0.0f64;
            for (s, &adv) in steps.iter().zip(advantages) {
                let h: f32 = s
                    .probs
                    .iter()
                    .filter(|&&p| p > 0.0)
                    .map(|&p| -p * p.ln())
                    .sum();
                let logp = s.probs[s.action].max(1e-12).ln();
                loss += (-logp * adv - lambda * h) as f64;
                entropy += h as f64;
            }
            let n = steps.len().max(1) as f64;
            sqlgen_obs::obs_record!("rl.policy.loss", loss / n);
            sqlgen_obs::obs_record!("rl.policy.entropy", entropy / n);
        }
        // Head/dropout backward into one flat buffer, then stream BPTT
        // straight off the steps' own caches — no per-episode cache clone.
        let hidden = self.lstm.hidden();
        let mut dtops = vec![0.0f32; steps.len() * hidden];
        for (t, (s, &adv)) in steps.iter().zip(advantages).enumerate() {
            let dlogits = actor_logit_grad(&s.probs, s.action, adv, lambda);
            let dtop = &mut dtops[t * hidden..(t + 1) * hidden];
            self.head.backward_into(&s.top, &dlogits, dtop);
            Dropout::backward(dtop, &s.drop_mask);
        }
        // BPTT visits steps in reverse, but embedding-row gradients must
        // accumulate in forward step order (f32 addition is not
        // associative and rows repeat within an episode), so buffer the
        // input gradients and replay them forward.
        let in_dim = self.lstm.layers[0].input;
        let mut dxs = vec![0.0f32; steps.len() * in_dim];
        self.lstm.backward_sequence_with(
            steps.len(),
            |t| &steps[t].caches[..],
            |t| &dtops[t * hidden..(t + 1) * hidden],
            |t, dx| dxs[t * in_dim..(t + 1) * in_dim].copy_from_slice(dx),
        );
        for (t, s) in steps.iter().enumerate() {
            let dx = &dxs[t * in_dim..(t + 1) * in_dim];
            self.embed.backward(s.input_token, dx);
            if let Some(ctx) = self.context_token {
                // x = embed(token) + embed(ctx): the gradient flows to both.
                self.embed.backward(ctx, dx);
            }
        }
    }

    /// One batched **training** step over `batch` lockstep lanes: like
    /// [`ActorNet::infer_step_batch`] but with dropout and per-lane
    /// backward caches recorded into `steps[lane]`. Per active lane the
    /// recorded step (caches, dropout mask, probabilities, action) is
    /// bit-identical to a serial [`ActorNet::step_into`] fed the same
    /// inputs and RNG: the RNG draw order per lane is dropout mask draws
    /// then one sampling draw, and lanes own private streams, so the
    /// cross-lane processing order cannot perturb any lane. Inactive lanes
    /// ride through the GEMMs (start-token input, caches and steps
    /// untouched) and draw no RNG.
    // Hot path: the arguments are the rollout's split borrows — bundling
    // them into a struct would force the borrow conflicts this API avoids.
    #[allow(clippy::too_many_arguments)]
    pub fn train_step_batch<R: Rng>(
        &self,
        prev: &[Option<usize>],
        active: &[bool],
        state: &mut LstmBatchState,
        masks: &[bool],
        rngs: &mut [R],
        scratch: &mut BatchScratch,
        steps: &mut [&mut ActorStep],
        actions: &mut [usize],
    ) {
        let batch = state.batch;
        debug_assert_eq!(prev.len(), batch);
        debug_assert_eq!(active.len(), batch);
        debug_assert_eq!(masks.len(), batch * self.vocab_size);
        debug_assert_eq!(rngs.len(), batch);
        debug_assert_eq!(steps.len(), batch);
        debug_assert_eq!(actions.len(), batch);
        let embed_dim = self.embed.dim();
        scratch.x.resize(batch * embed_dim, 0.0);
        for (lane, p) in prev.iter().enumerate() {
            let token = p.unwrap_or(self.start_token);
            let xl = &mut scratch.x[lane * embed_dim..(lane + 1) * embed_dim];
            xl.copy_from_slice(self.embed.row(token));
            if let Some(ctx) = self.context_token {
                for (xi, ci) in xl.iter_mut().zip(self.embed.row(ctx)) {
                    *xi += ci;
                }
            }
            if active[lane] {
                steps[lane].input_token = token;
            }
        }
        // Inactive lanes still ride through the batched LSTM step, so
        // every lane needs a correctly shaped (if unused) cache slot.
        for step in steps.iter_mut() {
            if step.caches.len() != self.lstm.layers.len() {
                step.caches = self.lstm.empty_cache();
            }
        }
        scratch.z.resize(self.lstm.batch_scratch_len(batch), 0.0);
        {
            let mut caches: Vec<&mut StackCache> =
                steps.iter_mut().map(|s| &mut s.caches).collect();
            self.lstm.forward_step_batch_into(
                &scratch.x,
                state,
                active,
                &mut caches,
                &mut scratch.z,
            );
        }
        let hidden = self.lstm.hidden();
        let top = state.h.last().expect("non-empty stack");
        scratch.tops.resize(batch * hidden, 0.0);
        for lane in 0..batch {
            if !active[lane] {
                continue;
            }
            let step = &mut *steps[lane];
            step.top.clear();
            step.top
                .extend_from_slice(&top[lane * hidden..(lane + 1) * hidden]);
            self.dropout
                .apply_into(&mut step.top, &mut rngs[lane], &mut step.drop_mask);
            scratch.tops[lane * hidden..(lane + 1) * hidden].copy_from_slice(&step.top);
        }
        scratch.probs.resize(batch * self.vocab_size, 0.0);
        self.head
            .forward_batch_into(&scratch.tops, batch, &mut scratch.probs);
        for lane in 0..batch {
            if !active[lane] {
                continue;
            }
            let row = &scratch.probs[lane * self.vocab_size..(lane + 1) * self.vocab_size];
            let mask = &masks[lane * self.vocab_size..(lane + 1) * self.vocab_size];
            let step = &mut *steps[lane];
            step.probs.clear();
            step.probs.extend_from_slice(row);
            masked_softmax(&mut step.probs, mask);
            step.action = sample_categorical(&step.probs, &mut rngs[lane]);
            actions[lane] = step.action;
        }
    }

    /// Grows `grads` to at least `batch` lane arenas and zeroes the first
    /// `batch` of them, recycling allocations across training rounds.
    pub fn ensure_grads(&self, grads: &mut NetGradsBatch, batch: usize) {
        while grads.embed.len() < batch {
            grads.embed.push(self.embed.empty_grads());
            grads.lstm.push(self.lstm.empty_stack_grads());
            grads.head.push(self.head.empty_grads());
        }
        for lane in 0..batch {
            grads.embed[lane].fill(0.0);
            for l in &mut grads.lstm[lane] {
                l.reset();
            }
            grads.head[lane].reset();
        }
    }

    /// Reduces the first `batch` lane arenas into `Param::grad`, in
    /// ascending lane order (the deterministic-sum contract).
    pub fn accumulate_grads(&mut self, grads: &NetGradsBatch, batch: usize) {
        for lane in 0..batch {
            self.embed.accumulate_grads(&grads.embed[lane]);
            self.lstm.accumulate_grads(&grads.lstm[lane]);
            self.head.accumulate_grads(&grads.head[lane]);
        }
    }

    /// Lane-batched [`ActorNet::backward_episode`] over `batch` ragged
    /// episodes at once. `steps[lane][..lens[lane]]` are lane `lane`'s
    /// recorded steps and `advantages[lane]` its per-step advantages;
    /// parameter gradients land in the per-lane arenas of `grads` with the
    /// exact op sequence of the serial backward, so every arena is
    /// bit-identical to running the serial backward on that lane alone.
    /// The wall-clock win comes from the batched transposed-matvec kernels
    /// on the head-dtop and BPTT dx/dh paths, which read each weight
    /// matrix once per step instead of once per lane per step.
    pub fn backward_episodes_batch(
        &self,
        batch: usize,
        steps: &[Vec<ActorStep>],
        lens: &[usize],
        advantages: &[Vec<f32>],
        lambda: f32,
        grads: &mut NetGradsBatch,
    ) {
        debug_assert!(steps.len() >= batch);
        debug_assert!(lens.len() >= batch);
        debug_assert!(advantages.len() >= batch);
        debug_assert!(grads.lanes() >= batch);
        if sqlgen_obs::timing_enabled() {
            // Same per-episode loss/entropy materialization as the serial
            // path (one histogram sample per episode).
            for lane in 0..batch {
                let mut loss = 0.0f64;
                let mut entropy = 0.0f64;
                for (s, &adv) in steps[lane][..lens[lane]].iter().zip(&advantages[lane]) {
                    let h: f32 = s
                        .probs
                        .iter()
                        .filter(|&&p| p > 0.0)
                        .map(|&p| -p * p.ln())
                        .sum();
                    let logp = s.probs[s.action].max(1e-12).ln();
                    loss += (-logp * adv - lambda * h) as f64;
                    entropy += h as f64;
                }
                let n = lens[lane].max(1) as f64;
                sqlgen_obs::obs_record!("rl.policy.loss", loss / n);
                sqlgen_obs::obs_record!("rl.policy.entropy", entropy / n);
            }
        }
        let hidden = self.lstm.hidden();
        let vocab = self.vocab_size;
        let in_dim = self.lstm.layers[0].input;
        let max_t = lens[..batch].iter().copied().max().unwrap_or(0);
        // Head/dropout backward per global step, prefix-compacted: lanes
        // sorted by descending length make the active set a contiguous
        // prefix, so the `[n_active × vocab]` logit-gradient and
        // `[n_active × hidden]` head-input blocks hold only live lanes and
        // the batched kernels run at the live width. `dtops` stays in
        // physical (slot) layout; `inv` maps logical lane → physical slot.
        let order = sqlgen_nn::ragged_order(&lens[..batch]);
        let mut inv = vec![0usize; batch];
        for (p, &lane) in order.iter().enumerate() {
            inv[lane] = p;
        }
        let mut dtops = vec![0.0f32; max_t * batch * hidden];
        {
            let mut dy = vec![0.0f32; batch * vocab];
            let mut tops = vec![0.0f32; batch * hidden];
            for s in 0..max_t {
                let n_active = order.iter().take_while(|&&l| lens[l] > s).count();
                for (p, &lane) in order[..n_active].iter().enumerate() {
                    let step = &steps[lane][s];
                    actor_logit_grad_into(
                        &step.probs,
                        step.action,
                        advantages[lane][s],
                        lambda,
                        &mut dy[p * vocab..(p + 1) * vocab],
                    );
                    tops[p * hidden..(p + 1) * hidden].copy_from_slice(&step.top);
                }
                let dtop = &mut dtops[s * batch * hidden..s * batch * hidden + n_active * hidden];
                self.head.backward_prefix_into(
                    &tops[..n_active * hidden],
                    &dy[..n_active * vocab],
                    &order[..n_active],
                    &mut grads.head[..batch],
                    dtop,
                );
                for (p, &lane) in order[..n_active].iter().enumerate() {
                    Dropout::backward(
                        &mut dtop[p * hidden..(p + 1) * hidden],
                        &steps[lane][s].drop_mask,
                    );
                }
            }
        }
        // BPTT over all lanes at once; input gradients are buffered and the
        // embedding rows replayed in forward step order per lane (f32
        // addition is not associative and rows repeat within an episode).
        // `backward_sequence_batch_with` derives the same descending-length
        // order from the same lens, so `dtops[(s·batch + inv[lane])…]` is
        // exactly the row the head phase wrote for that lane.
        let mut dxs = vec![0.0f32; batch * max_t * in_dim];
        self.lstm.backward_sequence_batch_with(
            batch,
            &lens[..batch],
            |lane, s| &steps[lane][s].caches[..],
            |lane, s| {
                &dtops[(s * batch + inv[lane]) * hidden..(s * batch + inv[lane] + 1) * hidden]
            },
            |lane, s, dx| {
                dxs[(lane * max_t + s) * in_dim..(lane * max_t + s + 1) * in_dim]
                    .copy_from_slice(dx)
            },
            &mut grads.lstm[..batch],
        );
        for lane in 0..batch {
            for (s, step) in steps[lane][..lens[lane]].iter().enumerate() {
                let dx = &dxs[(lane * max_t + s) * in_dim..(lane * max_t + s + 1) * in_dim];
                Embedding::backward_buf(&mut grads.embed[lane], step.input_token, dx);
                if let Some(ctx) = self.context_token {
                    Embedding::backward_buf(&mut grads.embed[lane], ctx, dx);
                }
            }
        }
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.embed.params_mut();
        p.extend(self.lstm.params_mut());
        p.extend(self.head.params_mut());
        p
    }

    pub fn zero_grad(&mut self) {
        self.embed.zero_grad();
        self.lstm.zero_grad();
        self.head.zero_grad();
    }

    pub fn restore_buffers(&mut self) {
        self.embed.restore_buffers();
        self.lstm.restore_buffers();
        self.head.restore_buffers();
    }
}

impl InferActor for ActorNet {
    fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    fn begin_batch(&self, batch: usize) -> LstmBatchState {
        ActorNet::begin_batch(self, batch)
    }

    fn infer_step_batch(
        &self,
        prev: &[Option<usize>],
        active: &[bool],
        state: &mut LstmBatchState,
        masks: &[bool],
        rngs: &mut [StdRng],
        scratch: &mut BatchScratch,
        actions: &mut [usize],
    ) {
        ActorNet::infer_step_batch(self, prev, active, state, masks, rngs, scratch, actions);
    }
}

/// Int8 inference-only snapshot of an [`ActorNet`].
///
/// The LSTM and head weights are quantized per output channel
/// ([`sqlgen_nn::quant`]); the embedding stays a f32 row lookup (it is a
/// table read, not a GEMM — quantizing it would add error for zero
/// speedup), and biases stay f32. Built from trained weights at load
/// time; carries no gradients and cannot train.
///
/// The head is evaluated **masked**: logits are computed only for the
/// FSM-admissible rows of each lane (typically a handful out of the full
/// vocabulary) and `-∞` is written elsewhere. This is exact, not an
/// approximation — the masked softmax and the sampler never read masked
/// rows — and it is where most of the quantized path's speedup comes
/// from at generation time.
#[derive(Debug, Clone)]
pub struct QuantizedActor {
    /// f32 embedding table (`(vocab + 1 + ctx) × embed_dim`).
    table: Mat,
    pub lstm: QuantizedLstmStack,
    pub head: QuantizedLinear,
    pub vocab_size: usize,
    pub start_token: usize,
    pub context_token: Option<usize>,
}

impl QuantizedActor {
    /// Quantizes a trained actor's weights (per-output-channel symmetric
    /// int8; see [`sqlgen_nn::QuantizedMat`]).
    pub fn from_actor(a: &ActorNet) -> Self {
        QuantizedActor {
            table: a.embed.table.value.clone(),
            lstm: QuantizedLstmStack::from_stack(&a.lstm),
            head: QuantizedLinear::from_linear(&a.head),
            vocab_size: a.vocab_size,
            start_token: a.start_token,
            context_token: a.context_token,
        }
    }
}

impl InferActor for QuantizedActor {
    fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    fn begin_batch(&self, batch: usize) -> LstmBatchState {
        self.lstm.zero_batch_state(batch)
    }

    /// Mirrors [`ActorNet::infer_step_batch`] — same lane protocol, same
    /// RNG contract (one uniform draw per active lane) — over the int8
    /// kernels. Inactive lanes keep whatever mask rows they last had;
    /// their head outputs are computed but never read.
    fn infer_step_batch(
        &self,
        prev: &[Option<usize>],
        active: &[bool],
        state: &mut LstmBatchState,
        masks: &[bool],
        rngs: &mut [StdRng],
        scratch: &mut BatchScratch,
        actions: &mut [usize],
    ) {
        let batch = state.batch;
        debug_assert_eq!(prev.len(), batch);
        debug_assert_eq!(active.len(), batch);
        debug_assert_eq!(masks.len(), batch * self.vocab_size);
        debug_assert_eq!(rngs.len(), batch);
        debug_assert_eq!(actions.len(), batch);
        let embed_dim = self.table.cols;
        scratch.x.resize(batch * embed_dim, 0.0);
        for (lane, p) in prev.iter().enumerate() {
            let token = p.unwrap_or(self.start_token);
            let xl = &mut scratch.x[lane * embed_dim..(lane + 1) * embed_dim];
            xl.copy_from_slice(self.table.row(token));
            if let Some(ctx) = self.context_token {
                for (xi, ci) in xl.iter_mut().zip(self.table.row(ctx)) {
                    *xi += ci;
                }
            }
        }
        let zlen = self.lstm.batch_scratch_len(batch);
        scratch.z.resize(zlen, 0.0);
        scratch.tmp.resize(zlen, 0.0);
        self.lstm
            .infer_step_batch_into(&scratch.x, state, &mut scratch.z, &mut scratch.tmp);
        let top = state.h.last().expect("non-empty stack");
        // Compact head path: gather each lane's admissible ids (one mask
        // scan), then evaluate logits, softmax and sample over just those
        // M entries. `softmax_dense` + the ascending-id gather visit the
        // same entries in the same order as the scattered
        // `masked_softmax`/`sample_categorical` row path, so the sampled
        // actions — and each lane's RNG stream — are unchanged.
        let hidden = self.lstm.hidden();
        for lane in 0..batch {
            if !active[lane] {
                continue;
            }
            let mask = &masks[lane * self.vocab_size..(lane + 1) * self.vocab_size];
            scratch.ids.clear();
            scratch
                .ids
                .extend(mask.iter().enumerate().filter(|(_, &m)| m).map(|(i, _)| i));
            scratch.compact.resize(scratch.ids.len(), 0.0);
            self.head.forward_ids_into(
                &top[lane * hidden..(lane + 1) * hidden],
                &scratch.ids,
                &mut scratch.compact,
            );
            sqlgen_nn::softmax_dense(&mut scratch.compact);
            let k = sample_categorical(&scratch.compact, &mut rngs[lane]);
            // Fully-masked rows cannot occur mid-episode; match the
            // scattered path's all-zero-row fallback (action 0) anyway.
            actions[lane] = scratch.ids.get(k).copied().unwrap_or(0);
        }
    }
}

/// Per-step cache for the critic.
#[derive(Debug, Default)]
pub struct CriticStep {
    pub input_token: usize,
    pub caches: StackCache,
    pub drop_mask: Vec<f32>,
    pub top: Vec<f32>,
    pub value: f32,
}

/// The value network V_φ.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CriticNet {
    pub embed: Embedding,
    pub lstm: LstmStack,
    pub head: Linear,
    #[serde(skip, default = "default_dropout")]
    pub dropout: Dropout,
    pub vocab_size: usize,
    /// Embedding row fed at step 0 (see [`ActorNet::start_token`]).
    pub start_token: usize,
    /// See [`ActorNet::context_token`].
    #[serde(default)]
    pub context_token: Option<usize>,
}

impl CriticNet {
    pub fn new(vocab_size: usize, cfg: &NetConfig, seed: u64) -> Self {
        Self::with_context_rows(vocab_size, 0, cfg, seed)
    }

    /// See [`ActorNet::with_context_rows`].
    pub fn with_context_rows(
        vocab_size: usize,
        context_rows: usize,
        cfg: &NetConfig,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        CriticNet {
            embed: Embedding::new(vocab_size + 1 + context_rows, cfg.embed_dim, &mut rng),
            lstm: LstmStack::new(cfg.embed_dim, cfg.hidden, cfg.layers, &mut rng),
            head: Linear::new(cfg.hidden, 1, &mut rng),
            dropout: Dropout::new(cfg.dropout),
            vocab_size,
            start_token: vocab_size,
            context_token: None,
        }
    }

    pub fn bos(&self) -> usize {
        self.vocab_size
    }

    /// Sets the step-0 input row (must be BOS or a reserved context row).
    pub fn set_start_token(&mut self, token: usize) {
        assert!(token >= self.vocab_size && token < self.embed.vocab_size());
        self.start_token = token;
    }

    /// Sets (or clears) the persistent context row added to every input.
    pub fn set_context_token(&mut self, token: Option<usize>) {
        if let Some(t) = token {
            assert!(t >= self.vocab_size && t < self.embed.vocab_size());
        }
        self.context_token = token;
    }

    pub fn begin(&self) -> StackState {
        self.lstm.zero_state()
    }

    /// One value estimate into recycled buffers (see
    /// [`ActorNet::step_into`]).
    pub fn step_into<R: Rng + ?Sized>(
        &self,
        prev: Option<usize>,
        state: &mut StackState,
        train: bool,
        rng: &mut R,
        step: &mut CriticStep,
        scratch: &mut NetScratch,
    ) {
        let input_token = prev.unwrap_or(self.start_token);
        scratch.x.clear();
        scratch.x.extend_from_slice(self.embed.row(input_token));
        if let Some(ctx) = self.context_token {
            for (xi, ci) in scratch.x.iter_mut().zip(self.embed.row(ctx)) {
                *xi += ci;
            }
        }
        scratch.z.resize(self.lstm.scratch_len(), 0.0);
        if step.caches.len() != self.lstm.layers.len() {
            step.caches = self.lstm.empty_cache();
        }
        self.lstm
            .forward_step_into(&scratch.x, state, &mut step.caches, &mut scratch.z);
        step.top.clear();
        step.top
            .extend_from_slice(&state.last().expect("non-empty stack").h);
        if train {
            self.dropout
                .apply_into(&mut step.top, rng, &mut step.drop_mask);
        } else {
            step.drop_mask.clear();
            step.drop_mask.resize(step.top.len(), 1.0);
        }
        let mut value = [0.0f32];
        self.head.forward_into(&step.top, &mut value);
        step.value = value[0];
        step.input_token = input_token;
    }

    /// One value estimate `V(s_t)` for the state reached after feeding
    /// `prev`. Allocating wrapper over [`CriticNet::step_into`].
    pub fn step<R: Rng + ?Sized>(
        &self,
        prev: Option<usize>,
        state: &mut StackState,
        train: bool,
        rng: &mut R,
    ) -> CriticStep {
        let mut step = CriticStep::default();
        let mut scratch = NetScratch::default();
        self.step_into(prev, state, train, rng, &mut step, &mut scratch);
        step
    }

    /// Backpropagates per-step value-loss gradients `dL/dV_t`.
    pub fn backward_episode(&mut self, steps: &[CriticStep], dvalues: &[f32]) {
        debug_assert_eq!(steps.len(), dvalues.len());
        let hidden = self.lstm.hidden();
        let mut dtops = vec![0.0f32; steps.len() * hidden];
        for (t, (s, &dv)) in steps.iter().zip(dvalues).enumerate() {
            let dtop = &mut dtops[t * hidden..(t + 1) * hidden];
            self.head.backward_into(&s.top, &[dv], dtop);
            Dropout::backward(dtop, &s.drop_mask);
        }
        // Buffer input gradients; embedding rows accumulate forward-order
        // (see ActorNet::backward_episode).
        let in_dim = self.lstm.layers[0].input;
        let mut dxs = vec![0.0f32; steps.len() * in_dim];
        self.lstm.backward_sequence_with(
            steps.len(),
            |t| &steps[t].caches[..],
            |t| &dtops[t * hidden..(t + 1) * hidden],
            |t, dx| dxs[t * in_dim..(t + 1) * in_dim].copy_from_slice(dx),
        );
        for (t, s) in steps.iter().enumerate() {
            let dx = &dxs[t * in_dim..(t + 1) * in_dim];
            self.embed.backward(s.input_token, dx);
            if let Some(ctx) = self.context_token {
                self.embed.backward(ctx, dx);
            }
        }
    }

    /// Allocates a zeroed batched LSTM state for `batch` lanes.
    pub fn begin_batch(&self, batch: usize) -> LstmBatchState {
        self.lstm.zero_batch_state(batch)
    }

    /// One batched critic step over lockstep lanes: mirrors
    /// [`CriticNet::step_into`] per active lane (dropout draws from the
    /// lane's own RNG, then the scalar head), recording backward caches
    /// into `steps[lane]`. The scalar head is evaluated per lane — at
    /// `hidden → 1` there is nothing to amortize; the batching win is the
    /// LSTM forward. Inactive lanes ride through the GEMMs and draw no
    /// RNG.
    pub fn forward_step_batch<R: Rng>(
        &self,
        prev: &[Option<usize>],
        active: &[bool],
        state: &mut LstmBatchState,
        rngs: &mut [R],
        scratch: &mut BatchScratch,
        steps: &mut [&mut CriticStep],
    ) {
        let batch = state.batch;
        debug_assert_eq!(prev.len(), batch);
        debug_assert_eq!(active.len(), batch);
        debug_assert_eq!(rngs.len(), batch);
        debug_assert_eq!(steps.len(), batch);
        let embed_dim = self.embed.dim();
        scratch.x.resize(batch * embed_dim, 0.0);
        for (lane, p) in prev.iter().enumerate() {
            let token = p.unwrap_or(self.start_token);
            let xl = &mut scratch.x[lane * embed_dim..(lane + 1) * embed_dim];
            xl.copy_from_slice(self.embed.row(token));
            if let Some(ctx) = self.context_token {
                for (xi, ci) in xl.iter_mut().zip(self.embed.row(ctx)) {
                    *xi += ci;
                }
            }
            if active[lane] {
                steps[lane].input_token = token;
            }
        }
        // Inactive lanes still ride through the batched LSTM step, so
        // every lane needs a correctly shaped (if unused) cache slot.
        for step in steps.iter_mut() {
            if step.caches.len() != self.lstm.layers.len() {
                step.caches = self.lstm.empty_cache();
            }
        }
        scratch.z.resize(self.lstm.batch_scratch_len(batch), 0.0);
        {
            let mut caches: Vec<&mut StackCache> =
                steps.iter_mut().map(|s| &mut s.caches).collect();
            self.lstm.forward_step_batch_into(
                &scratch.x,
                state,
                active,
                &mut caches,
                &mut scratch.z,
            );
        }
        let hidden = self.lstm.hidden();
        let top = state.h.last().expect("non-empty stack");
        for lane in 0..batch {
            if !active[lane] {
                continue;
            }
            let step = &mut *steps[lane];
            step.top.clear();
            step.top
                .extend_from_slice(&top[lane * hidden..(lane + 1) * hidden]);
            self.dropout
                .apply_into(&mut step.top, &mut rngs[lane], &mut step.drop_mask);
            let mut value = [0.0f32];
            self.head.forward_into(&step.top, &mut value);
            step.value = value[0];
        }
    }

    /// See [`ActorNet::ensure_grads`].
    pub fn ensure_grads(&self, grads: &mut NetGradsBatch, batch: usize) {
        while grads.embed.len() < batch {
            grads.embed.push(self.embed.empty_grads());
            grads.lstm.push(self.lstm.empty_stack_grads());
            grads.head.push(self.head.empty_grads());
        }
        for lane in 0..batch {
            grads.embed[lane].fill(0.0);
            for l in &mut grads.lstm[lane] {
                l.reset();
            }
            grads.head[lane].reset();
        }
    }

    /// See [`ActorNet::accumulate_grads`].
    pub fn accumulate_grads(&mut self, grads: &NetGradsBatch, batch: usize) {
        for lane in 0..batch {
            self.embed.accumulate_grads(&grads.embed[lane]);
            self.lstm.accumulate_grads(&grads.lstm[lane]);
            self.head.accumulate_grads(&grads.head[lane]);
        }
    }

    /// Lane-batched [`CriticNet::backward_episode`]; the per-lane arena
    /// contract matches [`ActorNet::backward_episodes_batch`].
    pub fn backward_episodes_batch(
        &self,
        batch: usize,
        steps: &[Vec<CriticStep>],
        lens: &[usize],
        dvalues: &[Vec<f32>],
        grads: &mut NetGradsBatch,
    ) {
        debug_assert!(steps.len() >= batch);
        debug_assert!(lens.len() >= batch);
        debug_assert!(dvalues.len() >= batch);
        debug_assert!(grads.lanes() >= batch);
        let hidden = self.lstm.hidden();
        let in_dim = self.lstm.layers[0].input;
        let max_t = lens[..batch].iter().copied().max().unwrap_or(0);
        // Prefix-compacted like the actor: see
        // [`ActorNet::backward_episodes_batch`] for the slot layout.
        let order = sqlgen_nn::ragged_order(&lens[..batch]);
        let mut inv = vec![0usize; batch];
        for (p, &lane) in order.iter().enumerate() {
            inv[lane] = p;
        }
        let mut dtops = vec![0.0f32; max_t * batch * hidden];
        {
            let mut dy = vec![0.0f32; batch];
            let mut tops = vec![0.0f32; batch * hidden];
            for s in 0..max_t {
                let n_active = order.iter().take_while(|&&l| lens[l] > s).count();
                for (p, &lane) in order[..n_active].iter().enumerate() {
                    dy[p] = dvalues[lane][s];
                    tops[p * hidden..(p + 1) * hidden].copy_from_slice(&steps[lane][s].top);
                }
                let dtop = &mut dtops[s * batch * hidden..s * batch * hidden + n_active * hidden];
                self.head.backward_prefix_into(
                    &tops[..n_active * hidden],
                    &dy[..n_active],
                    &order[..n_active],
                    &mut grads.head[..batch],
                    dtop,
                );
                for (p, &lane) in order[..n_active].iter().enumerate() {
                    Dropout::backward(
                        &mut dtop[p * hidden..(p + 1) * hidden],
                        &steps[lane][s].drop_mask,
                    );
                }
            }
        }
        let mut dxs = vec![0.0f32; batch * max_t * in_dim];
        self.lstm.backward_sequence_batch_with(
            batch,
            &lens[..batch],
            |lane, s| &steps[lane][s].caches[..],
            |lane, s| {
                &dtops[(s * batch + inv[lane]) * hidden..(s * batch + inv[lane] + 1) * hidden]
            },
            |lane, s, dx| {
                dxs[(lane * max_t + s) * in_dim..(lane * max_t + s + 1) * in_dim]
                    .copy_from_slice(dx)
            },
            &mut grads.lstm[..batch],
        );
        for lane in 0..batch {
            for (s, step) in steps[lane][..lens[lane]].iter().enumerate() {
                let dx = &dxs[(lane * max_t + s) * in_dim..(lane * max_t + s + 1) * in_dim];
                Embedding::backward_buf(&mut grads.embed[lane], step.input_token, dx);
                if let Some(ctx) = self.context_token {
                    Embedding::backward_buf(&mut grads.embed[lane], ctx, dx);
                }
            }
        }
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.embed.params_mut();
        p.extend(self.lstm.params_mut());
        p.extend(self.head.params_mut());
        p
    }

    pub fn zero_grad(&mut self) {
        self.embed.zero_grad();
        self.lstm.zero_grad();
        self.head.zero_grad();
    }

    pub fn restore_buffers(&mut self) {
        self.embed.restore_buffers();
        self.lstm.restore_buffers();
        self.head.restore_buffers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actor_step_respects_mask() {
        let cfg = NetConfig {
            embed_dim: 8,
            hidden: 8,
            layers: 1,
            dropout: 0.0,
        };
        let actor = ActorNet::new(10, &cfg, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let state = actor.begin();
        let mut mask = vec![false; 10];
        mask[3] = true;
        mask[7] = true;
        for _ in 0..20 {
            let step = actor.step(None, &mut state.clone(), &mask, false, &mut rng);
            assert!(step.action == 3 || step.action == 7);
            assert_eq!(step.probs[0], 0.0);
            assert!((step.probs[3] + step.probs[7] - 1.0).abs() < 1e-5);
        }
    }

    /// A tiny bandit: one step, action 2 of 4 always rewarded. The actor
    /// trained with policy gradients must concentrate probability on it.
    #[test]
    fn actor_learns_a_bandit() {
        use sqlgen_nn::{Adam, Optimizer};
        let cfg = NetConfig {
            embed_dim: 8,
            hidden: 8,
            layers: 1,
            dropout: 0.0,
        };
        let mut actor = ActorNet::new(4, &cfg, 3);
        let mut adam = Adam::new(0.05);
        let mut rng = StdRng::seed_from_u64(4);
        let mask = vec![true; 4];
        for _ in 0..300 {
            let mut state = actor.begin();
            let step = actor.step(None, &mut state, &mask, true, &mut rng);
            let reward: f32 = if step.action == 2 { 1.0 } else { 0.0 };
            // Advantage with a constant baseline of 0.25 (uniform chance).
            let adv = reward - 0.25;
            actor.zero_grad();
            actor.backward_episode(&[step], &[adv], 0.0);
            adam.step(&mut actor.params_mut());
        }
        let mut state = actor.begin();
        let step = actor.step(None, &mut state, &mask, false, &mut rng);
        assert!(
            step.probs[2] > 0.8,
            "policy failed to concentrate: {:?}",
            step.probs
        );
    }

    #[test]
    fn critic_fits_constant_target() {
        use sqlgen_nn::{Adam, Optimizer};
        let cfg = NetConfig {
            embed_dim: 8,
            hidden: 8,
            layers: 1,
            dropout: 0.0,
        };
        let mut critic = CriticNet::new(6, &cfg, 5);
        let mut adam = Adam::new(0.02);
        let mut rng = StdRng::seed_from_u64(6);
        let target = 0.7f32;
        for _ in 0..400 {
            let mut state = critic.begin();
            let step = critic.step(Some(1), &mut state, false, &mut rng);
            let dv = 2.0 * (step.value - target);
            critic.zero_grad();
            critic.backward_episode(&[step], &[dv]);
            adam.step(&mut critic.params_mut());
        }
        let mut state = critic.begin();
        let v = critic.step(Some(1), &mut state, false, &mut rng).value;
        assert!((v - target).abs() < 0.1, "critic value {v}");
    }

    #[test]
    fn actor_serde_roundtrip() {
        let cfg = NetConfig::default();
        let actor = ActorNet::new(20, &cfg, 7);
        let json = serde_json::to_string(&actor).unwrap();
        let mut back: ActorNet = serde_json::from_str(&json).unwrap();
        back.restore_buffers();
        let mut rng = StdRng::seed_from_u64(8);
        let mask = vec![true; 20];
        let mut s1 = actor.begin();
        let mut s2 = back.begin();
        let a = actor.step(Some(3), &mut s1, &mask, false, &mut rng);
        let mut rng = StdRng::seed_from_u64(8);
        let b = back.step(Some(3), &mut s2, &mask, false, &mut rng);
        assert_eq!(a.probs, b.probs);
    }
}
