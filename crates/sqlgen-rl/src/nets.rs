//! The actor and critic networks (paper §4.3).
//!
//! Both are `embedding → 2-layer LSTM(30) → dropout(0.3) → linear`
//! (hyper-parameters from §7.1); the actor's output layer spans the action
//! space and feeds a masked softmax, the critic's is a scalar V-value.
//!
//! Networks process the token stream incrementally: at step `t` the input is
//! the token emitted at `t−1` (a learned beginning-of-sequence embedding at
//! `t = 0`), so the LSTM hidden state *is* the state representation `s_t`
//! of the partial query.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sqlgen_nn::{
    actor_logit_grad, masked_softmax, sample_categorical, Dropout, Embedding, Linear,
    LstmBatchState, LstmStack, Param, StackCache, StackState,
};

/// Reusable per-step forward scratch shared by the actor and critic hot
/// paths. Sized lazily on first use; steady-state steps allocate nothing.
#[derive(Debug, Default)]
pub struct NetScratch {
    /// Embedding input (embed_dim).
    x: Vec<f32>,
    /// LSTM gate pre-activations (4 × hidden).
    z: Vec<f32>,
    /// Head output for the cacheless inference path (vocab for the actor).
    probs: Vec<f32>,
}

/// Reusable `[B × dim]` activation arena for the batched inference path.
/// Sized lazily on first use; steady-state steps allocate nothing.
#[derive(Debug, Default)]
pub struct BatchScratch {
    /// Embedding inputs (`batch × embed_dim`).
    x: Vec<f32>,
    /// LSTM gate pre-activations (`batch × 4 × hidden`).
    z: Vec<f32>,
    /// Head outputs / masked-softmax probabilities (`batch × vocab`).
    probs: Vec<f32>,
}

/// Network hyper-parameters (§7.1 defaults).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetConfig {
    pub embed_dim: usize,
    pub hidden: usize,
    pub layers: usize,
    pub dropout: f32,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            embed_dim: 32,
            hidden: 30,
            layers: 2,
            dropout: 0.3,
        }
    }
}

/// Per-step cache the actor needs for backprop.
#[derive(Debug, Default)]
pub struct ActorStep {
    /// Token row fed to the embedding (BOS = `vocab_size`).
    pub input_token: usize,
    pub caches: StackCache,
    pub drop_mask: Vec<f32>,
    /// Head input (top LSTM output after dropout).
    pub top: Vec<f32>,
    /// Masked softmax output.
    pub probs: Vec<f32>,
    /// Sampled action.
    pub action: usize,
}

/// The policy network π_θ.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActorNet {
    pub embed: Embedding,
    pub lstm: LstmStack,
    pub head: Linear,
    #[serde(skip, default = "default_dropout")]
    pub dropout: Dropout,
    pub vocab_size: usize,
    /// Embedding row fed at step 0 (BOS by default; the AC-extend ablation
    /// points this at a constraint-bucket row to condition the policy).
    pub start_token: usize,
    /// Optional context row whose embedding is *added to every step's
    /// input* — persistent conditioning for AC-extend (a start token alone
    /// washes out of a 30-cell LSTM after a few steps).
    #[serde(default)]
    pub context_token: Option<usize>,
}

fn default_dropout() -> Dropout {
    Dropout::new(0.3)
}

impl ActorNet {
    pub fn new(vocab_size: usize, cfg: &NetConfig, seed: u64) -> Self {
        Self::with_context_rows(vocab_size, 0, cfg, seed)
    }

    /// Like [`ActorNet::new`] but reserves `context_rows` extra embedding
    /// rows after BOS (ids `vocab_size + 1 ..`), usable as alternative
    /// start tokens that encode external context such as a constraint.
    pub fn with_context_rows(
        vocab_size: usize,
        context_rows: usize,
        cfg: &NetConfig,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        ActorNet {
            // +1 row: the beginning-of-sequence token.
            embed: Embedding::new(vocab_size + 1 + context_rows, cfg.embed_dim, &mut rng),
            lstm: LstmStack::new(cfg.embed_dim, cfg.hidden, cfg.layers, &mut rng),
            head: Linear::new(cfg.hidden, vocab_size, &mut rng),
            dropout: Dropout::new(cfg.dropout),
            vocab_size,
            start_token: vocab_size,
            context_token: None,
        }
    }

    pub fn bos(&self) -> usize {
        self.vocab_size
    }

    /// Sets the step-0 input row (must be BOS or a reserved context row).
    pub fn set_start_token(&mut self, token: usize) {
        assert!(token >= self.vocab_size && token < self.embed.vocab_size());
        self.start_token = token;
    }

    /// Sets (or clears) the persistent context row added to every input.
    pub fn set_context_token(&mut self, token: Option<usize>) {
        if let Some(t) = token {
            assert!(t >= self.vocab_size && t < self.embed.vocab_size());
        }
        self.context_token = token;
    }

    pub fn begin(&self) -> StackState {
        self.lstm.zero_state()
    }

    /// Builds the step input `x = embed(token) [+ embed(ctx)]` into
    /// `scratch.x` without allocating.
    fn input_into(&self, input_token: usize, scratch: &mut NetScratch) {
        scratch.x.clear();
        scratch.x.extend_from_slice(self.embed.row(input_token));
        if let Some(ctx) = self.context_token {
            for (xi, ci) in scratch.x.iter_mut().zip(self.embed.row(ctx)) {
                *xi += ci;
            }
        }
    }

    /// One generation step into recycled buffers: `step`'s vectors are
    /// overwritten in place (an arena-owned `ActorStep` reaches steady state
    /// after its first use and allocates nothing afterwards). RNG draw order
    /// matches [`ActorNet::step`] exactly: dropout mask draws (train only),
    /// then one sampling draw.
    // Hot path: the arguments are the rollout's split borrows — bundling
    // them into a struct would force the borrow conflicts this API avoids.
    #[allow(clippy::too_many_arguments)]
    pub fn step_into<R: Rng + ?Sized>(
        &self,
        prev: Option<usize>,
        state: &mut StackState,
        mask: &[bool],
        train: bool,
        rng: &mut R,
        step: &mut ActorStep,
        scratch: &mut NetScratch,
    ) {
        let input_token = prev.unwrap_or(self.start_token);
        self.input_into(input_token, scratch);
        scratch.z.resize(self.lstm.scratch_len(), 0.0);
        if step.caches.len() != self.lstm.layers.len() {
            step.caches = self.lstm.empty_cache();
        }
        self.lstm
            .forward_step_into(&scratch.x, state, &mut step.caches, &mut scratch.z);
        let top_h = &state.last().expect("non-empty stack").h;
        step.top.clear();
        step.top.extend_from_slice(top_h);
        if train {
            self.dropout
                .apply_into(&mut step.top, rng, &mut step.drop_mask);
        } else {
            step.drop_mask.clear();
            step.drop_mask.resize(step.top.len(), 1.0);
        }
        step.probs.resize(self.vocab_size, 0.0);
        self.head.forward_into(&step.top, &mut step.probs);
        masked_softmax(&mut step.probs, mask);
        step.action = sample_categorical(&step.probs, rng);
        step.input_token = input_token;
    }

    /// One generation step: feeds the previous token, applies the FSM mask,
    /// samples an action from the masked policy. Allocating wrapper over
    /// [`ActorNet::step_into`].
    pub fn step<R: Rng + ?Sized>(
        &self,
        prev: Option<usize>,
        state: &mut StackState,
        mask: &[bool],
        train: bool,
        rng: &mut R,
    ) -> ActorStep {
        let mut step = ActorStep::default();
        let mut scratch = NetScratch::default();
        self.step_into(prev, state, mask, train, rng, &mut step, &mut scratch);
        step
    }

    /// One *inference* step: no backward caches, no dropout, zero heap
    /// allocations in steady state. Produces the same action stream as
    /// [`ActorNet::step`] with `train = false` for the same RNG (one uniform
    /// draw per token).
    pub fn infer_step<R: Rng + ?Sized>(
        &self,
        prev: Option<usize>,
        state: &mut StackState,
        mask: &[bool],
        rng: &mut R,
        scratch: &mut NetScratch,
    ) -> usize {
        let input_token = prev.unwrap_or(self.start_token);
        self.input_into(input_token, scratch);
        scratch.z.resize(self.lstm.scratch_len(), 0.0);
        self.lstm.infer_step_into(&scratch.x, state, &mut scratch.z);
        scratch.probs.resize(self.vocab_size, 0.0);
        self.head.forward_into(
            &state.last().expect("non-empty stack").h,
            &mut scratch.probs,
        );
        masked_softmax(&mut scratch.probs, mask);
        sample_categorical(&scratch.probs, rng)
    }

    /// Allocates a zeroed batched LSTM state for `batch` lanes.
    pub fn begin_batch(&self, batch: usize) -> LstmBatchState {
        self.lstm.zero_batch_state(batch)
    }

    /// One batched inference step over `batch` lockstep lanes.
    ///
    /// Per lane `l` the math is bit-identical to [`ActorNet::infer_step`]
    /// fed `prev[l]` under `masks[l·vocab..(l+1)·vocab]` with `rngs[l]`:
    /// the batched kernels accumulate each output element in the same
    /// left-to-right order as their serial counterparts, and each lane has
    /// its own accumulators, so lanes cannot perturb one another.
    ///
    /// Inactive lanes (`active[l] == false`) are still fed through the
    /// batched kernels (with the start-token embedding; their state is
    /// garbage and never read) but are skipped for softmax and sampling,
    /// so their RNG streams do not advance. Exactly one uniform draw is
    /// taken per *active* lane per call.
    // Hot path: the arguments are the rollout's split borrows — bundling
    // them into a struct would force the borrow conflicts this API avoids.
    #[allow(clippy::too_many_arguments)]
    pub fn infer_step_batch<R: Rng>(
        &self,
        prev: &[Option<usize>],
        active: &[bool],
        state: &mut LstmBatchState,
        masks: &[bool],
        rngs: &mut [R],
        scratch: &mut BatchScratch,
        actions: &mut [usize],
    ) {
        let batch = state.batch;
        debug_assert_eq!(prev.len(), batch);
        debug_assert_eq!(active.len(), batch);
        debug_assert_eq!(masks.len(), batch * self.vocab_size);
        debug_assert_eq!(rngs.len(), batch);
        debug_assert_eq!(actions.len(), batch);
        let embed_dim = self.embed.dim();
        scratch.x.resize(batch * embed_dim, 0.0);
        for (lane, p) in prev.iter().enumerate() {
            let token = p.unwrap_or(self.start_token);
            let xl = &mut scratch.x[lane * embed_dim..(lane + 1) * embed_dim];
            xl.copy_from_slice(self.embed.row(token));
            if let Some(ctx) = self.context_token {
                for (xi, ci) in xl.iter_mut().zip(self.embed.row(ctx)) {
                    *xi += ci;
                }
            }
        }
        scratch.z.resize(self.lstm.batch_scratch_len(batch), 0.0);
        self.lstm
            .infer_step_batch_into(&scratch.x, state, &mut scratch.z);
        scratch.probs.resize(batch * self.vocab_size, 0.0);
        let top = state.h.last().expect("non-empty stack");
        self.head.forward_batch_into(top, batch, &mut scratch.probs);
        for lane in 0..batch {
            if !active[lane] {
                continue;
            }
            let row = &mut scratch.probs[lane * self.vocab_size..(lane + 1) * self.vocab_size];
            let mask = &masks[lane * self.vocab_size..(lane + 1) * self.vocab_size];
            masked_softmax(row, mask);
            actions[lane] = sample_categorical(row, &mut rngs[lane]);
        }
    }

    /// Backpropagates the policy-gradient + entropy loss through a whole
    /// episode (Eq. 4): per step, `∂L/∂logits = A·(π − e_a) + λ·π(logπ+H)`.
    pub fn backward_episode(&mut self, steps: &[ActorStep], advantages: &[f32], lambda: f32) {
        debug_assert_eq!(steps.len(), advantages.len());
        // The scalar loss is never needed for the gradients; materialize it
        // only when observability is collecting (extra O(steps·vocab) pass).
        if sqlgen_obs::timing_enabled() {
            let mut loss = 0.0f64;
            let mut entropy = 0.0f64;
            for (s, &adv) in steps.iter().zip(advantages) {
                let h: f32 = s
                    .probs
                    .iter()
                    .filter(|&&p| p > 0.0)
                    .map(|&p| -p * p.ln())
                    .sum();
                let logp = s.probs[s.action].max(1e-12).ln();
                loss += (-logp * adv - lambda * h) as f64;
                entropy += h as f64;
            }
            let n = steps.len().max(1) as f64;
            sqlgen_obs::obs_record!("rl.policy.loss", loss / n);
            sqlgen_obs::obs_record!("rl.policy.entropy", entropy / n);
        }
        // Head/dropout backward into one flat buffer, then stream BPTT
        // straight off the steps' own caches — no per-episode cache clone.
        let hidden = self.lstm.hidden();
        let mut dtops = vec![0.0f32; steps.len() * hidden];
        for (t, (s, &adv)) in steps.iter().zip(advantages).enumerate() {
            let dlogits = actor_logit_grad(&s.probs, s.action, adv, lambda);
            let dtop = &mut dtops[t * hidden..(t + 1) * hidden];
            self.head.backward_into(&s.top, &dlogits, dtop);
            Dropout::backward(dtop, &s.drop_mask);
        }
        // BPTT visits steps in reverse, but embedding-row gradients must
        // accumulate in forward step order (f32 addition is not
        // associative and rows repeat within an episode), so buffer the
        // input gradients and replay them forward.
        let in_dim = self.lstm.layers[0].input;
        let mut dxs = vec![0.0f32; steps.len() * in_dim];
        self.lstm.backward_sequence_with(
            steps.len(),
            |t| &steps[t].caches[..],
            |t| &dtops[t * hidden..(t + 1) * hidden],
            |t, dx| dxs[t * in_dim..(t + 1) * in_dim].copy_from_slice(dx),
        );
        for (t, s) in steps.iter().enumerate() {
            let dx = &dxs[t * in_dim..(t + 1) * in_dim];
            self.embed.backward(s.input_token, dx);
            if let Some(ctx) = self.context_token {
                // x = embed(token) + embed(ctx): the gradient flows to both.
                self.embed.backward(ctx, dx);
            }
        }
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.embed.params_mut();
        p.extend(self.lstm.params_mut());
        p.extend(self.head.params_mut());
        p
    }

    pub fn zero_grad(&mut self) {
        self.embed.zero_grad();
        self.lstm.zero_grad();
        self.head.zero_grad();
    }

    pub fn restore_buffers(&mut self) {
        self.embed.restore_buffers();
        self.lstm.restore_buffers();
        self.head.restore_buffers();
    }
}

/// Per-step cache for the critic.
#[derive(Debug, Default)]
pub struct CriticStep {
    pub input_token: usize,
    pub caches: StackCache,
    pub drop_mask: Vec<f32>,
    pub top: Vec<f32>,
    pub value: f32,
}

/// The value network V_φ.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CriticNet {
    pub embed: Embedding,
    pub lstm: LstmStack,
    pub head: Linear,
    #[serde(skip, default = "default_dropout")]
    pub dropout: Dropout,
    pub vocab_size: usize,
    /// Embedding row fed at step 0 (see [`ActorNet::start_token`]).
    pub start_token: usize,
    /// See [`ActorNet::context_token`].
    #[serde(default)]
    pub context_token: Option<usize>,
}

impl CriticNet {
    pub fn new(vocab_size: usize, cfg: &NetConfig, seed: u64) -> Self {
        Self::with_context_rows(vocab_size, 0, cfg, seed)
    }

    /// See [`ActorNet::with_context_rows`].
    pub fn with_context_rows(
        vocab_size: usize,
        context_rows: usize,
        cfg: &NetConfig,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        CriticNet {
            embed: Embedding::new(vocab_size + 1 + context_rows, cfg.embed_dim, &mut rng),
            lstm: LstmStack::new(cfg.embed_dim, cfg.hidden, cfg.layers, &mut rng),
            head: Linear::new(cfg.hidden, 1, &mut rng),
            dropout: Dropout::new(cfg.dropout),
            vocab_size,
            start_token: vocab_size,
            context_token: None,
        }
    }

    pub fn bos(&self) -> usize {
        self.vocab_size
    }

    /// Sets the step-0 input row (must be BOS or a reserved context row).
    pub fn set_start_token(&mut self, token: usize) {
        assert!(token >= self.vocab_size && token < self.embed.vocab_size());
        self.start_token = token;
    }

    /// Sets (or clears) the persistent context row added to every input.
    pub fn set_context_token(&mut self, token: Option<usize>) {
        if let Some(t) = token {
            assert!(t >= self.vocab_size && t < self.embed.vocab_size());
        }
        self.context_token = token;
    }

    pub fn begin(&self) -> StackState {
        self.lstm.zero_state()
    }

    /// One value estimate into recycled buffers (see
    /// [`ActorNet::step_into`]).
    pub fn step_into<R: Rng + ?Sized>(
        &self,
        prev: Option<usize>,
        state: &mut StackState,
        train: bool,
        rng: &mut R,
        step: &mut CriticStep,
        scratch: &mut NetScratch,
    ) {
        let input_token = prev.unwrap_or(self.start_token);
        scratch.x.clear();
        scratch.x.extend_from_slice(self.embed.row(input_token));
        if let Some(ctx) = self.context_token {
            for (xi, ci) in scratch.x.iter_mut().zip(self.embed.row(ctx)) {
                *xi += ci;
            }
        }
        scratch.z.resize(self.lstm.scratch_len(), 0.0);
        if step.caches.len() != self.lstm.layers.len() {
            step.caches = self.lstm.empty_cache();
        }
        self.lstm
            .forward_step_into(&scratch.x, state, &mut step.caches, &mut scratch.z);
        step.top.clear();
        step.top
            .extend_from_slice(&state.last().expect("non-empty stack").h);
        if train {
            self.dropout
                .apply_into(&mut step.top, rng, &mut step.drop_mask);
        } else {
            step.drop_mask.clear();
            step.drop_mask.resize(step.top.len(), 1.0);
        }
        let mut value = [0.0f32];
        self.head.forward_into(&step.top, &mut value);
        step.value = value[0];
        step.input_token = input_token;
    }

    /// One value estimate `V(s_t)` for the state reached after feeding
    /// `prev`. Allocating wrapper over [`CriticNet::step_into`].
    pub fn step<R: Rng + ?Sized>(
        &self,
        prev: Option<usize>,
        state: &mut StackState,
        train: bool,
        rng: &mut R,
    ) -> CriticStep {
        let mut step = CriticStep::default();
        let mut scratch = NetScratch::default();
        self.step_into(prev, state, train, rng, &mut step, &mut scratch);
        step
    }

    /// Backpropagates per-step value-loss gradients `dL/dV_t`.
    pub fn backward_episode(&mut self, steps: &[CriticStep], dvalues: &[f32]) {
        debug_assert_eq!(steps.len(), dvalues.len());
        let hidden = self.lstm.hidden();
        let mut dtops = vec![0.0f32; steps.len() * hidden];
        for (t, (s, &dv)) in steps.iter().zip(dvalues).enumerate() {
            let dtop = &mut dtops[t * hidden..(t + 1) * hidden];
            self.head.backward_into(&s.top, &[dv], dtop);
            Dropout::backward(dtop, &s.drop_mask);
        }
        // Buffer input gradients; embedding rows accumulate forward-order
        // (see ActorNet::backward_episode).
        let in_dim = self.lstm.layers[0].input;
        let mut dxs = vec![0.0f32; steps.len() * in_dim];
        self.lstm.backward_sequence_with(
            steps.len(),
            |t| &steps[t].caches[..],
            |t| &dtops[t * hidden..(t + 1) * hidden],
            |t, dx| dxs[t * in_dim..(t + 1) * in_dim].copy_from_slice(dx),
        );
        for (t, s) in steps.iter().enumerate() {
            let dx = &dxs[t * in_dim..(t + 1) * in_dim];
            self.embed.backward(s.input_token, dx);
            if let Some(ctx) = self.context_token {
                self.embed.backward(ctx, dx);
            }
        }
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.embed.params_mut();
        p.extend(self.lstm.params_mut());
        p.extend(self.head.params_mut());
        p
    }

    pub fn zero_grad(&mut self) {
        self.embed.zero_grad();
        self.lstm.zero_grad();
        self.head.zero_grad();
    }

    pub fn restore_buffers(&mut self) {
        self.embed.restore_buffers();
        self.lstm.restore_buffers();
        self.head.restore_buffers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actor_step_respects_mask() {
        let cfg = NetConfig {
            embed_dim: 8,
            hidden: 8,
            layers: 1,
            dropout: 0.0,
        };
        let actor = ActorNet::new(10, &cfg, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let state = actor.begin();
        let mut mask = vec![false; 10];
        mask[3] = true;
        mask[7] = true;
        for _ in 0..20 {
            let step = actor.step(None, &mut state.clone(), &mask, false, &mut rng);
            assert!(step.action == 3 || step.action == 7);
            assert_eq!(step.probs[0], 0.0);
            assert!((step.probs[3] + step.probs[7] - 1.0).abs() < 1e-5);
        }
    }

    /// A tiny bandit: one step, action 2 of 4 always rewarded. The actor
    /// trained with policy gradients must concentrate probability on it.
    #[test]
    fn actor_learns_a_bandit() {
        use sqlgen_nn::{Adam, Optimizer};
        let cfg = NetConfig {
            embed_dim: 8,
            hidden: 8,
            layers: 1,
            dropout: 0.0,
        };
        let mut actor = ActorNet::new(4, &cfg, 3);
        let mut adam = Adam::new(0.05);
        let mut rng = StdRng::seed_from_u64(4);
        let mask = vec![true; 4];
        for _ in 0..300 {
            let mut state = actor.begin();
            let step = actor.step(None, &mut state, &mask, true, &mut rng);
            let reward: f32 = if step.action == 2 { 1.0 } else { 0.0 };
            // Advantage with a constant baseline of 0.25 (uniform chance).
            let adv = reward - 0.25;
            actor.zero_grad();
            actor.backward_episode(&[step], &[adv], 0.0);
            adam.step(&mut actor.params_mut());
        }
        let mut state = actor.begin();
        let step = actor.step(None, &mut state, &mask, false, &mut rng);
        assert!(
            step.probs[2] > 0.8,
            "policy failed to concentrate: {:?}",
            step.probs
        );
    }

    #[test]
    fn critic_fits_constant_target() {
        use sqlgen_nn::{Adam, Optimizer};
        let cfg = NetConfig {
            embed_dim: 8,
            hidden: 8,
            layers: 1,
            dropout: 0.0,
        };
        let mut critic = CriticNet::new(6, &cfg, 5);
        let mut adam = Adam::new(0.02);
        let mut rng = StdRng::seed_from_u64(6);
        let target = 0.7f32;
        for _ in 0..400 {
            let mut state = critic.begin();
            let step = critic.step(Some(1), &mut state, false, &mut rng);
            let dv = 2.0 * (step.value - target);
            critic.zero_grad();
            critic.backward_episode(&[step], &[dv]);
            adam.step(&mut critic.params_mut());
        }
        let mut state = critic.begin();
        let v = critic.step(Some(1), &mut state, false, &mut rng).value;
        assert!((v - target).abs() < 0.1, "critic value {v}");
    }

    #[test]
    fn actor_serde_roundtrip() {
        let cfg = NetConfig::default();
        let actor = ActorNet::new(20, &cfg, 7);
        let json = serde_json::to_string(&actor).unwrap();
        let mut back: ActorNet = serde_json::from_str(&json).unwrap();
        back.restore_buffers();
        let mut rng = StdRng::seed_from_u64(8);
        let mask = vec![true; 20];
        let mut s1 = actor.begin();
        let mut s2 = back.begin();
        let a = actor.step(Some(3), &mut s1, &mask, false, &mut rng);
        let mut rng = StdRng::seed_from_u64(8);
        let b = back.step(Some(3), &mut s2, &mask, false, &mut rng);
        assert_eq!(a.probs, b.probs);
    }
}
