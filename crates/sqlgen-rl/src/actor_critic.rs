//! Actor-critic training (paper §4.3, Algorithm 3).
//!
//! Advantage `A(s_t, a_t) = r_t + V_φ(s_{t+1}) − V_φ(s_t)` (the TD error,
//! with `V(terminal) = 0` and γ = 1); actor loss `−logπ·A − λH`, critic
//! loss `(r_t + V(s_{t+1}) − V(s_t))²` treated semi-gradient (the target is
//! a constant w.r.t. φ).

use crate::env::SqlGenEnv;
use crate::episode::{run_episode_infer, run_episode_into, Episode, InferRollout, Rollout};
use crate::nets::{
    ActorNet, ActorStep, CriticNet, CriticStep, NetGradsBatch, NetScratch, QuantizedActor,
};
use crate::parallel::collect_episodes;
use crate::reinforce::TrainConfig;
use crate::train_batch::TrainRollout;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqlgen_nn::{clip_grad_norm, Adam, Optimizer, StackState};

/// Actor-critic trainer — the algorithm LearnedSQLGen ships with.
pub struct ActorCritic {
    pub actor: ActorNet,
    pub critic: CriticNet,
    pub cfg: TrainConfig,
    opt_actor: Adam,
    opt_critic: Adam,
    rng: StdRng,
    /// Recycled actor-rollout arena.
    rollout: Rollout,
    /// Recycled inference-rollout buffers.
    infer: InferRollout,
    /// Recycled critic-step arena (`csteps[..n]` live per episode).
    csteps: Vec<CriticStep>,
    cstate: StackState,
    cscratch: NetScratch,
    values: Vec<f32>,
    advantages: Vec<f32>,
    dvalues: Vec<f32>,
}

impl ActorCritic {
    pub fn new(action_space: usize, cfg: TrainConfig) -> Self {
        let actor = ActorNet::new(action_space, &cfg.net, cfg.seed);
        let critic = CriticNet::new(action_space, &cfg.net, cfg.seed ^ 0xc717);
        Self::from_nets(actor, critic, cfg)
    }

    /// Builds a trainer around pre-constructed networks (used by the
    /// AC-extend ablation, which reserves context embedding rows).
    pub fn from_nets(actor: ActorNet, critic: CriticNet, cfg: TrainConfig) -> Self {
        ActorCritic {
            actor,
            critic,
            opt_actor: Adam::new(cfg.lr_actor),
            opt_critic: Adam::new(cfg.lr_critic),
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x5eed),
            cfg,
            rollout: Rollout::new(),
            infer: InferRollout::new(),
            csteps: Vec::new(),
            cstate: StackState::new(),
            cscratch: NetScratch::default(),
            values: Vec::new(),
            advantages: Vec::new(),
            dvalues: Vec::new(),
        }
    }

    /// Runs the critic over an episode's input-token stream into the
    /// recycled critic arena; returns the number of live steps.
    fn critic_forward_into(
        critic: &CriticNet,
        steps: &[ActorStep],
        train: bool,
        rng: &mut StdRng,
        csteps: &mut Vec<CriticStep>,
        state: &mut StackState,
        scratch: &mut NetScratch,
    ) -> usize {
        critic.lstm.reset_state(state);
        for (t, s) in steps.iter().enumerate() {
            if t == csteps.len() {
                csteps.push(CriticStep::default());
            }
            // Step 0 fed the actor's start token (BOS or a context row);
            // `None` makes the critic use its own start token there.
            let prev = if s.input_token >= critic.vocab_size {
                None
            } else {
                Some(s.input_token)
            };
            critic.step_into(prev, state, train, rng, &mut csteps[t], scratch);
        }
        steps.len()
    }

    /// TD advantages and critic-loss gradients for an episode.
    ///
    /// Returns `(advantages, dvalues)` with `A_t = r_t + V_{t+1} − V_t`
    /// and `dL/dV_t = −2·A_t` (semi-gradient of the squared TD error).
    pub fn td_terms(values: &[f32], rewards: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let mut adv = Vec::new();
        let mut dv = Vec::new();
        Self::td_terms_into(values, rewards, &mut adv, &mut dv);
        (adv, dv)
    }

    /// [`ActorCritic::td_terms`] into recycled buffers.
    pub fn td_terms_into(values: &[f32], rewards: &[f32], adv: &mut Vec<f32>, dv: &mut Vec<f32>) {
        let n = values.len();
        adv.clear();
        adv.resize(n, 0.0);
        dv.clear();
        dv.resize(n, 0.0);
        for t in 0..n {
            let v_next = if t + 1 < n { values[t + 1] } else { 0.0 };
            adv[t] = rewards[t] + v_next - values[t];
            dv[t] = -2.0 * adv[t];
        }
    }

    /// One actor+critic update from a finished episode's steps/rewards.
    fn apply_update(&mut self, steps: &[ActorStep], rewards: &[f32]) {
        let mut crng = StdRng::seed_from_u64(self.rng.random::<u64>());
        let mut csteps = std::mem::take(&mut self.csteps);
        let mut cstate = std::mem::take(&mut self.cstate);
        let mut cscratch = std::mem::take(&mut self.cscratch);
        let n = Self::critic_forward_into(
            &self.critic,
            steps,
            true,
            &mut crng,
            &mut csteps,
            &mut cstate,
            &mut cscratch,
        );
        self.values.clear();
        self.values.extend(csteps[..n].iter().map(|s| s.value));
        Self::td_terms_into(
            &self.values,
            rewards,
            &mut self.advantages,
            &mut self.dvalues,
        );

        self.actor.zero_grad();
        self.actor
            .backward_episode(steps, &self.advantages, self.cfg.lambda);
        let mut ap = self.actor.params_mut();
        clip_grad_norm(&mut ap, self.cfg.grad_clip);
        self.opt_actor.step(&mut ap);

        self.critic.zero_grad();
        self.critic.backward_episode(&csteps[..n], &self.dvalues);
        let mut cp = self.critic.params_mut();
        clip_grad_norm(&mut cp, self.cfg.grad_clip);
        self.opt_critic.step(&mut cp);

        self.csteps = csteps;
        self.cstate = cstate;
        self.cscratch = cscratch;
    }

    /// Runs one training episode and updates both networks.
    pub fn train_episode(&mut self, env: &SqlGenEnv) -> Episode {
        let mut ro = std::mem::take(&mut self.rollout);
        let ep = run_episode_into(&self.actor, env, true, &mut self.rng, &mut ro);
        self.apply_update(ro.steps(), &ep.rewards);
        self.rollout = ro;
        ep
    }

    /// Trains on `episodes` episodes, collecting rollouts with `threads`
    /// parallel workers and applying both networks' updates serially in
    /// episode order. `threads <= 1` runs the exact single-threaded path
    /// (bit-identical to [`ActorCritic::train_episode`] in a loop).
    pub fn train_batch(
        &mut self,
        env: &SqlGenEnv,
        episodes: usize,
        threads: usize,
    ) -> Vec<Episode> {
        if threads <= 1 {
            return (0..episodes).map(|_| self.train_episode(env)).collect();
        }
        let mut out = Vec::with_capacity(episodes);
        let mut remaining = episodes;
        while remaining > 0 {
            // One round = one episode per worker, bounding policy staleness
            // at `threads` episodes.
            let batch = remaining.min(threads);
            let base: u64 = self.rng.random();
            for mut ep in collect_episodes(&self.actor, env, batch, true, batch, base) {
                self.apply_update(&ep.steps, &ep.rewards);
                ep.steps = Vec::new();
                out.push(ep);
            }
            remaining -= batch;
        }
        out
    }

    /// Trains on `episodes` episodes with up to `batch` lockstep GEMM
    /// lanes — both networks' forwards and backwards run lane-batched.
    ///
    /// Per round: one episode per lane under the current policy, per-lane
    /// critic RNGs drawn up front in lane order (the serial path draws one
    /// per episode just before its critic forward), a lockstep critic
    /// forward over the collected token streams, one lane-batched backward
    /// per network into per-lane gradient arenas, an ascending-lane-order
    /// reduce, and **one** clipped Adam step per network per round.
    /// `batch <= 1` is the exact legacy serial path; larger batches are
    /// reproducible per `(seed, batch)` but a different deterministic run
    /// than serial training (see [`crate::train_batch`]).
    pub fn train_batched(
        &mut self,
        env: &SqlGenEnv,
        episodes: usize,
        batch: usize,
    ) -> Vec<Episode> {
        if batch <= 1 {
            return (0..episodes).map(|_| self.train_episode(env)).collect();
        }
        let mut ro = TrainRollout::new();
        let mut agrads = NetGradsBatch::default();
        let mut cgrads = NetGradsBatch::default();
        let mut advantages: Vec<Vec<f32>> = Vec::new();
        let mut dvalues: Vec<Vec<f32>> = Vec::new();
        let mut out = Vec::with_capacity(episodes);
        let mut remaining = episodes;
        while remaining > 0 {
            // One round = one episode per lane, bounding policy staleness
            // at `batch` episodes (matching the threaded path).
            let b = remaining.min(batch);
            let base: u64 = self.rng.random();
            let eps = ro.collect(&self.actor, env, b, base);
            let mut crngs: Vec<StdRng> = (0..b)
                .map(|_| StdRng::seed_from_u64(self.rng.random::<u64>()))
                .collect();
            ro.critic_forward(&self.critic, b, &mut crngs);
            if advantages.len() < b {
                advantages.resize_with(b, Vec::new);
                dvalues.resize_with(b, Vec::new);
            }
            for (lane, ep) in eps.iter().enumerate() {
                self.values.clear();
                self.values
                    .extend(ro.csteps[lane][..ro.lens[lane]].iter().map(|s| s.value));
                Self::td_terms_into(
                    &self.values,
                    &ep.rewards,
                    &mut advantages[lane],
                    &mut dvalues[lane],
                );
            }

            self.actor.ensure_grads(&mut agrads, b);
            self.actor.backward_episodes_batch(
                b,
                &ro.steps,
                &ro.lens,
                &advantages,
                self.cfg.lambda,
                &mut agrads,
            );
            self.actor.zero_grad();
            self.actor.accumulate_grads(&agrads, b);
            let mut ap = self.actor.params_mut();
            clip_grad_norm(&mut ap, self.cfg.grad_clip);
            self.opt_actor.step(&mut ap);

            self.critic.ensure_grads(&mut cgrads, b);
            self.critic
                .backward_episodes_batch(b, &ro.csteps, &ro.lens, &dvalues, &mut cgrads);
            self.critic.zero_grad();
            self.critic.accumulate_grads(&cgrads, b);
            let mut cp = self.critic.params_mut();
            clip_grad_norm(&mut cp, self.cfg.grad_clip);
            self.opt_critic.step(&mut cp);

            out.extend(eps);
            remaining -= b;
        }
        out
    }

    /// Inference: generate a query with the trained policy.
    pub fn generate(&mut self, env: &SqlGenEnv) -> Episode {
        run_episode_infer(&self.actor, env, &mut self.rng, &mut self.infer)
    }

    /// Generates `n` queries with `threads` parallel workers (no updates).
    /// `threads <= 1` matches [`ActorCritic::generate`] in a loop
    /// bit-for-bit.
    pub fn generate_batch(&mut self, env: &SqlGenEnv, n: usize, threads: usize) -> Vec<Episode> {
        if threads <= 1 {
            return (0..n).map(|_| self.generate(env)).collect();
        }
        let base: u64 = self.rng.random();
        collect_episodes(&self.actor, env, n, false, threads, base)
    }

    /// Generates `n` queries with `batch` lockstep GEMM lanes (no updates).
    /// `batch <= 1` matches [`ActorCritic::generate`] in a loop
    /// bit-for-bit; larger batches are reproducible per (seed, batch) —
    /// see [`crate::batch`] for the determinism contract.
    pub fn generate_batched(&mut self, env: &SqlGenEnv, n: usize, batch: usize) -> Vec<Episode> {
        if batch <= 1 {
            return (0..n).map(|_| self.generate(env)).collect();
        }
        let base: u64 = self.rng.random();
        crate::batch::collect_episodes_batched(&self.actor, env, n, batch, base)
    }

    /// Generates `n` queries on an int8 snapshot of the actor with `batch`
    /// lockstep lanes (no updates). Same engine and determinism contract
    /// as [`ActorCritic::generate_batched`]; the sampled streams differ
    /// from the f32 path only within the quantization error of the logits.
    pub fn generate_batched_quant(
        &mut self,
        quant: &QuantizedActor,
        env: &SqlGenEnv,
        n: usize,
        batch: usize,
    ) -> Vec<Episode> {
        let base: u64 = self.rng.random();
        crate::batch::collect_episodes_batched(quant, env, n, batch.max(1), base)
    }
}

use rand::Rng;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use crate::nets::NetConfig;
    use sqlgen_engine::Estimator;
    use sqlgen_fsm::Vocabulary;
    use sqlgen_storage::gen::tpch_database;
    use sqlgen_storage::sample::SampleConfig;

    #[test]
    fn td_terms_match_hand_computation() {
        let values = [0.5f32, 0.2, 0.1];
        let rewards = [0.0f32, 0.0, 1.0];
        let (adv, dv) = ActorCritic::td_terms(&values, &rewards);
        assert!((adv[0] - (0.0 + 0.2 - 0.5)).abs() < 1e-6);
        assert!((adv[1] - (0.0 + 0.1 - 0.2)).abs() < 1e-6);
        assert!((adv[2] - (1.0 + 0.0 - 0.1)).abs() < 1e-6);
        for (a, d) in adv.iter().zip(&dv) {
            assert!((d + 2.0 * a).abs() < 1e-6);
        }
    }

    fn training_env_setup() -> (sqlgen_storage::Database, Vocabulary) {
        let db = tpch_database(0.2, 9);
        let vocab = Vocabulary::build(
            &db,
            &SampleConfig {
                k: 10,
                ..Default::default()
            },
        );
        (db, vocab)
    }

    #[test]
    fn actor_critic_improves_satisfaction_rate() {
        let (db, vocab) = training_env_setup();
        let est = Estimator::build(&db);
        // Tight enough that untrained policies rarely hit it.
        let env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(100.0, 800.0))
            .with_fsm_config(sqlgen_fsm::FsmConfig::spj());
        let cfg = TrainConfig {
            net: NetConfig {
                embed_dim: 16,
                hidden: 16,
                layers: 1,
                dropout: 0.0,
            },
            ..Default::default()
        };
        let satisfaction = |t: &mut ActorCritic, n: usize| -> f32 {
            (0..n).filter(|_| t.generate(&env).satisfied).count() as f32 / n as f32
        };
        // Baseline: the untrained policy.
        let mut fresh = ActorCritic::new(vocab.size(), cfg.clone());
        let untrained = satisfaction(&mut fresh, 60);

        let mut trainer = ActorCritic::new(vocab.size(), cfg);
        for _ in 0..900 {
            trainer.train_episode(&env);
        }
        let trained = satisfaction(&mut trainer, 60);
        assert!(
            trained > untrained + 0.05,
            "no improvement: untrained {untrained:.3} trained {trained:.3}"
        );
    }

    /// The critic's value estimates should correlate with actual returns
    /// after training.
    #[test]
    fn critic_values_track_returns() {
        let (db, vocab) = training_env_setup();
        let est = Estimator::build(&db);
        let env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(10.0, 10_000.0))
            .with_fsm_config(sqlgen_fsm::FsmConfig::spj());
        let cfg = TrainConfig {
            net: NetConfig {
                embed_dim: 16,
                hidden: 16,
                layers: 1,
                dropout: 0.0,
            },
            ..Default::default()
        };
        let mut trainer = ActorCritic::new(vocab.size(), cfg);
        for _ in 0..120 {
            trainer.train_episode(&env);
        }
        // After training, V(s_0) should be positive (expected return > 0)
        // rather than the 0 it started at.
        let mut rng = StdRng::seed_from_u64(1);
        let mut state = trainer.critic.begin();
        let v0 = trainer.critic.step(None, &mut state, false, &mut rng).value;
        assert!(v0 > 0.05, "critic uninformative: V(s0) = {v0}");
    }
}
