//! Episode rollout shared by all trainers.
//!
//! One episode = one query generated token-by-token (Algorithm 1):
//! the FSM masks the action space, the actor samples, the environment
//! rewards executable prefixes.

use crate::env::{RewardShaper, SqlGenEnv};
use crate::nets::{ActorNet, ActorStep};
use rand::Rng;
use sqlgen_engine::Statement;

/// A completed episode with everything the trainers need.
pub struct Episode {
    pub steps: Vec<ActorStep>,
    pub rewards: Vec<f32>,
    pub statement: Statement,
    /// Estimated metric (cardinality or cost) of the final statement.
    pub measured: f64,
    /// Whether the final statement satisfies the environment's constraint.
    pub satisfied: bool,
}

impl Episode {
    pub fn total_reward(&self) -> f32 {
        self.rewards.iter().sum()
    }

    pub fn len(&self) -> usize {
        self.steps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Generates one query with the current policy.
///
/// `train = true` enables dropout (the caches are collected either way; the
/// caller decides whether to backprop).
pub fn run_episode<R: Rng + ?Sized>(
    actor: &ActorNet,
    env: &SqlGenEnv,
    train: bool,
    rng: &mut R,
) -> Episode {
    let mut state = env.reset();
    let mut shaper = RewardShaper::new();
    let mut lstm_state = actor.begin();
    let mut mask = vec![false; env.action_space()];
    let mut steps = Vec::new();
    let mut rewards = Vec::new();
    let mut prev: Option<usize> = None;

    loop {
        state.mask_into(&mut mask);
        let step = actor.step(prev, &mut lstm_state, &mask, train, rng);
        let action = step.action;
        let (reward, done) = env.step(&mut state, action, &mut shaper);
        prev = Some(action);
        steps.push(step);
        rewards.push(reward);
        if done {
            break;
        }
    }

    let statement = state
        .statement()
        .expect("episode terminates with a complete statement")
        .clone();
    let measured = env.measure(&statement);
    let satisfied = env.constraint.satisfied(measured);
    sqlgen_obs::obs_record!("rl.episode.reward", rewards.iter().sum::<f32>());
    sqlgen_obs::obs_record!("rl.episode.len", steps.len() as f64);
    sqlgen_obs::obs_count!("rl.episodes.count");
    // Unconditional so the counter exists (and appears in traces and the
    // summary) even for runs where nothing satisfies the constraint.
    sqlgen_obs::obs_count!("gen.satisfied.count", u64::from(satisfied));
    Episode {
        steps,
        rewards,
        statement,
        measured,
        satisfied,
    }
}

/// Reward-to-go `R(τ_{t:T})` per step (the REINFORCE return).
pub fn rewards_to_go(rewards: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0; rewards.len()];
    let mut acc = 0.0;
    for t in (0..rewards.len()).rev() {
        acc += rewards[t];
        out[t] = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use crate::nets::NetConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sqlgen_engine::Estimator;
    use sqlgen_fsm::Vocabulary;
    use sqlgen_storage::gen::tpch_database;
    use sqlgen_storage::sample::SampleConfig;

    #[test]
    fn rewards_to_go_is_suffix_sum() {
        assert_eq!(
            rewards_to_go(&[1.0, 0.0, 2.0, 1.0]),
            vec![4.0, 3.0, 3.0, 1.0]
        );
        assert!(rewards_to_go(&[]).is_empty());
    }

    #[test]
    fn episode_runs_end_to_end_and_is_valid() {
        let db = tpch_database(0.1, 2);
        let vocab = Vocabulary::build(
            &db,
            &SampleConfig {
                k: 8,
                ..Default::default()
            },
        );
        let est = Estimator::build(&db);
        let env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(1.0, 500.0));
        let actor = ActorNet::new(
            vocab.size(),
            &NetConfig {
                embed_dim: 8,
                hidden: 8,
                layers: 1,
                dropout: 0.0,
            },
            1,
        );
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let ep = run_episode(&actor, &env, true, &mut rng);
            assert_eq!(ep.steps.len(), ep.rewards.len());
            assert!(ep.len() >= 5, "even the smallest query has 5 tokens");
            sqlgen_engine::validate(&db, &ep.statement).unwrap();
            assert!(ep.measured >= 0.0);
        }
    }
}
