//! Episode rollout shared by all trainers.
//!
//! One episode = one query generated token-by-token (Algorithm 1):
//! the FSM masks the action space, the actor samples, the environment
//! rewards executable prefixes.

use crate::env::{RewardShaper, SqlGenEnv};
use crate::nets::{ActorNet, ActorStep, NetScratch};
use rand::Rng;
use sqlgen_engine::Statement;
use sqlgen_nn::StackState;

/// A completed episode with everything the trainers need.
///
/// `steps` may be empty when the rollout used an arena (the backward caches
/// then live in the trainer's [`Rollout`], not in the episode); `actions`
/// and `rewards` are always populated, so `len()` is defined on rewards.
pub struct Episode {
    pub steps: Vec<ActorStep>,
    pub actions: Vec<usize>,
    pub rewards: Vec<f32>,
    pub statement: Statement,
    /// Estimated metric (cardinality or cost) of the final statement.
    pub measured: f64,
    /// Whether the final statement satisfies the environment's constraint.
    pub satisfied: bool,
}

impl Episode {
    pub fn total_reward(&self) -> f32 {
        self.rewards.iter().sum()
    }

    pub fn len(&self) -> usize {
        self.rewards.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rewards.is_empty()
    }
}

/// Recycled rollout buffers: the `ActorStep` arena plus everything else a
/// training episode needs. After the first episode the steady state is
/// allocation-free per token (the arena only grows when an episode is
/// longer than any previous one).
#[derive(Default)]
pub struct Rollout {
    /// Arena of per-step caches; `steps[..len]` is the live prefix.
    pub steps: Vec<ActorStep>,
    pub len: usize,
    scratch: NetScratch,
    lstm_state: StackState,
    mask: Vec<bool>,
}

impl Rollout {
    pub fn new() -> Self {
        Self::default()
    }

    /// The live steps of the most recent episode.
    pub fn steps(&self) -> &[ActorStep] {
        &self.steps[..self.len]
    }
}

/// Recycled buffers for cacheless inference rollouts.
#[derive(Default)]
pub struct InferRollout {
    scratch: NetScratch,
    lstm_state: StackState,
    mask: Vec<bool>,
}

impl InferRollout {
    pub fn new() -> Self {
        Self::default()
    }
}

/// Wraps up a finished environment rollout into an [`Episode`].
pub(crate) fn finish_episode(
    env: &SqlGenEnv,
    state: &sqlgen_fsm::GenState,
    actions: Vec<usize>,
    rewards: Vec<f32>,
) -> Episode {
    let statement = state
        .statement()
        .expect("episode terminates with a complete statement")
        .clone();
    let measured = env.measure(&statement);
    let satisfied = env.constraint.satisfied(measured);
    sqlgen_obs::obs_record!("rl.episode.reward", rewards.iter().sum::<f32>());
    sqlgen_obs::obs_record!("rl.episode.len", rewards.len() as f64);
    sqlgen_obs::obs_count!("rl.episodes.count");
    // Unconditional so the counter exists (and appears in traces and the
    // summary) even for runs where nothing satisfies the constraint.
    sqlgen_obs::obs_count!("gen.satisfied.count", u64::from(satisfied));
    Episode {
        steps: Vec::new(),
        actions,
        rewards,
        statement,
        measured,
        satisfied,
    }
}

/// Generates one query with the current policy, storing per-step caches in
/// the rollout arena (`ro.steps[..ro.len]`) instead of the returned episode.
///
/// `train = true` enables dropout; the RNG draw order per token is exactly
/// that of the pre-arena path, so fixed seeds reproduce the same queries.
pub fn run_episode_into<R: Rng + ?Sized>(
    actor: &ActorNet,
    env: &SqlGenEnv,
    train: bool,
    rng: &mut R,
    ro: &mut Rollout,
) -> Episode {
    let mut state = env.reset();
    let mut shaper = RewardShaper::new();
    actor.lstm.reset_state(&mut ro.lstm_state);
    ro.mask.resize(env.action_space(), false);
    ro.len = 0;
    let mut actions = Vec::new();
    let mut rewards = Vec::new();
    let mut prev: Option<usize> = None;

    loop {
        let _t = sqlgen_obs::obs_time!("rl.step.latency_us");
        state.mask_into(&mut ro.mask);
        if ro.len == ro.steps.len() {
            ro.steps.push(ActorStep::default());
        }
        let step = &mut ro.steps[ro.len];
        actor.step_into(
            prev,
            &mut ro.lstm_state,
            &ro.mask,
            train,
            rng,
            step,
            &mut ro.scratch,
        );
        let action = step.action;
        ro.len += 1;
        let (reward, done) = env.step(&mut state, action, &mut shaper);
        prev = Some(action);
        actions.push(action);
        rewards.push(reward);
        if done {
            break;
        }
    }
    finish_episode(env, &state, actions, rewards)
}

/// Generates one query with the current policy without collecting backward
/// caches — the inference fast path (zero heap allocations per token in
/// steady state). Action streams match `run_episode(train = false)` for the
/// same RNG.
pub fn run_episode_infer<R: Rng + ?Sized>(
    actor: &ActorNet,
    env: &SqlGenEnv,
    rng: &mut R,
    ro: &mut InferRollout,
) -> Episode {
    let mut state = env.reset();
    let mut shaper = RewardShaper::new();
    actor.lstm.reset_state(&mut ro.lstm_state);
    ro.mask.resize(env.action_space(), false);
    let mut actions = Vec::new();
    let mut rewards = Vec::new();
    let mut prev: Option<usize> = None;

    loop {
        let _t = sqlgen_obs::obs_time!("rl.step.latency_us");
        state.mask_into(&mut ro.mask);
        let action = actor.infer_step(prev, &mut ro.lstm_state, &ro.mask, rng, &mut ro.scratch);
        let (reward, done) = env.step(&mut state, action, &mut shaper);
        prev = Some(action);
        actions.push(action);
        rewards.push(reward);
        if done {
            break;
        }
    }
    finish_episode(env, &state, actions, rewards)
}

/// Generates one query with the current policy.
///
/// `train = true` enables dropout (the caches are collected either way; the
/// caller decides whether to backprop). Allocating wrapper over
/// [`run_episode_into`]: the episode owns its steps.
pub fn run_episode<R: Rng + ?Sized>(
    actor: &ActorNet,
    env: &SqlGenEnv,
    train: bool,
    rng: &mut R,
) -> Episode {
    let mut ro = Rollout::new();
    let mut ep = run_episode_into(actor, env, train, rng, &mut ro);
    ro.steps.truncate(ro.len);
    ep.steps = ro.steps;
    ep
}

/// Reward-to-go `R(τ_{t:T})` per step (the REINFORCE return).
pub fn rewards_to_go(rewards: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0; rewards.len()];
    rewards_to_go_into(rewards, &mut out);
    out
}

/// [`rewards_to_go`] into a caller-provided buffer (resized to match).
pub fn rewards_to_go_into(rewards: &[f32], out: &mut Vec<f32>) {
    out.clear();
    out.resize(rewards.len(), 0.0);
    let mut acc = 0.0;
    for t in (0..rewards.len()).rev() {
        acc += rewards[t];
        out[t] = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use crate::nets::NetConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sqlgen_engine::Estimator;
    use sqlgen_fsm::Vocabulary;
    use sqlgen_storage::gen::tpch_database;
    use sqlgen_storage::sample::SampleConfig;

    #[test]
    fn rewards_to_go_is_suffix_sum() {
        assert_eq!(
            rewards_to_go(&[1.0, 0.0, 2.0, 1.0]),
            vec![4.0, 3.0, 3.0, 1.0]
        );
        assert!(rewards_to_go(&[]).is_empty());
    }

    #[test]
    fn episode_runs_end_to_end_and_is_valid() {
        let db = tpch_database(0.1, 2);
        let vocab = Vocabulary::build(
            &db,
            &SampleConfig {
                k: 8,
                ..Default::default()
            },
        );
        let est = Estimator::build(&db);
        let env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(1.0, 500.0));
        let actor = ActorNet::new(
            vocab.size(),
            &NetConfig {
                embed_dim: 8,
                hidden: 8,
                layers: 1,
                dropout: 0.0,
            },
            1,
        );
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let ep = run_episode(&actor, &env, true, &mut rng);
            assert_eq!(ep.steps.len(), ep.rewards.len());
            assert!(ep.len() >= 5, "even the smallest query has 5 tokens");
            sqlgen_engine::validate(&db, &ep.statement).unwrap();
            assert!(ep.measured >= 0.0);
        }
    }
}
