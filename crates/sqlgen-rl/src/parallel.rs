//! Parallel episode collection.
//!
//! Rollouts dominate training wall-clock (every token runs the FSM mask,
//! the actor forward pass, and a cardinality estimate), and episodes in a
//! batch are independent given fixed policy weights — so they fan out
//! across `std::thread::scope` workers while gradient updates stay serial
//! in the trainer.
//!
//! Determinism contract: worker `w` owns the RNG stream seeded
//! `base ^ w` and produces a fixed contiguous chunk of the batch; results
//! are concatenated in chunk order. The collected batch is therefore a
//! pure function of `(policy weights, base, n, threads)` — independent of
//! scheduling — and a whole training run is reproducible for a fixed
//! `(seed, threads)` pair. Different `threads` values consume the seed
//! space differently, so they are *different* (but each reproducible)
//! runs.

use crate::env::SqlGenEnv;
use crate::episode::{run_episode, run_episode_infer, Episode, InferRollout};
use crate::nets::ActorNet;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG seed for worker `w` of a batch drawn with base seed `base`.
#[inline]
pub fn worker_seed(base: u64, worker: usize) -> u64 {
    base ^ worker as u64
}

/// Collects `n` episodes using up to `threads` scoped workers.
///
/// `train = true` keeps per-step backward caches in the returned episodes
/// (each worker allocates its own; the serial-update phase consumes them).
/// `train = false` uses the cacheless inference path with one recycled
/// rollout per worker.
pub fn collect_episodes(
    actor: &ActorNet,
    env: &SqlGenEnv,
    n: usize,
    train: bool,
    threads: usize,
    base: u64,
) -> Vec<Episode> {
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        let mut rng = StdRng::seed_from_u64(worker_seed(base, 0));
        if train {
            return (0..n)
                .map(|_| run_episode(actor, env, true, &mut rng))
                .collect();
        }
        let mut ro = InferRollout::new();
        return (0..n)
            .map(|_| run_episode_infer(actor, env, &mut rng, &mut ro))
            .collect();
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let lo = w * n / threads;
                let hi = (w + 1) * n / threads;
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(worker_seed(base, w));
                    if train {
                        (lo..hi)
                            .map(|_| run_episode(actor, env, true, &mut rng))
                            .collect::<Vec<_>>()
                    } else {
                        let mut ro = InferRollout::new();
                        (lo..hi)
                            .map(|_| run_episode_infer(actor, env, &mut rng, &mut ro))
                            .collect()
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("episode worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use crate::nets::NetConfig;
    use sqlgen_engine::Estimator;
    use sqlgen_fsm::Vocabulary;
    use sqlgen_storage::gen::tpch_database;
    use sqlgen_storage::sample::SampleConfig;

    #[test]
    fn parallel_collection_is_scheduling_independent() {
        let db = tpch_database(0.1, 2);
        let vocab = Vocabulary::build(
            &db,
            &SampleConfig {
                k: 8,
                ..Default::default()
            },
        );
        let est = Estimator::build(&db);
        let env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(1.0, 500.0));
        let actor = ActorNet::new(
            vocab.size(),
            &NetConfig {
                embed_dim: 8,
                hidden: 8,
                layers: 1,
                dropout: 0.0,
            },
            1,
        );
        let a = collect_episodes(&actor, &env, 8, false, 4, 0xfeed);
        let b = collect_episodes(&actor, &env, 8, false, 4, 0xfeed);
        assert_eq!(a.len(), 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.actions, y.actions);
            assert_eq!(x.rewards, y.rewards);
        }
        // Training-mode collection carries caches for the update phase.
        let t = collect_episodes(&actor, &env, 4, true, 4, 0xfeed);
        assert!(t.iter().all(|ep| ep.steps.len() == ep.len()));
    }
}
