//! The AC-extend ablation (paper §7.4).
//!
//! "We directly encoded multiple constraints to the state without using the
//! meta-critic": one actor-critic pair serves *all* constraints by feeding a
//! constraint encoding into the state. Here the constraint is quantized
//! into one of [`CONTEXT_BUCKETS`] log-spaced buckets over the task domain;
//! each bucket owns a reserved embedding row used as the episode's start
//! token, which conditions both the policy and the value function on the
//! constraint.

use crate::actor_critic::ActorCritic;
use crate::constraint::Constraint;
use crate::env::SqlGenEnv;
use crate::episode::Episode;
use crate::nets::{ActorNet, CriticNet};
use crate::reinforce::TrainConfig;

/// Number of constraint buckets (reserved embedding rows).
pub const CONTEXT_BUCKETS: usize = 16;

/// Actor-critic with the constraint folded into the state encoding.
pub struct AcExtend {
    pub ac: ActorCritic,
    domain: (f64, f64),
    vocab_size: usize,
}

impl AcExtend {
    /// `domain` is the metric range the constraints live in, e.g.
    /// `(10_000.0, 20_000.0)` for the paper's Figure 9 setup.
    pub fn new(action_space: usize, cfg: TrainConfig, domain: (f64, f64)) -> Self {
        assert!(domain.0 < domain.1 && domain.0 > 0.0, "bad domain");
        let actor = ActorNet::with_context_rows(action_space, CONTEXT_BUCKETS, &cfg.net, cfg.seed);
        let critic = CriticNet::with_context_rows(
            action_space,
            CONTEXT_BUCKETS,
            &cfg.net,
            cfg.seed ^ 0xc717,
        );
        let ac = ActorCritic::from_nets(actor, critic, cfg);
        AcExtend {
            ac,
            domain,
            vocab_size: action_space,
        }
    }

    /// Which bucket a constraint's center falls in (log-spaced).
    pub fn bucket(&self, constraint: &Constraint) -> usize {
        let c = constraint.center().max(self.domain.0).min(self.domain.1);
        let (lo, hi) = self.domain;
        let frac = (c.ln() - lo.ln()) / (hi.ln() - lo.ln());
        ((frac * CONTEXT_BUCKETS as f64) as usize).min(CONTEXT_BUCKETS - 1)
    }

    /// Conditions both networks on the constraint's bucket row: the bucket
    /// embedding is added to every step's input (persistent conditioning)
    /// and also fed as the start token.
    pub fn set_constraint(&mut self, constraint: &Constraint) {
        let row = self.vocab_size + 1 + self.bucket(constraint);
        self.ac.actor.set_start_token(row);
        self.ac.critic.set_start_token(row);
        self.ac.actor.set_context_token(Some(row));
        self.ac.critic.set_context_token(Some(row));
    }

    /// Trains one episode under the environment's constraint.
    pub fn train_episode(&mut self, env: &SqlGenEnv) -> Episode {
        self.set_constraint(&env.constraint.clone());
        self.ac.train_episode(env)
    }

    /// Inference under the environment's constraint.
    pub fn generate(&mut self, env: &SqlGenEnv) -> Episode {
        self.set_constraint(&env.constraint.clone());
        self.ac.generate(env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_domain_monotonically() {
        let ace = AcExtend::new(50, TrainConfig::default(), (1_000.0, 100_000.0));
        let b1 = ace.bucket(&Constraint::cardinality_point(1_000.0));
        let b2 = ace.bucket(&Constraint::cardinality_point(10_000.0));
        let b3 = ace.bucket(&Constraint::cardinality_point(100_000.0));
        assert_eq!(b1, 0);
        assert!(b2 > b1);
        assert_eq!(b3, CONTEXT_BUCKETS - 1);
        // Out-of-domain values clamp.
        assert_eq!(ace.bucket(&Constraint::cardinality_point(1.0)), 0);
    }

    #[test]
    fn set_constraint_switches_start_tokens() {
        let mut ace = AcExtend::new(50, TrainConfig::default(), (1_000.0, 100_000.0));
        ace.set_constraint(&Constraint::cardinality_range(1_000.0, 2_000.0));
        let t1 = ace.ac.actor.start_token;
        ace.set_constraint(&Constraint::cardinality_range(50_000.0, 90_000.0));
        let t2 = ace.ac.actor.start_token;
        assert_ne!(t1, t2);
        assert_eq!(ace.ac.actor.start_token, ace.ac.critic.start_token);
        assert!(t1 > 50 && t2 > 50, "context rows live after the vocab");
    }
}
