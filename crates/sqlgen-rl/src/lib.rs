//! Reinforcement learning for LearnedSQLGen (paper §4 and §6).
//!
//! * [`constraint`] — cardinality/cost constraints and the §4.2 rewards,
//! * [`env`] — the database environment (FSM masking + estimator rewards),
//! * [`cache`] — LRU memo cache for estimator reward lookups,
//! * [`nets`] — actor (policy) and critic (value) LSTM networks,
//! * [`episode`] — rollout machinery shared by all trainers,
//! * [`batch`] — batched lockstep inference with continuous lane refill,
//! * [`train_batch`] — lane-batched training rollouts (batched BPTT),
//! * [`reinforce`] — the REINFORCE baseline (Figure 8 ablation),
//! * [`actor_critic`] — the shipped A2C algorithm (Algorithm 3),
//! * [`ac_extend`] — constraint-in-the-state ablation (Figure 9),
//! * [`meta_critic`] — the §6 meta-critic for cross-constraint
//!   generalization.

pub mod ac_extend;
pub mod actor_critic;
pub mod batch;
pub mod cache;
pub mod constraint;
pub mod env;
pub mod episode;
pub mod meta_critic;
pub mod nets;
pub mod parallel;
pub mod reinforce;
pub mod train_batch;

pub use ac_extend::AcExtend;
pub use actor_critic::ActorCritic;
pub use batch::{collect_episodes_batched, run_jobs_batched, BatchRollout, Job, JobOutcome};
pub use cache::{EstimatorCache, DEFAULT_ESTIMATOR_CACHE_CAPACITY};
pub use constraint::{Constraint, Metric, Target, POINT_TOLERANCE};
pub use env::{ExecBudget, ExecDb, ExecStats, RewardMode, RewardShaper, RewardSource, SqlGenEnv};
pub use episode::{
    rewards_to_go, rewards_to_go_into, run_episode, run_episode_infer, run_episode_into, Episode,
    InferRollout, Rollout,
};
pub use meta_critic::{ConstraintEncoder, MetaCritic, MetaCriticTrainer, TaskSlot};
pub use nets::{
    ActorNet, ActorStep, BatchScratch, CriticNet, CriticStep, InferActor, NetConfig, NetGradsBatch,
    NetScratch, QuantizedActor,
};
pub use parallel::{collect_episodes, worker_seed};
pub use reinforce::{Reinforce, TrainConfig};
pub use train_batch::TrainRollout;
