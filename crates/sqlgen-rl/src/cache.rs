//! Fixed-capacity LRU memo cache for estimator reward lookups.
//!
//! The reward path estimates the same rendered query repeatedly: shaped
//! rewards re-measure every executable prefix, `generate_satisfied`
//! re-estimates duplicate candidates, and short queries recur across
//! episodes. Estimation is a pure function of the rendered statement (for
//! the cardinality and cost metrics — never latency, which measures
//! wall-clock execution), so memoizing it is bit-exact: a cached `f64` is
//! the same `f64` the estimator would recompute, and golden fixtures are
//! unaffected.
//!
//! The cache is a classic intrusive doubly-linked LRU over a slot arena,
//! O(1) per lookup, guarded by a [`Mutex`] so the threaded collection path
//! can share it. Hits/misses feed the `estimator.cache.hit` / `.miss`
//! counters and the `estimator.cache.hit_rate` gauge in `sqlgen-obs`.

use std::collections::HashMap;
use std::sync::Mutex;

/// Default capacity: comfortably covers the working set of a generation
/// run (distinct rendered prefixes) at ~100 bytes/entry.
pub const DEFAULT_ESTIMATOR_CACHE_CAPACITY: usize = 4096;

const NIL: usize = usize::MAX;

struct Slot {
    key: String,
    value: f64,
    prev: usize,
    next: usize,
}

struct LruInner {
    capacity: usize,
    map: HashMap<String, usize>,
    slots: Vec<Slot>,
    /// Most-recently used slot (NIL when empty).
    head: usize,
    /// Least-recently used slot (NIL when empty).
    tail: usize,
    hits: u64,
    misses: u64,
}

impl LruInner {
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slots[h].prev = i,
        }
        self.head = i;
    }

    fn get(&mut self, key: &str) -> Option<f64> {
        let &i = self.map.get(key)?;
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
        Some(self.slots[i].value)
    }

    fn insert(&mut self, key: String, value: f64) {
        if let Some(&i) = self.map.get(&key) {
            // Raced with another inserter (threaded path): refresh only.
            self.slots[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return;
        }
        let i = if self.slots.len() < self.capacity {
            self.slots.push(Slot {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        } else {
            // Evict the least-recently used entry and reuse its slot.
            let i = self.tail;
            self.unlink(i);
            let old = std::mem::replace(&mut self.slots[i].key, key.clone());
            self.map.remove(&old);
            self.slots[i].value = value;
            i
        };
        self.map.insert(key, i);
        self.push_front(i);
    }
}

/// Shared, thread-safe LRU memoizing `rendered query → estimated metric`.
pub struct EstimatorCache {
    inner: Mutex<LruInner>,
}

impl Default for EstimatorCache {
    fn default() -> Self {
        Self::new(DEFAULT_ESTIMATOR_CACHE_CAPACITY)
    }
}

impl EstimatorCache {
    /// `capacity` is clamped to ≥ 1.
    pub fn new(capacity: usize) -> Self {
        EstimatorCache {
            inner: Mutex::new(LruInner {
                capacity: capacity.max(1),
                map: HashMap::new(),
                slots: Vec::new(),
                head: NIL,
                tail: NIL,
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// Looks up `key`, computing and inserting via `f` on a miss. The
    /// mutex is released while `f` runs so concurrent workers estimate in
    /// parallel; duplicate concurrent computes insert the same pure value.
    pub fn get_or_insert_with(&self, key: &str, f: impl FnOnce() -> f64) -> f64 {
        {
            let mut inner = self.inner.lock().expect("estimator cache poisoned");
            if let Some(v) = inner.get(key) {
                inner.hits += 1;
                let (h, m) = (inner.hits, inner.misses);
                drop(inner);
                sqlgen_obs::obs_count!("estimator.cache.hit");
                sqlgen_obs::obs_gauge!("estimator.cache.hit_rate", h as f64 / (h + m) as f64);
                return v;
            }
            inner.misses += 1;
            let (h, m) = (inner.hits, inner.misses);
            drop(inner);
            sqlgen_obs::obs_count!("estimator.cache.miss");
            sqlgen_obs::obs_gauge!("estimator.cache.hit_rate", h as f64 / (h + m) as f64);
        }
        let value = f();
        self.inner
            .lock()
            .expect("estimator cache poisoned")
            .insert(key.to_string(), value);
        value
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("estimator cache poisoned");
        (inner.hits, inner.misses)
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("estimator cache poisoned")
            .map
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoizes_and_counts() {
        let cache = EstimatorCache::new(8);
        let mut computes = 0;
        for _ in 0..3 {
            let v = cache.get_or_insert_with("SELECT 1", || {
                computes += 1;
                42.0
            });
            assert_eq!(v, 42.0);
        }
        assert_eq!(computes, 1);
        assert_eq!(cache.stats(), (2, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used_at_capacity() {
        let cache = EstimatorCache::new(2);
        cache.get_or_insert_with("a", || 1.0);
        cache.get_or_insert_with("b", || 2.0);
        // Touch "a" so "b" is the LRU entry when "c" arrives.
        cache.get_or_insert_with("a", || unreachable!());
        cache.get_or_insert_with("c", || 3.0);
        assert_eq!(cache.len(), 2);
        // "a" survived; "b" was evicted and recomputes.
        cache.get_or_insert_with("a", || unreachable!());
        let mut recomputed = false;
        cache.get_or_insert_with("b", || {
            recomputed = true;
            2.0
        });
        assert!(recomputed);
    }

    #[test]
    fn eviction_churn_keeps_links_consistent() {
        let cache = EstimatorCache::new(4);
        for round in 0..5u64 {
            for i in 0..16u64 {
                let key = format!("q{}", (i * 7 + round) % 11);
                let v = cache.get_or_insert_with(&key, || i as f64);
                assert!(v >= 0.0);
                assert!(cache.len() <= 4);
            }
        }
    }
}
