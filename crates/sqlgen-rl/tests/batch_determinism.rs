//! Determinism contract of the batched GEMM inference engine.
//!
//! * Per-lane equivalence: every lane of a batched rollout reproduces, bit
//!   for bit, the serial `run_episode_infer` stream of that lane's seed
//!   (`base ^ lane`), including across continuous lane refills.
//! * `batch_size = 1` through the trainer facade is bit-identical to the
//!   legacy per-episode generation loop.
//! * A fixed `(seed, batch_size)` pair is reproducible run-to-run.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqlgen_engine::Estimator;
use sqlgen_fsm::Vocabulary;
use sqlgen_rl::{
    run_episode_infer, worker_seed, ActorCritic, ActorNet, BatchRollout, Constraint, InferRollout,
    NetConfig, SqlGenEnv, TrainConfig,
};
use sqlgen_storage::gen::tpch_database;
use sqlgen_storage::sample::SampleConfig;
use sqlgen_storage::Database;

fn cfg() -> TrainConfig {
    TrainConfig {
        net: NetConfig {
            embed_dim: 16,
            hidden: 16,
            layers: 2,
            dropout: 0.3,
        },
        seed: 5,
        ..Default::default()
    }
}

fn testbed() -> (Database, Vocabulary) {
    let db = tpch_database(0.2, 21);
    let vocab = Vocabulary::build(
        &db,
        &SampleConfig {
            k: 20,
            ..Default::default()
        },
    );
    (db, vocab)
}

/// Each lane of the batched engine emits exactly the token/reward streams a
/// serial inference loop produces for that lane's seed, on a TPC-H-scale
/// vocabulary and with more jobs than lanes (forcing refills mid-run).
#[test]
fn batched_lanes_match_serial_inference_on_tpch() {
    let (db, vocab) = testbed();
    let est = Estimator::build(&db);
    let env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(100.0, 800.0));
    let actor = ActorNet::new(vocab.size(), &cfg().net, 1234);
    let base = 0xBA7C4;

    for &batch in &[2usize, 8] {
        let n = 2 * batch + 3; // uneven: some lanes run one extra episode
        let mut ro = BatchRollout::new();
        let tagged = ro.collect_tagged(&actor, &env, n, batch, base);
        assert_eq!(tagged.len(), n);

        for lane in 0..batch {
            let mut lane_eps: Vec<_> = tagged.iter().filter(|(_, l, _)| *l == lane).collect();
            lane_eps.sort_by_key(|(job, _, _)| *job);
            let mut rng = StdRng::seed_from_u64(worker_seed(base, lane));
            let mut iro = InferRollout::new();
            for (job, _, ep) in lane_eps {
                let serial = run_episode_infer(&actor, &env, &mut rng, &mut iro);
                assert_eq!(
                    ep.actions, serial.actions,
                    "batch={batch} lane={lane} job={job}: token stream diverged"
                );
                assert_eq!(
                    ep.rewards, serial.rewards,
                    "batch={batch} lane={lane} job={job}: rewards diverged"
                );
            }
        }
    }
}

/// Through the trainer facade, `generate_batched(n, 1)` is the legacy
/// serial path: identical episodes, same trainer RNG consumption.
#[test]
fn facade_batch_one_is_bit_identical_to_legacy_generate() {
    let (db, vocab) = testbed();
    let est = Estimator::build(&db);
    let env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(100.0, 800.0));

    let legacy: Vec<Vec<usize>> = {
        let mut ac = ActorCritic::new(vocab.size(), cfg());
        ac.train_batch(&env, 10, 1);
        (0..6).map(|_| ac.generate(&env).actions).collect()
    };
    let batched: Vec<Vec<usize>> = {
        let mut ac = ActorCritic::new(vocab.size(), cfg());
        ac.train_batch(&env, 10, 1);
        ac.generate_batched(&env, 6, 1)
            .into_iter()
            .map(|ep| ep.actions)
            .collect()
    };
    assert_eq!(legacy, batched, "batch_size=1 is not the legacy path");
}

/// A fixed `(seed, batch_size)` is bit-reproducible run-to-run through the
/// trainer facade, and episodes come back in job order.
#[test]
fn facade_batched_generation_is_reproducible() {
    let (db, vocab) = testbed();
    let est = Estimator::build(&db);
    let env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(100.0, 800.0));

    let run = || {
        let mut ac = ActorCritic::new(vocab.size(), cfg());
        ac.train_batch(&env, 10, 1);
        ac.generate_batched(&env, 13, 8)
            .into_iter()
            .map(|ep| ep.actions)
            .collect::<Vec<_>>()
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), 13);
    assert_eq!(a, b, "fixed (seed, batch) diverged between identical runs");
}
