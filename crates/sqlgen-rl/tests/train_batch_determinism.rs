//! Determinism contract of lane-batched training (batched BPTT).
//!
//! * Per-lane gradient equivalence: every lane's gradient arena from the
//!   batched backward is bit-identical to a serial `backward_episode` of
//!   that lane's episode alone, at several batch widths, for both the
//!   actor and the critic.
//! * `batch <= 1` through the trainer facade is bit-identical to the
//!   legacy per-episode training loop.
//! * A fixed `(seed, batch)` training run is reproducible run-to-run.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqlgen_engine::Estimator;
use sqlgen_fsm::Vocabulary;
use sqlgen_rl::{
    collect_episodes_batched, rewards_to_go, run_episode_into, worker_seed, ActorCritic, ActorNet,
    Constraint, CriticNet, NetConfig, NetGradsBatch, QuantizedActor, Rollout, SqlGenEnv,
    TrainConfig, TrainRollout,
};
use sqlgen_storage::gen::tpch_database;
use sqlgen_storage::sample::SampleConfig;
use sqlgen_storage::Database;

fn cfg() -> TrainConfig {
    TrainConfig {
        net: NetConfig {
            embed_dim: 16,
            hidden: 16,
            layers: 2,
            dropout: 0.3,
        },
        seed: 5,
        ..Default::default()
    }
}

fn testbed() -> (Database, Vocabulary) {
    let db = tpch_database(0.2, 21);
    let vocab = Vocabulary::build(
        &db,
        &SampleConfig {
            k: 20,
            ..Default::default()
        },
    );
    (db, vocab)
}

/// Batched training collection + batched BPTT produce, per lane, exactly
/// the episode and the gradients a serial rollout + `backward_episode`
/// with that lane's seed produces — for the actor and the critic, at
/// several batch widths, on a TPC-H-scale vocabulary.
#[test]
fn batched_bptt_gradients_match_serial_per_lane_on_tpch() {
    let (db, vocab) = testbed();
    let est = Estimator::build(&db);
    let env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(100.0, 800.0));
    let c = cfg();
    let actor = ActorNet::new(vocab.size(), &c.net, 1234);
    let critic = CriticNet::new(vocab.size(), &c.net, 1234 ^ 0xc717);
    let base = 0x7EA1;

    for &batch in &[2usize, 4, 8] {
        let mut ro = TrainRollout::new();
        let eps = ro.collect(&actor, &env, batch, base);
        assert_eq!(eps.len(), batch);

        // Batched actor backward into per-lane arenas.
        let advantages: Vec<Vec<f32>> = eps.iter().map(|ep| rewards_to_go(&ep.rewards)).collect();
        let mut agrads = NetGradsBatch::default();
        actor.ensure_grads(&mut agrads, batch);
        actor.backward_episodes_batch(
            batch,
            &ro.steps,
            &ro.lens,
            &advantages,
            c.lambda,
            &mut agrads,
        );

        // Batched critic forward + backward (fixed per-lane RNG seeds).
        let mut crngs: Vec<StdRng> = (0..batch)
            .map(|l| StdRng::seed_from_u64(0xC0FFEE ^ l as u64))
            .collect();
        ro.critic_forward(&critic, batch, &mut crngs);
        let mut dvalues: Vec<Vec<f32>> = Vec::new();
        for (lane, ep) in eps.iter().enumerate() {
            let values: Vec<f32> = ro.csteps[lane][..ro.lens[lane]]
                .iter()
                .map(|s| s.value)
                .collect();
            let (_, dv) = ActorCritic::td_terms(&values, &ep.rewards);
            dvalues.push(dv);
        }
        let mut cgrads = NetGradsBatch::default();
        critic.ensure_grads(&mut cgrads, batch);
        critic.backward_episodes_batch(batch, &ro.csteps, &ro.lens, &dvalues, &mut cgrads);

        for lane in 0..batch {
            // Serial reference: same seed must reproduce the lane's episode.
            let mut rng = StdRng::seed_from_u64(worker_seed(base, lane));
            let mut sro = Rollout::new();
            let mut a2 = actor.clone();
            let serial = run_episode_into(&a2, &env, true, &mut rng, &mut sro);
            assert_eq!(
                serial.actions, eps[lane].actions,
                "batch={batch} lane={lane}: training token stream diverged"
            );
            assert_eq!(serial.rewards, eps[lane].rewards);

            a2.zero_grad();
            a2.backward_episode(sro.steps(), &advantages[lane], c.lambda);
            assert_eq!(
                a2.embed.table.grad.data, agrads.embed[lane].data,
                "batch={batch} lane={lane}: embedding grads diverged"
            );
            for (l, layer) in a2.lstm.layers.iter().enumerate() {
                let g = &agrads.lstm[lane][l];
                assert_eq!(
                    layer.w_ih.grad.data, g.w_ih.data,
                    "batch={batch} lane={lane} layer={l}: w_ih grads diverged"
                );
                assert_eq!(layer.w_hh.grad.data, g.w_hh.data);
                assert_eq!(layer.b.grad.data, g.b.data);
            }
            assert_eq!(
                a2.head.w.grad.data, agrads.head[lane].w.data,
                "batch={batch} lane={lane}: head grads diverged"
            );
            assert_eq!(a2.head.b.grad.data, agrads.head[lane].b.data);

            // Serial critic reference over the same token stream.
            let mut c2 = critic.clone();
            let mut crng = StdRng::seed_from_u64(0xC0FFEE ^ lane as u64);
            let mut cstate = c2.begin();
            let mut csteps = Vec::new();
            for s in sro.steps() {
                let prev = if s.input_token >= c2.vocab_size {
                    None
                } else {
                    Some(s.input_token)
                };
                csteps.push(c2.step(prev, &mut cstate, true, &mut crng));
            }
            for (t, s) in csteps.iter().enumerate() {
                assert_eq!(
                    s.value, ro.csteps[lane][t].value,
                    "batch={batch} lane={lane} t={t}: critic value diverged"
                );
            }
            c2.zero_grad();
            c2.backward_episode(&csteps, &dvalues[lane]);
            assert_eq!(
                c2.embed.table.grad.data, cgrads.embed[lane].data,
                "batch={batch} lane={lane}: critic embedding grads diverged"
            );
            for (l, layer) in c2.lstm.layers.iter().enumerate() {
                let g = &cgrads.lstm[lane][l];
                assert_eq!(layer.w_ih.grad.data, g.w_ih.data);
                assert_eq!(layer.w_hh.grad.data, g.w_hh.data);
                assert_eq!(layer.b.grad.data, g.b.data);
            }
            assert_eq!(c2.head.w.grad.data, cgrads.head[lane].w.data);
            assert_eq!(c2.head.b.grad.data, cgrads.head[lane].b.data);
        }
    }
}

/// Through the trainer facade, `train_batched(n, 1)` is the legacy
/// per-episode path: identical episodes and identical final weights.
#[test]
fn facade_train_batch_one_is_bit_identical_to_legacy() {
    let (db, vocab) = testbed();
    let est = Estimator::build(&db);
    let env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(100.0, 800.0));

    let mut legacy = ActorCritic::new(vocab.size(), cfg());
    let legacy_eps: Vec<Vec<usize>> = (0..8).map(|_| legacy.train_episode(&env).actions).collect();

    let mut batched = ActorCritic::new(vocab.size(), cfg());
    let batched_eps: Vec<Vec<usize>> = batched
        .train_batched(&env, 8, 1)
        .into_iter()
        .map(|ep| ep.actions)
        .collect();

    assert_eq!(legacy_eps, batched_eps, "batch=1 is not the legacy path");
    assert_eq!(
        legacy.actor.head.w.value.data,
        batched.actor.head.w.value.data
    );
    assert_eq!(
        legacy.critic.head.w.value.data,
        batched.critic.head.w.value.data
    );
}

/// A fixed `(seed, batch)` training run reproduces bit-for-bit, and the
/// quantized snapshot of the trained actor generates reproducibly too.
#[test]
fn batched_training_and_quantized_generation_are_reproducible() {
    let (db, vocab) = testbed();
    let est = Estimator::build(&db);
    let env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(100.0, 800.0));

    let run = || {
        let mut ac = ActorCritic::new(vocab.size(), cfg());
        let eps: Vec<Vec<usize>> = ac
            .train_batched(&env, 10, 4)
            .into_iter()
            .map(|ep| ep.actions)
            .collect();
        let quant = QuantizedActor::from_actor(&ac.actor);
        let gen: Vec<Vec<usize>> = collect_episodes_batched(&quant, &env, 9, 4, 0xDEED)
            .into_iter()
            .map(|ep| ep.actions)
            .collect();
        (eps, ac.actor.head.w.value.data.clone(), gen)
    };
    let (eps_a, w_a, gen_a) = run();
    let (eps_b, w_b, gen_b) = run();
    assert_eq!(eps_a.len(), 10);
    assert_eq!(gen_a.len(), 9);
    assert_eq!(eps_a, eps_b, "fixed (seed, batch) training diverged");
    assert_eq!(w_a, w_b, "trained weights diverged between identical runs");
    assert_eq!(gen_a, gen_b, "quantized generation diverged");
}
