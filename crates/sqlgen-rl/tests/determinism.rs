//! Determinism guarantees of the batched/parallel rollout paths.
//!
//! * `threads = 1` must reproduce the pre-kernel-rewrite token streams
//!   bit-for-bit (`fixtures/golden_tokens.json`, dumped by
//!   `examples/golden_dump.rs` from the original per-episode loops).
//! * `threads > 1` must be reproducible run-to-run for a fixed seed.

use sqlgen_engine::Estimator;
use sqlgen_fsm::Vocabulary;
use sqlgen_rl::{ActorCritic, Constraint, NetConfig, Reinforce, SqlGenEnv, TrainConfig};
use sqlgen_storage::gen::tpch_database;
use sqlgen_storage::sample::SampleConfig;
use sqlgen_storage::Database;

fn cfg() -> TrainConfig {
    TrainConfig {
        net: NetConfig {
            embed_dim: 16,
            hidden: 16,
            layers: 2,
            dropout: 0.3,
        },
        seed: 5,
        ..Default::default()
    }
}

fn testbed() -> (Database, Vocabulary) {
    let db = tpch_database(0.2, 21);
    let vocab = Vocabulary::build(
        &db,
        &SampleConfig {
            k: 20,
            ..Default::default()
        },
    );
    (db, vocab)
}

fn fixture_episodes(key: &str) -> Vec<Vec<usize>> {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/golden_tokens.json"
    );
    let text = std::fs::read_to_string(path).expect("golden fixture present");
    let v: serde_json::Value = serde_json::from_str(&text).expect("fixture parses");
    v.get(key)
        .unwrap_or_else(|| panic!("fixture key {key}"))
        .as_array()
        .expect("array of episodes")
        .iter()
        .map(|ep| {
            ep.as_array()
                .expect("array of tokens")
                .iter()
                .map(|t| t.as_u64().expect("token id") as usize)
                .collect()
        })
        .collect()
}

/// The batched APIs at `threads = 1` reproduce the exact token streams the
/// original (pre-arena, pre-fused-kernel) per-episode loops produced.
#[test]
fn serial_batches_reproduce_golden_token_streams() {
    let (db, vocab) = testbed();
    let est = Estimator::build(&db);
    let env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(100.0, 800.0));

    let mut ac = ActorCritic::new(vocab.size(), cfg());
    let train: Vec<Vec<usize>> = ac
        .train_batch(&env, 40, 1)
        .into_iter()
        .map(|ep| ep.actions)
        .collect();
    assert_eq!(train, fixture_episodes("ac_train"), "AC training drifted");
    let generated: Vec<Vec<usize>> = ac
        .generate_batch(&env, 10, 1)
        .into_iter()
        .map(|ep| ep.actions)
        .collect();
    assert_eq!(
        generated,
        fixture_episodes("ac_generate"),
        "AC generation drifted"
    );

    let mut rf = Reinforce::new(vocab.size(), cfg());
    let train: Vec<Vec<usize>> = rf
        .train_batch(&env, 20, 1)
        .into_iter()
        .map(|ep| ep.actions)
        .collect();
    assert_eq!(train, fixture_episodes("rf_train"), "RF training drifted");
    let generated: Vec<Vec<usize>> = rf
        .generate_batch(&env, 5, 1)
        .into_iter()
        .map(|ep| ep.actions)
        .collect();
    assert_eq!(
        generated,
        fixture_episodes("rf_generate"),
        "RF generation drifted"
    );
}

/// `threads = 4` is a different (seed-space) run than `threads = 1`, but it
/// must be bit-reproducible run-to-run: scheduling may interleave workers
/// arbitrarily, the collected batches may not.
#[test]
fn parallel_training_is_reproducible_run_to_run() {
    let (db, vocab) = testbed();
    let est = Estimator::build(&db);
    let env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(100.0, 800.0));

    let run = || {
        let mut ac = ActorCritic::new(vocab.size(), cfg());
        let mut actions: Vec<Vec<usize>> = ac
            .train_batch(&env, 12, 4)
            .into_iter()
            .map(|ep| ep.actions)
            .collect();
        actions.extend(
            ac.generate_batch(&env, 8, 4)
                .into_iter()
                .map(|ep| ep.actions),
        );
        actions
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), 20);
    assert_eq!(a, b, "threads=4 run diverged between identical runs");
}
