//! Property tests for the storage substrate: histogram laws, sampling
//! invariants and statistics bounds.

use proptest::prelude::*;
use sqlgen_storage::sample::{distinct_values, sample_column};
use sqlgen_storage::{Column, ColumnStats, Histogram, Value};

proptest! {
    /// `fraction_below` is monotone non-decreasing and bounded in [0, 1]
    /// for any data and probe points.
    #[test]
    fn histogram_fraction_monotone(
        data in proptest::collection::vec(-1e6f64..1e6, 1..300),
        probes in proptest::collection::vec(-2e6f64..2e6, 2..20),
    ) {
        let h = Histogram::build(data, 16).expect("non-empty");
        let mut sorted = probes.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for x in sorted {
            let f = h.fraction_below(x);
            prop_assert!((0.0..=1.0).contains(&f), "fraction {f}");
            prop_assert!(f >= prev - 1e-9, "not monotone: {f} < {prev}");
            prev = f;
        }
        prop_assert_eq!(h.fraction_below(h.min() - 1.0), 0.0);
        prop_assert_eq!(h.fraction_below(h.max() + 1.0), 1.0);
    }

    /// `fraction_between` approximates the true fraction within a coarse
    /// bound on uniform-ish data.
    #[test]
    fn histogram_between_approximates_truth(
        n in 50usize..400,
        lo_frac in 0.0f64..0.9,
        width_frac in 0.05f64..0.5,
    ) {
        let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let h = Histogram::build(data.clone(), 16).unwrap();
        let lo = lo_frac * (n - 1) as f64;
        let hi = ((lo_frac + width_frac).min(1.0)) * (n - 1) as f64;
        let est = h.fraction_between(lo, hi);
        let truth = data.iter().filter(|&&x| x >= lo && x <= hi).count() as f64 / n as f64;
        prop_assert!((est - truth).abs() < 0.15, "est {est} truth {truth}");
    }

    /// Column statistics: distinct counts and equality selectivities are
    /// consistent for any integer data.
    #[test]
    fn column_stats_laws(data in proptest::collection::vec(-50i64..50, 1..400)) {
        let col = Column::Int(data.clone());
        let stats = ColumnStats::build("c", &col);
        let mut uniq = data.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(stats.distinct, uniq.len());
        // Selectivities are valid probabilities; MCV entries are exact.
        let mut mcv_mass = 0.0;
        for (v, f) in &stats.mcvs {
            prop_assert!(*f > 0.0 && *f <= 1.0);
            mcv_mass += f;
            if let Value::Int(x) = v {
                let truth = data.iter().filter(|&&d| d == *x).count() as f64
                    / data.len() as f64;
                prop_assert!((f - truth).abs() < 1e-9);
            }
        }
        prop_assert!(mcv_mass <= 1.0 + 1e-9);
        for probe in [-100i64, 0, 7, 100] {
            let s = stats.eq_selectivity(&Value::Int(probe));
            prop_assert!((0.0..=1.0).contains(&s));
        }
    }

    /// Sampled values are distinct and drawn from the column.
    #[test]
    fn sample_column_invariants(
        data in proptest::collection::vec(0i64..200, 1..300),
        k in 1usize..50,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let col = Column::Int(data.clone());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sample = sample_column(&col, k, &mut rng);
        prop_assert!(sample.len() <= k);
        for w in sample.windows(2) {
            prop_assert_ne!(&w[0], &w[1], "duplicate in sample");
        }
        for v in &sample {
            if let Value::Int(x) = v {
                prop_assert!(data.contains(x), "sampled value not in column");
            }
        }
    }

    /// `distinct_values` returns a sorted prefix of the deduplicated
    /// domain.
    #[test]
    fn distinct_values_sorted_and_bounded(
        data in proptest::collection::vec(-30i64..30, 0..200),
        limit in 1usize..40,
    ) {
        let col = Column::Int(data.clone());
        let vals = distinct_values(&col, limit);
        prop_assert!(vals.len() <= limit);
        for w in vals.windows(2) {
            match (&w[0], &w[1]) {
                (Value::Int(a), Value::Int(b)) => prop_assert!(a < b),
                other => prop_assert!(false, "unexpected {other:?}"),
            }
        }
    }
}
