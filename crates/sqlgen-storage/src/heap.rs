//! Heap table pages: row encoding, the slotted-page builder, and the
//! bounded-memory append path.
//!
//! ## Row encoding
//!
//! Rows are encoded against their schema, so no per-value type tags are
//! stored:
//!
//! * `Int`   — 8 bytes, i64 little-endian
//! * `Float` — 8 bytes, `f64::to_bits` little-endian (bit-exact round
//!   trip, NaN payloads included — required for bitwise equivalence with
//!   the in-memory backend)
//! * `Text`  — u32 LE byte length + UTF-8 bytes
//!
//! ## Page payload layout (inside [`crate::pager::PAGE_PAYLOAD`])
//!
//! ```text
//! offset            field
//! 0                 row count n (u16 LE)
//! 2 + 2*i           slot i: row start offset within payload (u16 LE)
//! 2 + 2*n ..        row bytes, in slot order
//! ```
//!
//! Pages are immutable once finalized; the builder owns exactly one page
//! buffer, which is what bounds generator memory — a multi-GB TPC-H build
//! holds one row and one page in flight, never a table.

use crate::pager::{PageType, Pager, StorageError, PAGE_PAYLOAD};
use crate::schema::TableSchema;
use crate::value::{DataType, Value};

/// Bytes of payload overhead per page (row count) and per row (slot).
const PAGE_DIR_BASE: usize = 2;
const SLOT_BYTES: usize = 2;

/// Encodes one row against `schema` into `out`.
pub fn encode_row(schema: &TableSchema, row: &[Value], out: &mut Vec<u8>) {
    assert_eq!(
        row.len(),
        schema.columns.len(),
        "row arity mismatch for table {}",
        schema.name
    );
    for (def, v) in schema.columns.iter().zip(row) {
        match (def.dtype, v) {
            (DataType::Int, Value::Int(x)) => out.extend_from_slice(&x.to_le_bytes()),
            (DataType::Float, Value::Float(x)) => out.extend_from_slice(&x.to_bits().to_le_bytes()),
            // Mirror `Column::push`: ints coerce into float columns.
            (DataType::Float, Value::Int(x)) => {
                out.extend_from_slice(&(*x as f64).to_bits().to_le_bytes())
            }
            (DataType::Text, Value::Text(s)) => {
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            (dt, v) => panic!("type mismatch: column is {dt:?}, value is {v:?}"),
        }
    }
}

/// Byte offset of column `col` within an encoded row, walking the schema.
fn column_offset(schema: &TableSchema, bytes: &[u8], col: usize) -> usize {
    let mut off = 0;
    for def in schema.columns.iter().take(col) {
        off += match def.dtype {
            DataType::Int | DataType::Float => 8,
            DataType::Text => {
                let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
                4 + len
            }
        };
    }
    off
}

/// Decodes column `col` of an encoded row.
pub fn decode_cell(schema: &TableSchema, bytes: &[u8], col: usize) -> Value {
    let off = column_offset(schema, bytes, col);
    match schema.columns[col].dtype {
        DataType::Int => Value::Int(i64::from_le_bytes(bytes[off..off + 8].try_into().unwrap())),
        DataType::Float => Value::Float(f64::from_bits(u64::from_le_bytes(
            bytes[off..off + 8].try_into().unwrap(),
        ))),
        DataType::Text => {
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            Value::Text(
                String::from_utf8(bytes[off + 4..off + 4 + len].to_vec())
                    .expect("heap text cell is valid UTF-8"),
            )
        }
    }
}

/// Decodes a full row.
pub fn decode_row(schema: &TableSchema, bytes: &[u8]) -> Vec<Value> {
    (0..schema.columns.len())
        .map(|c| decode_cell(schema, bytes, c))
        .collect()
}

/// Parsed view of a heap page payload: the slot directory.
pub struct HeapPage<'p> {
    payload: &'p [u8],
    rows: usize,
}

impl<'p> HeapPage<'p> {
    /// Parses a heap page from a full page buffer (header already
    /// verified by the pool).
    pub fn parse(page: &'p [u8]) -> Result<HeapPage<'p>, StorageError> {
        use crate::pager::PAGE_HEADER;
        let len = u32::from_le_bytes(page[8..12].try_into().unwrap()) as usize;
        let payload = &page[PAGE_HEADER..PAGE_HEADER + len];
        if payload.len() < PAGE_DIR_BASE {
            return Err(StorageError::Corrupt(
                "heap page shorter than directory".into(),
            ));
        }
        let rows = u16::from_le_bytes(payload[0..2].try_into().unwrap()) as usize;
        if PAGE_DIR_BASE + rows * SLOT_BYTES > payload.len() {
            return Err(StorageError::Corrupt(
                "heap slot directory truncated".into(),
            ));
        }
        Ok(HeapPage { payload, rows })
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Raw bytes of row `slot`.
    pub fn row_bytes(&self, slot: usize) -> &'p [u8] {
        assert!(slot < self.rows, "slot {slot} out of range ({})", self.rows);
        let at = |i: usize| {
            u16::from_le_bytes(
                self.payload[PAGE_DIR_BASE + i * SLOT_BYTES..PAGE_DIR_BASE + (i + 1) * SLOT_BYTES]
                    .try_into()
                    .unwrap(),
            ) as usize
        };
        let start = at(slot);
        let end = if slot + 1 < self.rows {
            at(slot + 1)
        } else {
            self.payload.len()
        };
        &self.payload[start..end]
    }
}

/// Accumulates rows into one page payload; holds exactly one page of
/// memory regardless of table size.
pub struct PageBuilder {
    /// Slot offsets (relative to payload start), finalized on `take`.
    slots: Vec<u16>,
    data: Vec<u8>,
}

impl Default for PageBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PageBuilder {
    pub fn new() -> PageBuilder {
        PageBuilder {
            slots: Vec::new(),
            data: Vec::with_capacity(PAGE_PAYLOAD),
        }
    }

    pub fn rows(&self) -> usize {
        self.slots.len()
    }

    fn bytes_if_added(&self, row_len: usize) -> usize {
        PAGE_DIR_BASE + (self.slots.len() + 1) * SLOT_BYTES + self.data.len() + row_len
    }

    /// Tries to add an encoded row; `false` means the page is full and
    /// must be flushed first. A row too large for even an empty page is
    /// a hard error (the generators never produce one).
    pub fn push(&mut self, row_bytes: &[u8]) -> Result<bool, StorageError> {
        if PAGE_DIR_BASE + SLOT_BYTES + row_bytes.len() > PAGE_PAYLOAD {
            return Err(StorageError::Corrupt(format!(
                "row of {} bytes exceeds page payload capacity {}",
                row_bytes.len(),
                PAGE_PAYLOAD
            )));
        }
        if self.bytes_if_added(row_bytes.len()) > PAGE_PAYLOAD {
            return Ok(false);
        }
        self.slots.push(0); // patched in take()
        let pos = self.data.len();
        self.data.extend_from_slice(row_bytes);
        let slot = self.slots.len() - 1;
        self.slots[slot] = pos as u16; // data-relative; rebased in take()
        Ok(true)
    }

    /// Finalizes the payload and resets the builder for the next page.
    pub fn take(&mut self) -> Vec<u8> {
        let n = self.slots.len();
        let dir = PAGE_DIR_BASE + n * SLOT_BYTES;
        let mut payload = Vec::with_capacity(dir + self.data.len());
        payload.extend_from_slice(&(n as u16).to_le_bytes());
        for &s in &self.slots {
            payload.extend_from_slice(&((dir + s as usize) as u16).to_le_bytes());
        }
        payload.extend_from_slice(&self.data);
        self.slots.clear();
        self.data.clear();
        payload
    }
}

/// Streams rows of one table into heap pages via a [`Pager`], recording
/// the page directory (page numbers + per-page row counts) as it goes.
pub struct HeapWriter {
    schema: TableSchema,
    builder: PageBuilder,
    row_buf: Vec<u8>,
    pages: Vec<u32>,
    page_rows: Vec<u32>,
    row_count: u64,
}

impl HeapWriter {
    pub fn new(schema: TableSchema) -> HeapWriter {
        HeapWriter {
            schema,
            builder: PageBuilder::new(),
            row_buf: Vec::new(),
            pages: Vec::new(),
            page_rows: Vec::new(),
            row_count: 0,
        }
    }

    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    pub fn push_row(&mut self, pager: &mut Pager, row: &[Value]) -> Result<(), StorageError> {
        self.row_buf.clear();
        encode_row(&self.schema, row, &mut self.row_buf);
        if !self.builder.push(&self.row_buf)? {
            self.flush_page(pager)?;
            if !self.builder.push(&self.row_buf)? {
                return Err(StorageError::Corrupt(
                    "row does not fit in an empty page".into(),
                ));
            }
        }
        self.row_count += 1;
        Ok(())
    }

    fn flush_page(&mut self, pager: &mut Pager) -> Result<(), StorageError> {
        let rows = self.builder.rows();
        if rows == 0 {
            return Ok(());
        }
        let payload = self.builder.take();
        let no = pager.append_page(PageType::Heap, &payload)?;
        self.pages.push(no);
        self.page_rows.push(rows as u32);
        Ok(())
    }

    /// Flushes the trailing partial page and returns the page directory.
    pub fn finish(mut self, pager: &mut Pager) -> Result<HeapSegment, StorageError> {
        self.flush_page(pager)?;
        Ok(HeapSegment {
            schema: self.schema,
            pages: self.pages,
            page_rows: self.page_rows,
            row_count: self.row_count,
        })
    }
}

/// The finished on-disk extent of one table.
pub struct HeapSegment {
    pub schema: TableSchema,
    pub pages: Vec<u32>,
    pub page_rows: Vec<u32>,
    pub row_count: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn schema() -> TableSchema {
        TableSchema::new("t")
            .with_column(ColumnDef::new("i", DataType::Int))
            .with_column(ColumnDef::new("f", DataType::Float))
            .with_column(ColumnDef::new("s", DataType::Text))
    }

    #[test]
    fn row_roundtrip_is_bit_exact() {
        let s = schema();
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        let row = vec![
            Value::Int(-42),
            Value::Float(nan),
            Value::Text("héllo".into()),
        ];
        let mut buf = Vec::new();
        encode_row(&s, &row, &mut buf);
        let back = decode_row(&s, &buf);
        assert_eq!(back[0], Value::Int(-42));
        match back[1] {
            Value::Float(f) => assert_eq!(f.to_bits(), nan.to_bits(), "NaN payload preserved"),
            ref v => panic!("expected float, got {v:?}"),
        }
        assert_eq!(back[2], Value::Text("héllo".into()));
        assert_eq!(decode_cell(&s, &buf, 2), Value::Text("héllo".into()));
    }

    #[test]
    fn int_coerces_into_float_cell() {
        let s = TableSchema::new("t").with_column(ColumnDef::new("f", DataType::Float));
        let mut buf = Vec::new();
        encode_row(&s, &[Value::Int(3)], &mut buf);
        assert_eq!(decode_cell(&s, &buf, 0), Value::Float(3.0));
    }

    #[test]
    fn page_builder_fills_and_rolls_over() {
        let s = TableSchema::new("t").with_column(ColumnDef::new("i", DataType::Int));
        let mut b = PageBuilder::new();
        let mut buf = Vec::new();
        encode_row(&s, &[Value::Int(7)], &mut buf);
        let mut fitted = 0usize;
        while b.push(&buf).unwrap() {
            fitted += 1;
        }
        // 8-byte rows + 2-byte slots into PAGE_PAYLOAD - 2.
        assert_eq!(fitted, (PAGE_PAYLOAD - PAGE_DIR_BASE) / 10);
        let payload = b.take();
        let mut page = vec![0u8; crate::pager::PAGE_SIZE];
        page[8..12].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        page[12..12 + payload.len()].copy_from_slice(&payload);
        let hp = HeapPage::parse(&page).unwrap();
        assert_eq!(hp.rows(), fitted);
        for slot in [0, 1, fitted - 1] {
            assert_eq!(decode_cell(&s, hp.row_bytes(slot), 0), Value::Int(7));
        }
        // Builder reset: next page starts empty.
        assert_eq!(b.rows(), 0);
    }

    #[test]
    fn heap_writer_streams_multi_page_tables() {
        let path = std::env::temp_dir().join(format!("sqlgen-heap-{}.db", std::process::id()));
        let s = schema();
        let mut pager = Pager::create(&path).unwrap();
        let mut w = HeapWriter::new(s.clone());
        let n = 5000usize;
        for i in 0..n {
            w.push_row(
                &mut pager,
                &[
                    Value::Int(i as i64),
                    Value::Float(i as f64 * 0.5),
                    Value::Text(format!("row-{i}")),
                ],
            )
            .unwrap();
        }
        let seg = w.finish(&mut pager).unwrap();
        assert_eq!(seg.row_count, n as u64);
        assert!(seg.pages.len() > 1, "expected a multi-page table");
        assert_eq!(seg.page_rows.iter().map(|&r| r as usize).sum::<usize>(), n);
        // Decode a row from the middle through the raw pager.
        let mid_page = seg.pages[seg.pages.len() / 2];
        let page = pager.read_page_checked(mid_page).unwrap();
        let hp = HeapPage::parse(&page).unwrap();
        let first_row_on_page: usize = seg
            .page_rows
            .iter()
            .take(seg.pages.len() / 2)
            .map(|&r| r as usize)
            .sum();
        let v = decode_cell(&s, hp.row_bytes(0), 0);
        assert_eq!(v, Value::Int(first_row_on_page as i64));
        std::fs::remove_file(&path).ok();
    }
}
