//! Scaled-down TPC-H data generator.
//!
//! Reproduces the full 8-table TPC-H schema with its PK/FK topology and
//! TPC-H-like value skew (uniform keys, categorical flag columns, skewed
//! quantities/prices). At `scale = 1.0` the fact table `lineitem` holds
//! 6 000 rows — small enough that the test suite can cross-check the
//! cardinality estimator against real execution. Rows stream through a
//! [`RowSink`], so the same generator fills the in-memory backend or a
//! multi-GB paged file; the RNG is threaded through tables in a fixed
//! order, making the output identical for every sink.

use super::{scaled, DatabaseSink, RowSink};
use crate::database::Database;
use crate::dist::{choose, tagged_word, uniform_float, uniform_int, Zipf};
use crate::schema::{ColumnDef, TableSchema};
use crate::value::{DataType, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const STATUSES: [&str; 3] = ["F", "O", "P"];
const SHIPMODES: [&str; 7] = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"];
const RETURNFLAGS: [&str; 3] = ["A", "N", "R"];
const BRANDS: [&str; 5] = ["Brand#11", "Brand#22", "Brand#33", "Brand#44", "Brand#55"];
const CONTAINERS: [&str; 4] = ["JUMBO BOX", "LG CASE", "MED BAG", "SM PKG"];

/// Builds the TPC-H database in memory at the given scale factor.
pub fn tpch_database(scale: f64, seed: u64) -> Database {
    let mut sink = DatabaseSink::new();
    let Ok(()) = tpch_into(scale, seed, &mut sink);
    sink.into_database()
}

/// Streams the TPC-H tables into `sink`.
pub fn tpch_into<S: RowSink>(scale: f64, seed: u64, sink: &mut S) -> Result<(), S::Error> {
    let mut rng = StdRng::seed_from_u64(seed);

    let n_region = 5;
    let n_nation = 25;
    let n_supplier = scaled(100, scale);
    let n_part = scaled(400, scale);
    let n_partsupp = scaled(1600, scale);
    let n_customer = scaled(300, scale);
    let n_orders = scaled(3000, scale);
    let n_lineitem = scaled(6000, scale);

    // region(r_regionkey PK, r_name)
    sink.begin_table(
        TableSchema::new("region")
            .with_column(ColumnDef::new("r_regionkey", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::categorical("r_name", DataType::Text)),
    )?;
    for i in 0..n_region {
        sink.push_row(vec![
            Value::Int(i as i64),
            Value::Text(["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"][i].into()),
        ])?;
    }
    sink.finish_table()?;

    // nation(n_nationkey PK, n_name, n_regionkey FK)
    sink.begin_table(
        TableSchema::new("nation")
            .with_column(ColumnDef::new("n_nationkey", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::categorical("n_name", DataType::Text))
            .with_column(ColumnDef::new("n_regionkey", DataType::Int))
            .with_foreign_key("region", "r_regionkey"),
    )?;
    for i in 0..n_nation {
        sink.push_row(vec![
            Value::Int(i as i64),
            Value::Text(tagged_word("nation", i)),
            Value::Int((i % n_region) as i64),
        ])?;
    }
    sink.finish_table()?;

    // supplier(s_suppkey PK, s_name, s_nationkey FK, s_acctbal)
    sink.begin_table(
        TableSchema::new("supplier")
            .with_column(ColumnDef::new("s_suppkey", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::new("s_name", DataType::Text))
            .with_column(ColumnDef::new("s_nationkey", DataType::Int))
            .with_foreign_key("nation", "n_nationkey")
            .with_column(ColumnDef::new("s_acctbal", DataType::Float)),
    )?;
    for i in 0..n_supplier {
        sink.push_row(vec![
            Value::Int(i as i64),
            Value::Text(tagged_word("supplier", i)),
            Value::Int(uniform_int(&mut rng, 0, n_nation as i64 - 1)),
            Value::Float(uniform_float(&mut rng, -999.99, 9999.99)),
        ])?;
    }
    sink.finish_table()?;

    // part(p_partkey PK, p_name, p_brand, p_container, p_size, p_retailprice)
    sink.begin_table(
        TableSchema::new("part")
            .with_column(ColumnDef::new("p_partkey", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::new("p_name", DataType::Text))
            .with_column(ColumnDef::categorical("p_brand", DataType::Text))
            .with_column(ColumnDef::categorical("p_container", DataType::Text))
            .with_column(ColumnDef::new("p_size", DataType::Int))
            .with_column(ColumnDef::new("p_retailprice", DataType::Float)),
    )?;
    for i in 0..n_part {
        sink.push_row(vec![
            Value::Int(i as i64),
            Value::Text(tagged_word("part", i)),
            Value::Text(choose(&mut rng, &BRANDS).to_string()),
            Value::Text(choose(&mut rng, &CONTAINERS).to_string()),
            Value::Int(uniform_int(&mut rng, 1, 50)),
            Value::Float(uniform_float(&mut rng, 900.0, 2100.0)),
        ])?;
    }
    sink.finish_table()?;

    // partsupp(ps_partkey FK, ps_suppkey FK, ps_availqty, ps_supplycost)
    sink.begin_table(
        TableSchema::new("partsupp")
            .with_column(ColumnDef::new("ps_partkey", DataType::Int))
            .with_foreign_key("part", "p_partkey")
            .with_column(ColumnDef::new("ps_suppkey", DataType::Int))
            .with_foreign_key("supplier", "s_suppkey")
            .with_column(ColumnDef::new("ps_availqty", DataType::Int))
            .with_column(ColumnDef::new("ps_supplycost", DataType::Float)),
    )?;
    for _ in 0..n_partsupp {
        sink.push_row(vec![
            Value::Int(uniform_int(&mut rng, 0, n_part as i64 - 1)),
            Value::Int(uniform_int(&mut rng, 0, n_supplier as i64 - 1)),
            Value::Int(uniform_int(&mut rng, 1, 9999)),
            Value::Float(uniform_float(&mut rng, 1.0, 1000.0)),
        ])?;
    }
    sink.finish_table()?;

    // customer(c_custkey PK, c_name, c_nationkey FK, c_mktsegment, c_acctbal)
    sink.begin_table(
        TableSchema::new("customer")
            .with_column(ColumnDef::new("c_custkey", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::new("c_name", DataType::Text))
            .with_column(ColumnDef::new("c_nationkey", DataType::Int))
            .with_foreign_key("nation", "n_nationkey")
            .with_column(ColumnDef::categorical("c_mktsegment", DataType::Text))
            .with_column(ColumnDef::new("c_acctbal", DataType::Float)),
    )?;
    for i in 0..n_customer {
        sink.push_row(vec![
            Value::Int(i as i64),
            Value::Text(tagged_word("customer", i)),
            Value::Int(uniform_int(&mut rng, 0, n_nation as i64 - 1)),
            Value::Text(choose(&mut rng, &SEGMENTS).to_string()),
            Value::Float(uniform_float(&mut rng, -999.99, 9999.99)),
        ])?;
    }
    sink.finish_table()?;

    // orders(o_orderkey PK, o_custkey FK, o_orderstatus, o_totalprice,
    //        o_orderdate, o_orderpriority)
    // Customers are Zipf-skewed: a few customers place most orders, which
    // gives join selectivities some texture.
    let cust_zipf = Zipf::new(n_customer, 0.8);
    sink.begin_table(
        TableSchema::new("orders")
            .with_column(ColumnDef::new("o_orderkey", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::new("o_custkey", DataType::Int))
            .with_foreign_key("customer", "c_custkey")
            .with_column(ColumnDef::categorical("o_orderstatus", DataType::Text))
            .with_column(ColumnDef::new("o_totalprice", DataType::Float))
            .with_column(ColumnDef::new("o_orderdate", DataType::Int))
            .with_column(ColumnDef::categorical("o_orderpriority", DataType::Text)),
    )?;
    for i in 0..n_orders {
        sink.push_row(vec![
            Value::Int(i as i64),
            Value::Int(cust_zipf.sample(&mut rng) as i64),
            Value::Text(choose(&mut rng, &STATUSES).to_string()),
            Value::Float(uniform_float(&mut rng, 850.0, 500_000.0)),
            // Dates as days since 1992-01-01, spanning ~7 years like TPC-H.
            Value::Int(uniform_int(&mut rng, 0, 2555)),
            Value::Text(choose(&mut rng, &PRIORITIES).to_string()),
        ])?;
    }
    sink.finish_table()?;

    // lineitem(l_orderkey FK, l_partkey FK, l_suppkey FK, l_linenumber,
    //          l_quantity, l_extendedprice, l_discount, l_returnflag,
    //          l_shipmode, l_shipdate)
    let order_zipf = Zipf::new(n_orders, 0.3);
    let part_zipf = Zipf::new(n_part, 0.7);
    sink.begin_table(
        TableSchema::new("lineitem")
            .with_column(ColumnDef::new("l_orderkey", DataType::Int))
            .with_foreign_key("orders", "o_orderkey")
            .with_column(ColumnDef::new("l_partkey", DataType::Int))
            .with_foreign_key("part", "p_partkey")
            .with_column(ColumnDef::new("l_suppkey", DataType::Int))
            .with_foreign_key("supplier", "s_suppkey")
            .with_column(ColumnDef::new("l_linenumber", DataType::Int))
            .with_column(ColumnDef::new("l_quantity", DataType::Int))
            .with_column(ColumnDef::new("l_extendedprice", DataType::Float))
            .with_column(ColumnDef::new("l_discount", DataType::Float))
            .with_column(ColumnDef::categorical("l_returnflag", DataType::Text))
            .with_column(ColumnDef::categorical("l_shipmode", DataType::Text))
            .with_column(ColumnDef::new("l_shipdate", DataType::Int)),
    )?;
    for _ in 0..n_lineitem {
        sink.push_row(vec![
            Value::Int(order_zipf.sample(&mut rng) as i64),
            Value::Int(part_zipf.sample(&mut rng) as i64),
            Value::Int(uniform_int(&mut rng, 0, n_supplier as i64 - 1)),
            Value::Int(uniform_int(&mut rng, 1, 7)),
            Value::Int(uniform_int(&mut rng, 1, 50)),
            Value::Float(uniform_float(&mut rng, 900.0, 105_000.0)),
            Value::Float((rng.random_range(0..=10) as f64) / 100.0),
            Value::Text(choose(&mut rng, &RETURNFLAGS).to_string()),
            Value::Text(choose(&mut rng, &SHIPMODES).to_string()),
            Value::Int(uniform_int(&mut rng, 0, 2555)),
        ])?;
    }
    sink.finish_table()?;

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_all_eight_tables() {
        let db = tpch_database(0.1, 1);
        for t in [
            "region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem",
        ] {
            assert!(db.table(t).is_some(), "missing {t}");
        }
    }

    #[test]
    fn scale_changes_fact_table_sizes_but_not_dimensions() {
        let small = tpch_database(0.1, 1);
        let big = tpch_database(1.0, 1);
        assert_eq!(small.table("region").unwrap().row_count(), 5);
        assert_eq!(big.table("region").unwrap().row_count(), 5);
        assert!(
            big.table("lineitem").unwrap().row_count()
                > 5 * small.table("lineitem").unwrap().row_count()
        );
    }

    #[test]
    fn lineitem_joins_to_orders_part_supplier() {
        let db = tpch_database(0.1, 1);
        let edges = db.join_edges("lineitem");
        let targets: Vec<&str> = edges.iter().map(|e| e.right_table.as_str()).collect();
        assert!(targets.contains(&"orders"));
        assert!(targets.contains(&"part"));
        assert!(targets.contains(&"supplier"));
    }

    #[test]
    fn orders_customers_are_skewed() {
        let db = tpch_database(1.0, 3);
        let orders = db.table("orders").unwrap();
        let col = match orders.column("o_custkey").unwrap() {
            crate::table::Column::Int(v) => v,
            _ => unreachable!(),
        };
        let mut counts = std::collections::HashMap::new();
        for &c in col {
            *counts.entry(c).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let avg = col.len() as f64 / counts.len() as f64;
        assert!(max as f64 > 2.0 * avg, "expected skew, max={max} avg={avg}");
    }
}
