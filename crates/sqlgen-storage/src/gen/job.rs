//! IMDB-shaped data generator for the Join Order Benchmark (JOB).
//!
//! The paper uses the full 21-table IMDB dump (14 GB). We reproduce the ten
//! tables that carry JOB's join structure — the `title` hub with its
//! satellite fact tables (`cast_info`, `movie_info`, `movie_companies`,
//! `movie_keyword`) and their dimension tables — with IMDB-like skew
//! (a long tail of obscure movies, a short head of prolific actors).

use super::{scaled, DatabaseSink, RowSink};
use crate::database::Database;
use crate::dist::{choose, tagged_word, uniform_int, Zipf};
use crate::schema::{ColumnDef, TableSchema};
use crate::value::{DataType, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

const KINDS: [&str; 4] = ["movie", "tv series", "video game", "episode"];
const INFO_KINDS: [&str; 6] = [
    "budget",
    "genres",
    "languages",
    "rating",
    "runtimes",
    "votes",
];
const COMPANY_COUNTRIES: [&str; 6] = ["[de]", "[fr]", "[gb]", "[in]", "[jp]", "[us]"];
const ROLES: [&str; 5] = ["actor", "actress", "director", "producer", "writer"];
const GENDERS: [&str; 2] = ["f", "m"];

/// Builds the JOB/IMDB-shaped database in memory at the given scale factor.
pub fn job_database(scale: f64, seed: u64) -> Database {
    let mut sink = DatabaseSink::new();
    let Ok(()) = job_into(scale, seed, &mut sink);
    sink.into_database()
}

/// Streams the JOB/IMDB-shaped tables into `sink`.
pub fn job_into<S: RowSink>(scale: f64, seed: u64, sink: &mut S) -> Result<(), S::Error> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4a4f42); // "JOB"

    let n_kind = KINDS.len();
    let n_info_type = INFO_KINDS.len();
    let n_title = scaled(1500, scale);
    let n_name = scaled(800, scale);
    let n_company = scaled(120, scale);
    let n_keyword = scaled(300, scale);
    let n_cast = scaled(5000, scale);
    let n_minfo = scaled(4000, scale);
    let n_mcomp = scaled(2500, scale);
    let n_mkw = scaled(3000, scale);

    // kind_type(id PK, kind)
    sink.begin_table(
        TableSchema::new("kind_type")
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::categorical("kind", DataType::Text)),
    )?;
    for (i, k) in KINDS.iter().enumerate() {
        sink.push_row(vec![Value::Int(i as i64), Value::Text(k.to_string())])?;
    }
    sink.finish_table()?;

    // info_type(id PK, info)
    sink.begin_table(
        TableSchema::new("info_type")
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::categorical("info", DataType::Text)),
    )?;
    for (i, k) in INFO_KINDS.iter().enumerate() {
        sink.push_row(vec![Value::Int(i as i64), Value::Text(k.to_string())])?;
    }
    sink.finish_table()?;

    // title(id PK, title, kind_id FK, production_year)
    sink.begin_table(
        TableSchema::new("title")
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::new("title", DataType::Text))
            .with_column(ColumnDef::new("kind_id", DataType::Int))
            .with_foreign_key("kind_type", "id")
            .with_column(ColumnDef::new("production_year", DataType::Int)),
    )?;
    for i in 0..n_title {
        sink.push_row(vec![
            Value::Int(i as i64),
            Value::Text(tagged_word("title", i)),
            Value::Int(uniform_int(&mut rng, 0, n_kind as i64 - 1)),
            // Skew toward recent years like IMDB.
            Value::Int(2025 - (Zipf::new(120, 1.0).sample(&mut rng) as i64)),
        ])?;
    }
    sink.finish_table()?;

    // name(id PK, name, gender)
    sink.begin_table(
        TableSchema::new("name")
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::new("name", DataType::Text))
            .with_column(ColumnDef::categorical("gender", DataType::Text)),
    )?;
    for i in 0..n_name {
        sink.push_row(vec![
            Value::Int(i as i64),
            Value::Text(tagged_word("person", i)),
            Value::Text(choose(&mut rng, &GENDERS).to_string()),
        ])?;
    }
    sink.finish_table()?;

    // company_name(id PK, name, country_code)
    sink.begin_table(
        TableSchema::new("company_name")
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::new("name", DataType::Text))
            .with_column(ColumnDef::categorical("country_code", DataType::Text)),
    )?;
    for i in 0..n_company {
        sink.push_row(vec![
            Value::Int(i as i64),
            Value::Text(tagged_word("company", i)),
            Value::Text(choose(&mut rng, &COMPANY_COUNTRIES).to_string()),
        ])?;
    }
    sink.finish_table()?;

    // keyword(id PK, keyword)
    sink.begin_table(
        TableSchema::new("keyword")
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::new("keyword", DataType::Text)),
    )?;
    for i in 0..n_keyword {
        sink.push_row(vec![
            Value::Int(i as i64),
            Value::Text(tagged_word("kw", i)),
        ])?;
    }
    sink.finish_table()?;

    // cast_info(id PK, movie_id FK, person_id FK, role, nr_order)
    let title_zipf = Zipf::new(n_title, 1.0);
    let person_zipf = Zipf::new(n_name, 0.9);
    sink.begin_table(
        TableSchema::new("cast_info")
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::new("movie_id", DataType::Int))
            .with_foreign_key("title", "id")
            .with_column(ColumnDef::new("person_id", DataType::Int))
            .with_foreign_key("name", "id")
            .with_column(ColumnDef::categorical("role", DataType::Text))
            .with_column(ColumnDef::new("nr_order", DataType::Int)),
    )?;
    for i in 0..n_cast {
        sink.push_row(vec![
            Value::Int(i as i64),
            Value::Int(title_zipf.sample(&mut rng) as i64),
            Value::Int(person_zipf.sample(&mut rng) as i64),
            Value::Text(choose(&mut rng, &ROLES).to_string()),
            Value::Int(uniform_int(&mut rng, 1, 30)),
        ])?;
    }
    sink.finish_table()?;

    // movie_info(id PK, movie_id FK, info_type_id FK, info_value)
    sink.begin_table(
        TableSchema::new("movie_info")
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::new("movie_id", DataType::Int))
            .with_foreign_key("title", "id")
            .with_column(ColumnDef::new("info_type_id", DataType::Int))
            .with_foreign_key("info_type", "id")
            .with_column(ColumnDef::new("info_value", DataType::Float)),
    )?;
    for i in 0..n_minfo {
        sink.push_row(vec![
            Value::Int(i as i64),
            Value::Int(title_zipf.sample(&mut rng) as i64),
            Value::Int(uniform_int(&mut rng, 0, n_info_type as i64 - 1)),
            Value::Float(uniform_int(&mut rng, 1, 10_000) as f64 / 10.0),
        ])?;
    }
    sink.finish_table()?;

    // movie_companies(id PK, movie_id FK, company_id FK, note_len)
    let company_zipf = Zipf::new(n_company, 1.1);
    sink.begin_table(
        TableSchema::new("movie_companies")
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::new("movie_id", DataType::Int))
            .with_foreign_key("title", "id")
            .with_column(ColumnDef::new("company_id", DataType::Int))
            .with_foreign_key("company_name", "id")
            .with_column(ColumnDef::new("note_len", DataType::Int)),
    )?;
    for i in 0..n_mcomp {
        sink.push_row(vec![
            Value::Int(i as i64),
            Value::Int(title_zipf.sample(&mut rng) as i64),
            Value::Int(company_zipf.sample(&mut rng) as i64),
            Value::Int(uniform_int(&mut rng, 0, 120)),
        ])?;
    }
    sink.finish_table()?;

    // movie_keyword(id PK, movie_id FK, keyword_id FK)
    let kw_zipf = Zipf::new(n_keyword, 0.8);
    sink.begin_table(
        TableSchema::new("movie_keyword")
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::new("movie_id", DataType::Int))
            .with_foreign_key("title", "id")
            .with_column(ColumnDef::new("keyword_id", DataType::Int))
            .with_foreign_key("keyword", "id"),
    )?;
    for i in 0..n_mkw {
        sink.push_row(vec![
            Value::Int(i as i64),
            Value::Int(title_zipf.sample(&mut rng) as i64),
            Value::Int(kw_zipf.sample(&mut rng) as i64),
        ])?;
    }
    sink.finish_table()?;

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_join_hub_structure() {
        let db = job_database(0.2, 1);
        assert_eq!(db.len(), 10);
        // `title` is the hub: it should have edges to all four fact tables.
        let targets: Vec<String> = db
            .join_edges("title")
            .into_iter()
            .map(|e| e.right_table)
            .collect();
        for t in [
            "cast_info",
            "movie_info",
            "movie_companies",
            "movie_keyword",
        ] {
            assert!(targets.contains(&t.to_string()), "title not joined to {t}");
        }
    }

    #[test]
    fn production_years_skew_recent() {
        let db = job_database(1.0, 2);
        let title = db.table("title").unwrap();
        let years = match title.column("production_year").unwrap() {
            crate::table::Column::Int(v) => v,
            _ => unreachable!(),
        };
        let recent = years.iter().filter(|&&y| y >= 2015).count();
        assert!(recent * 2 > years.len(), "expected recent-year skew");
    }
}
