//! Deterministic benchmark data generators.
//!
//! Each generator reproduces the *schema topology* (tables, key
//! relationships) and *value skew* of one of the paper's three evaluation
//! datasets at a configurable, laptop-friendly scale:
//!
//! * [`tpch`] — the 8-table TPC-H schema (paper used 33 GB; we default to
//!   a few thousand rows per fact table),
//! * [`job`] — an IMDB-shaped schema as used by the Join Order Benchmark
//!   (paper used the 21-table, 14 GB IMDB dump; we build the 10 most
//!   join-relevant tables),
//! * [`xuetang`] — an online-education OLTP schema standing in for the
//!   proprietary XueTang benchmark (14 tables in the paper; we build 12
//!   covering the same entity/event/join structure).
//!
//! The substitution is documented in `DESIGN.md`: the RL feedback is the
//! estimator's output, which depends on schema + statistics, not raw bytes.

pub mod job;
pub mod tpch;
pub mod xuetang;

pub use job::job_database;
pub use tpch::tpch_database;
pub use xuetang::xuetang_database;

use crate::database::Database;
use crate::schema::TableSchema;
use crate::table::Table;
use crate::value::Value;
use std::convert::Infallible;

/// Where generated rows go. The generators stream row-by-row through
/// this trait so the destination decides the memory profile: the
/// in-memory [`DatabaseSink`] accumulates columnar tables exactly as
/// the generators historically did (bit-identical output), while
/// [`crate::paged::PagedDbWriter`] spills finished pages to disk and
/// holds one page in flight — multi-GB scale factors build in bounded
/// memory.
pub trait RowSink {
    type Error: std::fmt::Debug;

    fn begin_table(&mut self, schema: TableSchema) -> Result<(), Self::Error>;
    fn push_row(&mut self, row: Vec<Value>) -> Result<(), Self::Error>;
    fn finish_table(&mut self) -> Result<(), Self::Error>;
}

/// Accumulates generated rows into an in-memory [`Database`].
#[derive(Default)]
pub struct DatabaseSink {
    db: Database,
    current: Option<Table>,
}

impl DatabaseSink {
    pub fn new() -> DatabaseSink {
        DatabaseSink::default()
    }

    pub fn into_database(mut self) -> Database {
        if let Some(t) = self.current.take() {
            self.db.add_table(t);
        }
        self.db
    }
}

impl RowSink for DatabaseSink {
    type Error = Infallible;

    fn begin_table(&mut self, schema: TableSchema) -> Result<(), Infallible> {
        if let Some(t) = self.current.take() {
            self.db.add_table(t);
        }
        self.current = Some(Table::new(schema));
        Ok(())
    }

    fn push_row(&mut self, row: Vec<Value>) -> Result<(), Infallible> {
        self.current
            .as_mut()
            .expect("push_row before begin_table")
            .push_row(row);
        Ok(())
    }

    fn finish_table(&mut self) -> Result<(), Infallible> {
        if let Some(t) = self.current.take() {
            self.db.add_table(t);
        }
        Ok(())
    }
}

/// The three paper benchmarks, for harness dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Benchmark {
    TpcH,
    Job,
    XueTang,
}

impl Benchmark {
    pub const ALL: [Benchmark; 3] = [Benchmark::TpcH, Benchmark::Job, Benchmark::XueTang];

    pub fn name(self) -> &'static str {
        match self {
            Benchmark::TpcH => "TPC-H",
            Benchmark::Job => "JOB",
            Benchmark::XueTang => "XueTang",
        }
    }

    /// Builds the benchmark database at the given scale with the given seed.
    pub fn build(self, scale: f64, seed: u64) -> Database {
        match self {
            Benchmark::TpcH => tpch_database(scale, seed),
            Benchmark::Job => job_database(scale, seed),
            Benchmark::XueTang => xuetang_database(scale, seed),
        }
    }

    /// Streams the benchmark into any [`RowSink`]; with a paged sink this
    /// builds arbitrarily large scale factors in bounded memory.
    pub fn build_into<S: RowSink>(
        self,
        scale: f64,
        seed: u64,
        sink: &mut S,
    ) -> Result<(), S::Error> {
        match self {
            Benchmark::TpcH => tpch::tpch_into(scale, seed, sink),
            Benchmark::Job => job::job_into(scale, seed, sink),
            Benchmark::XueTang => xuetang::xuetang_into(scale, seed, sink),
        }
    }
}

impl std::str::FromStr for Benchmark {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "tpch" | "tpc-h" => Ok(Benchmark::TpcH),
            "job" | "imdb" => Ok(Benchmark::Job),
            "xuetang" => Ok(Benchmark::XueTang),
            other => Err(format!("unknown benchmark: {other}")),
        }
    }
}

/// Scales a base row count, with a floor of 1.
pub(crate) fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale).round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmarks_build_and_are_deterministic() {
        for b in Benchmark::ALL {
            let d1 = b.build(0.1, 42);
            let d2 = b.build(0.1, 42);
            assert!(!d1.is_empty(), "{} is empty", b.name());
            assert_eq!(d1.total_rows(), d2.total_rows());
            for name in d1.table_names() {
                let t1 = d1.table(name).unwrap();
                let t2 = d2.table(name).unwrap();
                assert_eq!(t1.row_count(), t2.row_count());
                if t1.row_count() > 0 {
                    assert_eq!(t1.row(0), t2.row(0), "{}.{name} row 0 differs", b.name());
                }
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = tpch_database(0.2, 1);
        let b = tpch_database(0.2, 2);
        let la = a.table("lineitem").unwrap();
        let lb = b.table("lineitem").unwrap();
        assert_eq!(la.row_count(), lb.row_count());
        let differs = (0..la.row_count().min(50)).any(|i| la.row(i) != lb.row(i));
        assert!(differs);
    }

    #[test]
    fn benchmark_from_str() {
        assert_eq!("tpch".parse::<Benchmark>().unwrap(), Benchmark::TpcH);
        assert_eq!("IMDB".parse::<Benchmark>().unwrap(), Benchmark::Job);
        assert!("nope".parse::<Benchmark>().is_err());
    }

    #[test]
    fn foreign_keys_reference_existing_tables_and_valid_rows() {
        for b in Benchmark::ALL {
            let db = b.build(0.1, 7);
            for (table, fk) in db.all_foreign_keys() {
                let referenced = db
                    .table(&fk.ref_table)
                    .unwrap_or_else(|| panic!("{table} references missing {}", fk.ref_table));
                let ref_col = referenced
                    .column(&fk.ref_column)
                    .expect("FK target column exists");
                let src = db.table(table).unwrap().column(&fk.column).unwrap();
                // Referential integrity: every FK value appears in the target.
                if let (crate::table::Column::Int(src), crate::table::Column::Int(dst)) =
                    (src, ref_col)
                {
                    let mut dst_sorted = dst.clone();
                    dst_sorted.sort_unstable();
                    for v in src.iter().take(200) {
                        assert!(
                            dst_sorted.binary_search(v).is_ok(),
                            "{}: dangling FK value {v} into {}",
                            b.name(),
                            fk.ref_table
                        );
                    }
                }
            }
        }
    }
}
