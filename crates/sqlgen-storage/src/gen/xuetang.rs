//! XueTang-shaped OLTP data generator.
//!
//! The paper's third benchmark is XueTang, a proprietary 14-table online-
//! education OLTP workload (24 GB). The raw data is unavailable, so this
//! generator builds a 12-table schema with the same entity/event structure:
//! user/course/teacher dimensions, enrollment and engagement fact tables
//! (video watches, exercise submissions, forum posts), and certification —
//! with heavy user- and course-level skew typical of MOOC platforms.

use super::{scaled, DatabaseSink, RowSink};
use crate::database::Database;
use crate::dist::{choose, clamped_normal, tagged_word, uniform_int, Zipf};
use crate::schema::{ColumnDef, TableSchema};
use crate::value::{DataType, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DEGREES: [&str; 4] = ["bachelor", "doctorate", "master", "none"];
const CATEGORIES: [&str; 6] = ["art", "biology", "business", "cs", "math", "physics"];
const LEVELS: [&str; 3] = ["advanced", "beginner", "intermediate"];
const DEVICES: [&str; 3] = ["mobile", "tablet", "web"];
const VERDICTS: [&str; 3] = ["correct", "partial", "wrong"];

/// Builds the XueTang-shaped database in memory at the given scale factor.
pub fn xuetang_database(scale: f64, seed: u64) -> Database {
    let mut sink = DatabaseSink::new();
    let Ok(()) = xuetang_into(scale, seed, &mut sink);
    sink.into_database()
}

/// Streams the XueTang-shaped tables into `sink`.
pub fn xuetang_into<S: RowSink>(scale: f64, seed: u64, sink: &mut S) -> Result<(), S::Error> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x58554554); // "XUET"

    let n_user = scaled(600, scale);
    let n_teacher = scaled(40, scale);
    let n_course = scaled(80, scale);
    let n_chapter = scaled(400, scale);
    let n_video = scaled(800, scale);
    let n_exercise = scaled(600, scale);
    let n_enroll = scaled(3000, scale);
    let n_watch = scaled(6000, scale);
    let n_submit = scaled(4000, scale);
    let n_post = scaled(1200, scale);
    let n_cert = scaled(500, scale);
    let n_course_teacher = scaled(120, scale);

    // users(id PK, age, degree, active_days)
    sink.begin_table(
        TableSchema::new("users")
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::new("age", DataType::Int))
            .with_column(ColumnDef::categorical("degree", DataType::Text))
            .with_column(ColumnDef::new("active_days", DataType::Int)),
    )?;
    for i in 0..n_user {
        sink.push_row(vec![
            Value::Int(i as i64),
            Value::Int(clamped_normal(&mut rng, 24.0, 6.0, 14.0, 70.0) as i64),
            Value::Text(choose(&mut rng, &DEGREES).to_string()),
            Value::Int(uniform_int(&mut rng, 0, 1500)),
        ])?;
    }
    sink.finish_table()?;

    // teacher(id PK, name, rating)
    sink.begin_table(
        TableSchema::new("teacher")
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::new("name", DataType::Text))
            .with_column(ColumnDef::new("rating", DataType::Float)),
    )?;
    for i in 0..n_teacher {
        sink.push_row(vec![
            Value::Int(i as i64),
            Value::Text(tagged_word("teacher", i)),
            Value::Float((uniform_int(&mut rng, 20, 50) as f64) / 10.0),
        ])?;
    }
    sink.finish_table()?;

    // course(id PK, name, category, level, duration_weeks)
    sink.begin_table(
        TableSchema::new("course")
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::new("name", DataType::Text))
            .with_column(ColumnDef::categorical("category", DataType::Text))
            .with_column(ColumnDef::categorical("level", DataType::Text))
            .with_column(ColumnDef::new("duration_weeks", DataType::Int)),
    )?;
    for i in 0..n_course {
        sink.push_row(vec![
            Value::Int(i as i64),
            Value::Text(tagged_word("course", i)),
            Value::Text(choose(&mut rng, &CATEGORIES).to_string()),
            Value::Text(choose(&mut rng, &LEVELS).to_string()),
            Value::Int(uniform_int(&mut rng, 2, 20)),
        ])?;
    }
    sink.finish_table()?;

    // course_teacher(id PK, course_id FK, teacher_id FK)
    sink.begin_table(
        TableSchema::new("course_teacher")
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::new("course_id", DataType::Int))
            .with_foreign_key("course", "id")
            .with_column(ColumnDef::new("teacher_id", DataType::Int))
            .with_foreign_key("teacher", "id"),
    )?;
    for i in 0..n_course_teacher {
        sink.push_row(vec![
            Value::Int(i as i64),
            Value::Int(uniform_int(&mut rng, 0, n_course as i64 - 1)),
            Value::Int(uniform_int(&mut rng, 0, n_teacher as i64 - 1)),
        ])?;
    }
    sink.finish_table()?;

    // chapter(id PK, course_id FK, seq)
    sink.begin_table(
        TableSchema::new("chapter")
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::new("course_id", DataType::Int))
            .with_foreign_key("course", "id")
            .with_column(ColumnDef::new("seq", DataType::Int)),
    )?;
    for i in 0..n_chapter {
        sink.push_row(vec![
            Value::Int(i as i64),
            Value::Int(uniform_int(&mut rng, 0, n_course as i64 - 1)),
            Value::Int(uniform_int(&mut rng, 1, 12)),
        ])?;
    }
    sink.finish_table()?;

    // video(id PK, chapter_id FK, duration_sec)
    sink.begin_table(
        TableSchema::new("video")
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::new("chapter_id", DataType::Int))
            .with_foreign_key("chapter", "id")
            .with_column(ColumnDef::new("duration_sec", DataType::Int)),
    )?;
    for i in 0..n_video {
        sink.push_row(vec![
            Value::Int(i as i64),
            Value::Int(uniform_int(&mut rng, 0, n_chapter as i64 - 1)),
            Value::Int(uniform_int(&mut rng, 60, 3600)),
        ])?;
    }
    sink.finish_table()?;

    // exercise(id PK, chapter_id FK, difficulty)
    sink.begin_table(
        TableSchema::new("exercise")
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::new("chapter_id", DataType::Int))
            .with_foreign_key("chapter", "id")
            .with_column(ColumnDef::new("difficulty", DataType::Int)),
    )?;
    for i in 0..n_exercise {
        sink.push_row(vec![
            Value::Int(i as i64),
            Value::Int(uniform_int(&mut rng, 0, n_chapter as i64 - 1)),
            Value::Int(uniform_int(&mut rng, 1, 5)),
        ])?;
    }
    sink.finish_table()?;

    // MOOC engagement is extremely skewed: a few power users and hit
    // courses account for most events.
    let user_zipf = Zipf::new(n_user, 1.0);
    let course_zipf = Zipf::new(n_course, 1.1);
    let video_zipf = Zipf::new(n_video, 0.9);
    let ex_zipf = Zipf::new(n_exercise, 0.9);

    // enrollment(id PK, user_id FK, course_id FK, enroll_day, progress)
    sink.begin_table(
        TableSchema::new("enrollment")
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::new("user_id", DataType::Int))
            .with_foreign_key("users", "id")
            .with_column(ColumnDef::new("course_id", DataType::Int))
            .with_foreign_key("course", "id")
            .with_column(ColumnDef::new("enroll_day", DataType::Int))
            .with_column(ColumnDef::new("progress", DataType::Float)),
    )?;
    for i in 0..n_enroll {
        sink.push_row(vec![
            Value::Int(i as i64),
            Value::Int(user_zipf.sample(&mut rng) as i64),
            Value::Int(course_zipf.sample(&mut rng) as i64),
            Value::Int(uniform_int(&mut rng, 0, 730)),
            Value::Float((uniform_int(&mut rng, 0, 100) as f64) / 100.0),
        ])?;
    }
    sink.finish_table()?;

    // video_watch(id PK, user_id FK, video_id FK, watch_sec, device)
    sink.begin_table(
        TableSchema::new("video_watch")
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::new("user_id", DataType::Int))
            .with_foreign_key("users", "id")
            .with_column(ColumnDef::new("video_id", DataType::Int))
            .with_foreign_key("video", "id")
            .with_column(ColumnDef::new("watch_sec", DataType::Int))
            .with_column(ColumnDef::categorical("device", DataType::Text)),
    )?;
    for i in 0..n_watch {
        sink.push_row(vec![
            Value::Int(i as i64),
            Value::Int(user_zipf.sample(&mut rng) as i64),
            Value::Int(video_zipf.sample(&mut rng) as i64),
            Value::Int(uniform_int(&mut rng, 1, 3600)),
            Value::Text(choose(&mut rng, &DEVICES).to_string()),
        ])?;
    }
    sink.finish_table()?;

    // submission(id PK, user_id FK, exercise_id FK, score, verdict)
    sink.begin_table(
        TableSchema::new("submission")
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::new("user_id", DataType::Int))
            .with_foreign_key("users", "id")
            .with_column(ColumnDef::new("exercise_id", DataType::Int))
            .with_foreign_key("exercise", "id")
            .with_column(ColumnDef::new("score", DataType::Float))
            .with_column(ColumnDef::categorical("verdict", DataType::Text)),
    )?;
    for i in 0..n_submit {
        sink.push_row(vec![
            Value::Int(i as i64),
            Value::Int(user_zipf.sample(&mut rng) as i64),
            Value::Int(ex_zipf.sample(&mut rng) as i64),
            Value::Float(clamped_normal(&mut rng, 70.0, 20.0, 0.0, 100.0).round()),
            Value::Text(choose(&mut rng, &VERDICTS).to_string()),
        ])?;
    }
    sink.finish_table()?;

    // forum_post(id PK, user_id FK, course_id FK, length)
    sink.begin_table(
        TableSchema::new("forum_post")
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::new("user_id", DataType::Int))
            .with_foreign_key("users", "id")
            .with_column(ColumnDef::new("course_id", DataType::Int))
            .with_foreign_key("course", "id")
            .with_column(ColumnDef::new("length", DataType::Int)),
    )?;
    for i in 0..n_post {
        sink.push_row(vec![
            Value::Int(i as i64),
            Value::Int(user_zipf.sample(&mut rng) as i64),
            Value::Int(course_zipf.sample(&mut rng) as i64),
            Value::Int(uniform_int(&mut rng, 5, 4000)),
        ])?;
    }
    sink.finish_table()?;

    // certificate(id PK, user_id FK, course_id FK, grade)
    sink.begin_table(
        TableSchema::new("certificate")
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::new("user_id", DataType::Int))
            .with_foreign_key("users", "id")
            .with_column(ColumnDef::new("course_id", DataType::Int))
            .with_foreign_key("course", "id")
            .with_column(ColumnDef::new("grade", DataType::Float)),
    )?;
    for i in 0..n_cert {
        sink.push_row(vec![
            Value::Int(i as i64),
            Value::Int(user_zipf.sample(&mut rng) as i64),
            Value::Int(course_zipf.sample(&mut rng) as i64),
            Value::Float(clamped_normal(&mut rng, 80.0, 10.0, 60.0, 100.0).round()),
        ])?;
    }
    sink.finish_table()?;

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_twelve_tables() {
        let db = xuetang_database(0.2, 1);
        assert_eq!(db.len(), 12);
    }

    #[test]
    fn users_hub_has_many_edges() {
        let db = xuetang_database(0.2, 1);
        let targets: Vec<String> = db
            .join_edges("users")
            .into_iter()
            .map(|e| e.right_table)
            .collect();
        for t in [
            "enrollment",
            "video_watch",
            "submission",
            "forum_post",
            "certificate",
        ] {
            assert!(targets.contains(&t.to_string()), "users not joined to {t}");
        }
    }

    #[test]
    fn engagement_is_user_skewed() {
        let db = xuetang_database(1.0, 5);
        let watch = db.table("video_watch").unwrap();
        let col = match watch.column("user_id").unwrap() {
            crate::table::Column::Int(v) => v,
            _ => unreachable!(),
        };
        let mut counts = std::collections::HashMap::new();
        for &c in col {
            *counts.entry(c).or_insert(0usize) += 1;
        }
        let max = *counts.values().max().unwrap();
        let avg = col.len() as f64 / counts.len() as f64;
        assert!(max as f64 > 3.0 * avg);
    }
}
