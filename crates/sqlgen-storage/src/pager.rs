//! Slotted-page file format and the single-file [`Pager`].
//!
//! A paged database lives in one file of fixed-size pages:
//!
//! ```text
//! page 0            header   magic, format version, catalog location
//! pages 1..C        heap     table rows, append-ordered per table
//! pages C..N        catalog  JSON catalog (schemas + page directories)
//! ```
//!
//! Every page carries the same 12-byte header:
//!
//! ```text
//! offset  size  field
//! 0       4     crc32 (IEEE) over bytes 4..PAGE_SIZE
//! 4       1     page type (0 header, 1 heap, 2 catalog)
//! 5       3     reserved (zero)
//! 8       4     payload length (bytes used after the header)
//! 12      ..    payload, zero-padded to PAGE_SIZE
//! ```
//!
//! The checksum covers the whole page after the crc field, padding
//! included, so a torn or bit-flipped page is detected on first read
//! (exercised by the `paged-equivalence` fuzz family). The pager itself
//! is deliberately dumb: fixed pages in, fixed pages out, no caching —
//! that is [`crate::bufpool::BufferPool`]'s job.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Page size in bytes. 8 KiB matches common database defaults and keeps
/// the per-page directory small relative to row data.
pub const PAGE_SIZE: usize = 8192;
/// Bytes of per-page header before the payload.
pub const PAGE_HEADER: usize = 12;
/// Usable payload bytes per page.
pub const PAGE_PAYLOAD: usize = PAGE_SIZE - PAGE_HEADER;

/// Magic bytes at the start of the header page payload.
pub const MAGIC: &[u8; 8] = b"SQLGENPG";
/// On-disk format version.
pub const FORMAT_VERSION: u32 = 1;

/// Page type tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PageType {
    Header = 0,
    Heap = 1,
    Catalog = 2,
}

impl PageType {
    fn from_u8(b: u8) -> Option<PageType> {
        match b {
            0 => Some(PageType::Header),
            1 => Some(PageType::Heap),
            2 => Some(PageType::Catalog),
            _ => None,
        }
    }
}

/// Storage-layer errors: real I/O failures vs detected corruption.
#[derive(Debug)]
pub enum StorageError {
    Io(io::Error),
    Corrupt(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage io error: {e}"),
            StorageError::Corrupt(m) => write!(f, "storage corruption: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = make_crc_table();

/// CRC-32 (IEEE 802.3), the polynomial used by zlib/gzip. Implemented
/// here because the crate is std-only with no compression deps.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// Assembles a full on-disk page from a payload: header + checksum +
/// zero padding. Panics if the payload exceeds [`PAGE_PAYLOAD`].
pub fn encode_page(ptype: PageType, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= PAGE_PAYLOAD,
        "payload {} exceeds page capacity {}",
        payload.len(),
        PAGE_PAYLOAD
    );
    let mut page = vec![0u8; PAGE_SIZE];
    page[4] = ptype as u8;
    page[8..12].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    page[PAGE_HEADER..PAGE_HEADER + payload.len()].copy_from_slice(payload);
    let crc = crc32(&page[4..]);
    page[0..4].copy_from_slice(&crc.to_le_bytes());
    page
}

/// Validates a raw page buffer: checksum, type tag, payload length.
pub fn verify_page(page_no: u32, page: &[u8]) -> Result<(PageType, usize), StorageError> {
    if page.len() != PAGE_SIZE {
        return Err(StorageError::Corrupt(format!(
            "page {page_no}: short read ({} bytes)",
            page.len()
        )));
    }
    let stored = u32::from_le_bytes(page[0..4].try_into().unwrap());
    let actual = crc32(&page[4..]);
    if stored != actual {
        return Err(StorageError::Corrupt(format!(
            "page {page_no}: checksum mismatch (stored {stored:#010x}, computed {actual:#010x})"
        )));
    }
    let ptype = PageType::from_u8(page[4]).ok_or_else(|| {
        StorageError::Corrupt(format!("page {page_no}: unknown page type {}", page[4]))
    })?;
    let len = u32::from_le_bytes(page[8..12].try_into().unwrap()) as usize;
    if len > PAGE_PAYLOAD {
        return Err(StorageError::Corrupt(format!(
            "page {page_no}: payload length {len} exceeds capacity"
        )));
    }
    Ok((ptype, len))
}

/// Fixed-size page I/O over one database file.
pub struct Pager {
    file: File,
    pages: u32,
}

impl Pager {
    /// Creates (truncating) a new database file and reserves page 0 for
    /// the header, which [`Pager::write_header`] fills in at finalize.
    pub fn create(path: &Path) -> Result<Pager, StorageError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut pager = Pager { file, pages: 0 };
        // Placeholder header: rewritten with real catalog location later.
        pager.append_page(PageType::Header, &header_payload(0, 0))?;
        Ok(pager)
    }

    /// Opens an existing database file and validates the header page.
    pub fn open(path: &Path) -> Result<(Pager, HeaderInfo), StorageError> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 || len == 0 {
            return Err(StorageError::Corrupt(format!(
                "file length {len} is not a whole number of {PAGE_SIZE}-byte pages"
            )));
        }
        let mut pager = Pager {
            file,
            pages: (len / PAGE_SIZE as u64) as u32,
        };
        let header = pager.read_page(0)?;
        let (ptype, plen) = verify_page(0, &header)?;
        if ptype != PageType::Header {
            return Err(StorageError::Corrupt("page 0 is not a header page".into()));
        }
        let info = parse_header(&header[PAGE_HEADER..PAGE_HEADER + plen])?;
        Ok((pager, info))
    }

    pub fn page_count(&self) -> u32 {
        self.pages
    }

    /// Reads one raw page (header + payload + padding) without checksum
    /// validation; callers verify via [`verify_page`] (the buffer pool
    /// does this on every fill).
    pub fn read_page(&mut self, page_no: u32) -> Result<Vec<u8>, StorageError> {
        if page_no >= self.pages {
            return Err(StorageError::Corrupt(format!(
                "page {page_no} out of range ({} pages)",
                self.pages
            )));
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        self.file
            .seek(SeekFrom::Start(page_no as u64 * PAGE_SIZE as u64))?;
        self.file.read_exact(&mut buf)?;
        Ok(buf)
    }

    /// Reads and validates a page, returning the full buffer.
    pub fn read_page_checked(&mut self, page_no: u32) -> Result<Vec<u8>, StorageError> {
        let buf = self.read_page(page_no)?;
        verify_page(page_no, &buf)?;
        Ok(buf)
    }

    /// Appends a new page at the end of the file; returns its number.
    pub fn append_page(&mut self, ptype: PageType, payload: &[u8]) -> Result<u32, StorageError> {
        let page = encode_page(ptype, payload);
        self.file.seek(SeekFrom::End(0))?;
        self.file.write_all(&page)?;
        let no = self.pages;
        self.pages += 1;
        Ok(no)
    }

    /// Overwrites an existing page in place (header rewrite at finalize,
    /// dirty write-back from the buffer pool). `page` must be a full
    /// [`PAGE_SIZE`] buffer with a valid checksum.
    pub fn write_page_raw(&mut self, page_no: u32, page: &[u8]) -> Result<(), StorageError> {
        assert_eq!(page.len(), PAGE_SIZE);
        if page_no >= self.pages {
            return Err(StorageError::Corrupt(format!(
                "write to page {page_no} out of range ({} pages)",
                self.pages
            )));
        }
        self.file
            .seek(SeekFrom::Start(page_no as u64 * PAGE_SIZE as u64))?;
        self.file.write_all(page)?;
        Ok(())
    }

    /// Rewrites page 0 with the final catalog location.
    pub fn write_header(
        &mut self,
        catalog_page: u32,
        catalog_bytes: u64,
    ) -> Result<(), StorageError> {
        let page = encode_page(
            PageType::Header,
            &header_payload(catalog_page, catalog_bytes),
        );
        self.write_page_raw(0, &page)
    }

    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.file.sync_all()?;
        Ok(())
    }
}

/// Parsed header-page fields.
#[derive(Debug, Clone, Copy)]
pub struct HeaderInfo {
    pub catalog_page: u32,
    pub catalog_bytes: u64,
}

fn header_payload(catalog_page: u32, catalog_bytes: u64) -> Vec<u8> {
    let mut p = Vec::with_capacity(24);
    p.extend_from_slice(MAGIC);
    p.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    p.extend_from_slice(&catalog_page.to_le_bytes());
    p.extend_from_slice(&catalog_bytes.to_le_bytes());
    p
}

fn parse_header(payload: &[u8]) -> Result<HeaderInfo, StorageError> {
    if payload.len() < 24 || &payload[0..8] != MAGIC {
        return Err(StorageError::Corrupt("bad magic in header page".into()));
    }
    let version = u32::from_le_bytes(payload[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(StorageError::Corrupt(format!(
            "unsupported format version {version} (expected {FORMAT_VERSION})"
        )));
    }
    Ok(HeaderInfo {
        catalog_page: u32::from_le_bytes(payload[12..16].try_into().unwrap()),
        catalog_bytes: u64::from_le_bytes(payload[16..24].try_into().unwrap()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b"hello world"), 0x0d4a_1185);
    }

    #[test]
    fn page_roundtrip_and_corruption_detection() {
        let payload = b"some row bytes".to_vec();
        let mut page = encode_page(PageType::Heap, &payload);
        let (ptype, len) = verify_page(7, &page).unwrap();
        assert_eq!(ptype, PageType::Heap);
        assert_eq!(&page[PAGE_HEADER..PAGE_HEADER + len], &payload[..]);
        // Flip one payload bit: checksum must catch it.
        page[PAGE_HEADER + 3] ^= 0x40;
        assert!(matches!(
            verify_page(7, &page),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn pager_create_open_append() {
        let path = std::env::temp_dir().join(format!("sqlgen-pager-{}.db", std::process::id()));
        {
            let mut pager = Pager::create(&path).unwrap();
            let n1 = pager.append_page(PageType::Heap, b"alpha").unwrap();
            let n2 = pager.append_page(PageType::Heap, b"beta").unwrap();
            assert_eq!((n1, n2), (1, 2));
            pager.write_header(2, 4).unwrap();
            pager.sync().unwrap();
        }
        {
            let (mut pager, info) = Pager::open(&path).unwrap();
            assert_eq!(pager.page_count(), 3);
            assert_eq!(info.catalog_page, 2);
            assert_eq!(info.catalog_bytes, 4);
            let page = pager.read_page_checked(1).unwrap();
            let (_, len) = verify_page(1, &page).unwrap();
            assert_eq!(&page[PAGE_HEADER..PAGE_HEADER + len], b"alpha");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_final_page_is_detected() {
        let path = std::env::temp_dir().join(format!("sqlgen-torn-{}.db", std::process::id()));
        {
            let mut pager = Pager::create(&path).unwrap();
            pager.append_page(PageType::Heap, b"data").unwrap();
            pager.write_header(1, 0).unwrap();
            pager.sync().unwrap();
        }
        // Simulate a torn write: garbage in the tail of the final page.
        {
            let mut f = OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(PAGE_SIZE as u64 + 100)).unwrap();
            f.write_all(&[0xaau8; 64]).unwrap();
        }
        let (mut pager, _) = Pager::open(&path).unwrap();
        assert!(matches!(
            pager.read_page_checked(1),
            Err(StorageError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }
}
