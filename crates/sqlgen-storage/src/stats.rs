//! Per-column statistics consumed by the cardinality estimator.
//!
//! Mirrors what a System-R-style optimizer keeps: min/max, distinct counts,
//! equi-depth histograms for numeric columns and most-common-value lists for
//! categorical/text columns.

use crate::table::{Column, Table};
use crate::value::{DataType, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Default number of equi-depth histogram buckets.
pub const DEFAULT_BUCKETS: usize = 32;
/// Default number of most-common values tracked per column.
pub const DEFAULT_MCVS: usize = 16;

/// Equi-depth histogram over a numeric column.
///
/// `bounds` has `buckets + 1` entries; bucket `i` covers
/// `[bounds[i], bounds[i+1]]` and holds ~`1/buckets` of the rows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    pub bounds: Vec<f64>,
    pub rows_per_bucket: f64,
}

impl Histogram {
    /// Builds an equi-depth histogram from raw (unsorted) numeric data.
    pub fn build(mut data: Vec<f64>, buckets: usize) -> Option<Self> {
        // Non-finite values carry no range information and used to panic
        // the sort below; an all-NaN column simply has no histogram.
        data.retain(|x| x.is_finite());
        if data.is_empty() {
            return None;
        }
        data.sort_by(f64::total_cmp);
        let n = data.len();
        let buckets = buckets.min(n).max(1);
        let mut bounds = Vec::with_capacity(buckets + 1);
        for i in 0..=buckets {
            let idx = (i * (n - 1)) / buckets;
            bounds.push(data[idx]);
        }
        Some(Histogram {
            bounds,
            rows_per_bucket: n as f64 / buckets as f64,
        })
    }

    pub fn min(&self) -> f64 {
        self.bounds[0]
    }

    pub fn max(&self) -> f64 {
        *self.bounds.last().expect("histogram has bounds")
    }

    fn buckets(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Estimated fraction of rows with value `< x` (or `<= x`; the
    /// within-bucket interpolation makes the two indistinguishable).
    pub fn fraction_below(&self, x: f64) -> f64 {
        if x <= self.min() {
            return 0.0;
        }
        if x >= self.max() {
            return 1.0;
        }
        let b = self.buckets();
        // Find the bucket containing x.
        let i = self
            .bounds
            .windows(2)
            .position(|w| x >= w[0] && x <= w[1])
            .unwrap_or(b - 1);
        let (lo, hi) = (self.bounds[i], self.bounds[i + 1]);
        let within = if hi > lo { (x - lo) / (hi - lo) } else { 0.5 };
        (i as f64 + within) / b as f64
    }

    /// Estimated selectivity of `lo <= value <= hi`.
    pub fn fraction_between(&self, lo: f64, hi: f64) -> f64 {
        (self.fraction_below(hi) - self.fraction_below(lo)).max(0.0)
    }
}

/// Statistics for one column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnStats {
    pub name: String,
    pub dtype: DataType,
    pub row_count: usize,
    pub distinct: usize,
    /// Numeric columns only.
    pub histogram: Option<Histogram>,
    /// Most common values with their frequencies (fraction of rows).
    pub mcvs: Vec<(Value, f64)>,
}

impl ColumnStats {
    pub fn build(name: &str, col: &Column) -> Self {
        match col {
            Column::Int(v) => Self::from_ints(name, v),
            Column::Float(v) => Self::from_floats(name, v.clone()),
            Column::Text(v) => Self::from_texts(name, v),
        }
    }

    /// Builds stats from raw integer data. Shared by the in-memory
    /// column path and the paged backend's streamed samples.
    pub fn from_ints(name: &str, v: &[i64]) -> Self {
        let row_count = v.len();
        let data: Vec<f64> = v.iter().map(|&x| x as f64).collect();
        let distinct = count_distinct_int(v);
        let mcvs = top_values(v.iter().map(|&x| Value::Int(x)), row_count);
        ColumnStats {
            name: name.to_string(),
            dtype: DataType::Int,
            row_count,
            distinct,
            histogram: Histogram::build(data, DEFAULT_BUCKETS),
            mcvs,
        }
    }

    /// Builds stats from raw float data (consumes the vector: the
    /// histogram sorts it in place).
    pub fn from_floats(name: &str, v: Vec<f64>) -> Self {
        let row_count = v.len();
        let distinct = count_distinct_float(&v);
        ColumnStats {
            name: name.to_string(),
            dtype: DataType::Float,
            row_count,
            distinct,
            histogram: Histogram::build(v, DEFAULT_BUCKETS),
            mcvs: Vec::new(),
        }
    }

    /// Builds stats from raw text data.
    pub fn from_texts(name: &str, v: &[String]) -> Self {
        let row_count = v.len();
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for s in v {
            *counts.entry(s.as_str()).or_default() += 1;
        }
        let distinct = counts.len();
        let mut pairs: Vec<(&str, usize)> = counts.into_iter().collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let mcvs = pairs
            .into_iter()
            .take(DEFAULT_MCVS)
            .map(|(s, c)| {
                (
                    Value::Text(s.to_string()),
                    c as f64 / row_count.max(1) as f64,
                )
            })
            .collect();
        ColumnStats {
            name: name.to_string(),
            dtype: DataType::Text,
            row_count,
            distinct,
            histogram: None,
            mcvs,
        }
    }

    /// Frequency of `v` according to the MCV list, falling back to the
    /// uniform assumption `1/distinct` for non-MCV values.
    pub fn eq_selectivity(&self, v: &Value) -> f64 {
        if self.row_count == 0 {
            return 0.0;
        }
        for (mcv, freq) in &self.mcvs {
            if mcv == v {
                return *freq;
            }
        }
        if self.distinct == 0 {
            0.0
        } else {
            // Mass not covered by MCVs, spread over the remaining distinct values.
            let mcv_mass: f64 = self.mcvs.iter().map(|(_, f)| f).sum();
            let rest = (self.distinct - self.mcvs.len().min(self.distinct)).max(1);
            ((1.0 - mcv_mass).max(0.0) / rest as f64).min(1.0)
        }
    }
}

fn count_distinct_int(v: &[i64]) -> usize {
    let mut sorted = v.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

fn count_distinct_float(v: &[f64]) -> usize {
    let mut sorted: Vec<u64> = v.iter().map(|x| x.to_bits()).collect();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

fn top_values<I: Iterator<Item = Value>>(vals: I, row_count: usize) -> Vec<(Value, f64)> {
    let mut counts: HashMap<i64, usize> = HashMap::new();
    for v in vals {
        if let Value::Int(x) = v {
            *counts.entry(x).or_default() += 1;
        }
    }
    let mut pairs: Vec<(i64, usize)> = counts.into_iter().collect();
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    pairs
        .into_iter()
        .take(DEFAULT_MCVS)
        .map(|(v, c)| (Value::Int(v), c as f64 / row_count.max(1) as f64))
        .collect()
}

/// Statistics for a whole table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableStats {
    pub table: String,
    pub row_count: usize,
    pub columns: Vec<ColumnStats>,
}

/// Row cap per column for [`TableStats::build_read`] when callers do not
/// choose one. With stride sampling this bounds stats memory to ~8 MB per
/// column regardless of on-disk table size; tables at or below the cap
/// are scanned exactly (stride 1), matching [`TableStats::build`] bit for
/// bit.
pub const DEFAULT_STATS_ROW_CAP: usize = 1_000_000;

impl TableStats {
    pub fn build(table: &Table) -> Self {
        let columns = table
            .schema
            .columns
            .iter()
            .zip(&table.columns)
            .map(|(def, col)| ColumnStats::build(&def.name, col))
            .collect();
        TableStats {
            table: table.name().to_string(),
            row_count: table.row_count(),
            columns,
        }
    }

    /// Builds stats through the backend-neutral [`TableRead`] interface.
    ///
    /// Columns longer than `row_cap` are systematically sampled (every
    /// `stride`-th row) so huge paged tables never materialize in memory;
    /// MCV frequencies then denominate over the sample, and `distinct`
    /// becomes a lower bound. At stride 1 the scan order and inputs are
    /// identical to [`TableStats::build`], so the result is bit-identical
    /// for any table that fits the cap.
    pub fn build_read<T: crate::cursor::TableRead>(table: &T, row_cap: usize) -> Self {
        use crate::cursor::ColCursor;
        let schema = table.schema();
        let rows = table.row_count();
        let stride = if row_cap == 0 {
            1
        } else {
            rows.div_ceil(row_cap).max(1)
        };
        let columns = schema
            .columns
            .iter()
            .enumerate()
            .map(|(ci, def)| {
                let mut cursor = table.scan_column(ci);
                match def.dtype {
                    DataType::Int => {
                        let mut v = Vec::new();
                        let mut i = 0usize;
                        while let Some(val) = cursor.next_value() {
                            if i.is_multiple_of(stride) {
                                if let Value::Int(x) = val {
                                    v.push(x);
                                }
                            }
                            i += 1;
                        }
                        ColumnStats::from_ints(&def.name, &v)
                    }
                    DataType::Float => {
                        let mut v = Vec::new();
                        let mut i = 0usize;
                        while let Some(val) = cursor.next_value() {
                            if i.is_multiple_of(stride) {
                                if let Value::Float(x) = val {
                                    v.push(x);
                                }
                            }
                            i += 1;
                        }
                        ColumnStats::from_floats(&def.name, v)
                    }
                    DataType::Text => {
                        let mut v = Vec::new();
                        let mut i = 0usize;
                        while let Some(val) = cursor.next_value() {
                            if i.is_multiple_of(stride) {
                                if let Value::Text(s) = val {
                                    v.push(s);
                                }
                            }
                            i += 1;
                        }
                        ColumnStats::from_texts(&def.name, &v)
                    }
                }
            })
            .collect();
        TableStats {
            table: schema.name.clone(),
            row_count: rows,
            columns,
        }
    }

    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equi_depth_histogram_fractions() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let h = Histogram::build(data, 10).unwrap();
        assert!((h.fraction_below(500.0) - 0.5).abs() < 0.02);
        assert!((h.fraction_below(100.0) - 0.1).abs() < 0.02);
        assert_eq!(h.fraction_below(-5.0), 0.0);
        assert_eq!(h.fraction_below(2000.0), 1.0);
        assert!((h.fraction_between(250.0, 750.0) - 0.5).abs() < 0.03);
    }

    #[test]
    fn histogram_handles_skew() {
        // 90% of mass at value 0, rest spread out.
        let mut data = vec![0.0; 900];
        data.extend((1..=100).map(|i| i as f64));
        let h = Histogram::build(data, 10).unwrap();
        // Almost everything is <= 0, so fraction below 0.5 should be ~0.9.
        assert!(h.fraction_below(0.5) > 0.8);
    }

    #[test]
    fn histogram_empty_column() {
        assert!(Histogram::build(Vec::new(), 10).is_none());
    }

    #[test]
    fn mcv_eq_selectivity() {
        let col = Column::Int(vec![1, 1, 1, 1, 1, 1, 2, 3, 4, 5]);
        let s = ColumnStats::build("c", &col);
        assert!((s.eq_selectivity(&Value::Int(1)) - 0.6).abs() < 1e-9);
        // Non-MCV values fall back to the uniform share.
        assert!(s.eq_selectivity(&Value::Int(99)) <= 0.2);
    }

    #[test]
    fn text_mcvs() {
        let col = Column::Text(vec!["a".into(), "a".into(), "a".into(), "b".into()]);
        let s = ColumnStats::build("c", &col);
        assert_eq!(s.distinct, 2);
        assert!((s.eq_selectivity(&Value::Text("a".into())) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn distinct_counts() {
        let s = ColumnStats::build("c", &Column::Int(vec![5, 5, 7, 9]));
        assert_eq!(s.distinct, 3);
        let s = ColumnStats::build("c", &Column::Float(vec![1.5, 1.5, 2.5]));
        assert_eq!(s.distinct, 2);
    }

    #[test]
    fn build_read_matches_build_under_the_cap() {
        use crate::schema::{ColumnDef, TableSchema};
        let schema = TableSchema::new("t")
            .with_column(ColumnDef::new("i", DataType::Int))
            .with_column(ColumnDef::new("f", DataType::Float))
            .with_column(ColumnDef::new("s", DataType::Text));
        let mut t = Table::new(schema);
        for i in 0..300i64 {
            t.push_row(vec![
                Value::Int(i % 17),
                Value::Float((i % 5) as f64 + 0.25),
                Value::Text(format!("s{}", i % 9)),
            ]);
        }
        let exact = TableStats::build(&t);
        let via_read = TableStats::build_read(&t, DEFAULT_STATS_ROW_CAP);
        assert_eq!(format!("{exact:?}"), format!("{via_read:?}"));
        // Over-cap: sampled stats remain well-formed with true row_count.
        let sampled = TableStats::build_read(&t, 50);
        assert_eq!(sampled.row_count, 300);
        assert!(sampled.columns[0].row_count <= 50 + 1);
        assert!(sampled.columns[0].distinct <= exact.columns[0].distinct);
    }

    /// Regression: NaN in a float column used to panic histogram builds.
    #[test]
    fn nan_data_does_not_panic_stats() {
        let h = Histogram::build(vec![f64::NAN, 1.0, 2.0, f64::INFINITY, 3.0], 4);
        let h = h.expect("finite values remain");
        assert!(h.min().is_finite() && h.max().is_finite());
        assert!(Histogram::build(vec![f64::NAN, f64::NAN], 4).is_none());

        let s = ColumnStats::build("c", &Column::Float(vec![f64::NAN, 1.0, 1.0, 2.0]));
        assert_eq!(s.row_count, 4);
        assert!(s.histogram.is_some());
        let sel = s.eq_selectivity(&Value::Float(1.0));
        assert!((0.0..=1.0).contains(&sel));
    }
}
