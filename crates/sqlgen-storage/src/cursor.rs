//! Backend-neutral read traits: the seam between the executor and storage.
//!
//! `sqlgen-engine::exec` historically reached straight into `Vec`-backed
//! [`Column`]s. The paged backend (see [`crate::pager`], [`crate::heap`])
//! cannot hand out `&Column`, so the executor now scans through two small
//! traits instead:
//!
//! * [`TableRead`] — schema, row count, random `(col, row)` access and a
//!   sequential per-column cursor,
//! * [`DbRead`] — named-table lookup plus FK-derived join topology.
//!
//! The in-memory [`Table`]/[`Database`] implementations below compile to
//! the same direct `Vec` indexing as before (everything is monomorphized),
//! which is what keeps the default backend bit-identical: same access
//! pattern, same values, same iteration order.

use crate::database::{Database, JoinEdge};
use crate::schema::TableSchema;
use crate::table::{Column, Table};
use crate::value::{DataType, Value};

/// Sequential scan over one column. `next` returns `None` past the end.
pub trait ColCursor {
    fn next_value(&mut self) -> Option<Value>;
}

/// Read-only access to one relation.
pub trait TableRead {
    type Cursor<'c>: ColCursor
    where
        Self: 'c;

    fn schema(&self) -> &TableSchema;
    fn row_count(&self) -> usize;
    /// Random access. Panics if `col`/`row` are out of bounds (same
    /// contract as [`Column::get`]).
    fn value(&self, col: usize, row: usize) -> Value;
    /// Sequential scan of column `col`, front to back.
    fn scan_column(&self, col: usize) -> Self::Cursor<'_>;
}

/// Read-only access to a catalog of relations. `Sync` because training
/// shares one environment across scoped worker threads.
pub trait DbRead: Sync {
    type Table: TableRead;

    fn read_table(&self, name: &str) -> Option<&Self::Table>;
    /// Table names in deterministic (sorted) order.
    fn table_names(&self) -> Vec<&str>;
    /// All FK-derived join edges involving `table`, in both directions.
    fn join_edges(&self, table: &str) -> Vec<JoinEdge>;

    fn schema_of(&self, name: &str) -> Option<&TableSchema> {
        self.read_table(name).map(|t| t.schema())
    }

    fn column_type(&self, table: &str, column: &str) -> Option<DataType> {
        self.schema_of(table)?.column(column).map(|c| c.dtype)
    }

    /// The FK edge connecting two specific tables, if any.
    fn join_edge_between(&self, a: &str, b: &str) -> Option<JoinEdge> {
        self.join_edges(a).into_iter().find(|e| e.right_table == b)
    }
}

/// Cursor over an in-memory column: a live borrow plus an index.
pub struct MemColCursor<'c> {
    col: &'c Column,
    row: usize,
}

impl ColCursor for MemColCursor<'_> {
    fn next_value(&mut self) -> Option<Value> {
        if self.row >= self.col.len() {
            return None;
        }
        let v = self.col.get(self.row);
        self.row += 1;
        Some(v)
    }
}

impl TableRead for Table {
    type Cursor<'c> = MemColCursor<'c>;

    fn schema(&self) -> &TableSchema {
        &self.schema
    }

    fn row_count(&self) -> usize {
        Table::row_count(self)
    }

    fn value(&self, col: usize, row: usize) -> Value {
        self.columns[col].get(row)
    }

    fn scan_column(&self, col: usize) -> MemColCursor<'_> {
        MemColCursor {
            col: &self.columns[col],
            row: 0,
        }
    }
}

impl DbRead for Database {
    type Table = Table;

    fn read_table(&self, name: &str) -> Option<&Table> {
        self.table(name)
    }

    fn table_names(&self) -> Vec<&str> {
        Database::table_names(self)
    }

    fn join_edges(&self, table: &str) -> Vec<JoinEdge> {
        Database::join_edges(self, table)
    }
}

/// Shared join-edge derivation over any sorted schema listing, so the
/// paged catalog reproduces [`Database::join_edges`] exactly: outgoing
/// FKs in declaration order first, then incoming FKs in sorted table
/// order.
pub fn join_edges_from_schemas<'s, I>(schemas: I, table: &str) -> Vec<JoinEdge>
where
    I: Iterator<Item = &'s TableSchema> + Clone,
{
    let mut edges = Vec::new();
    let known = |name: &str| schemas.clone().any(|s| s.name == name);
    if let Some(schema) = schemas.clone().find(|s| s.name == table) {
        for fk in &schema.foreign_keys {
            if known(&fk.ref_table) {
                edges.push(JoinEdge {
                    left_table: table.to_string(),
                    left_column: fk.column.clone(),
                    right_table: fk.ref_table.clone(),
                    right_column: fk.ref_column.clone(),
                });
            }
        }
    }
    for s in schemas {
        if s.name == table {
            continue;
        }
        for fk in &s.foreign_keys {
            if fk.ref_table == table {
                edges.push(JoinEdge {
                    left_table: table.to_string(),
                    left_column: fk.ref_column.clone(),
                    right_table: s.name.clone(),
                    right_column: fk.column.clone(),
                });
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn sample_table() -> Table {
        let schema = TableSchema::new("t")
            .with_column(ColumnDef::new("a", DataType::Int))
            .with_column(ColumnDef::new("b", DataType::Text));
        let mut t = Table::new(schema);
        t.push_row(vec![Value::Int(1), Value::Text("x".into())]);
        t.push_row(vec![Value::Int(2), Value::Text("y".into())]);
        t
    }

    #[test]
    fn mem_table_read_matches_direct_access() {
        let t = sample_table();
        assert_eq!(TableRead::row_count(&t), 2);
        assert_eq!(t.value(0, 1), Value::Int(2));
        assert_eq!(t.value(1, 0), Value::Text("x".into()));
        let mut c = t.scan_column(0);
        assert_eq!(c.next_value(), Some(Value::Int(1)));
        assert_eq!(c.next_value(), Some(Value::Int(2)));
        assert_eq!(c.next_value(), None);
    }

    #[test]
    fn shared_join_edges_match_database_impl() {
        let student = TableSchema::new("student")
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_primary_key();
        let score = TableSchema::new("score")
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_foreign_key("student", "id");
        let mut db = Database::new();
        db.add_table(Table::new(student.clone()));
        db.add_table(Table::new(score.clone()));
        // Sorted order, as the paged catalog stores them.
        let schemas = [score, student];
        for t in ["score", "student"] {
            assert_eq!(db.join_edges(t), join_edges_from_schemas(schemas.iter(), t));
        }
    }
}
