//! Scalar values and data types.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// The data type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integers.
    Int,
    /// 64-bit floats.
    Float,
    /// UTF-8 strings (categorical or free text).
    Text,
}

impl DataType {
    /// Whether values of this type can appear inside `SUM`/`AVG`/... aggregates.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Text => write!(f, "TEXT"),
        }
    }
}

/// A single scalar value.
///
/// `Value` is the row-oriented interface over the typed columnar storage; the
/// hot execution paths operate on [`crate::table::Column`] directly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Text(String),
}

impl Value {
    /// The type of this value, if it is not `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
        }
    }

    /// Numeric view of the value: `Int` and `Float` become `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL literal rendering (single quotes for text, escaped).
    pub fn to_sql(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(v) => v.to_string(),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("{v:.1}")
                } else {
                    format!("{v}")
                }
            }
            Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
        }
    }

    /// Total order for sorting: `NULL` first, then numbers, then text.
    ///
    /// Unlike [`Value::try_cmp`] this never returns "no answer", so it is
    /// safe to feed to a comparison sort. Numbers (`Int` and `Float` alike)
    /// compare through [`f64::total_cmp`], which gives `NaN` a definite
    /// position (after every finite value) instead of comparing "equal" to
    /// everything — the latter violates transitivity and makes
    /// `slice::sort_by` panic. Values of different classes order by class.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn class(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Float(_) => 1,
                Value::Text(_) => 2,
            }
        }
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => a.total_cmp(&b),
            _ => match (self, other) {
                (Value::Text(a), Value::Text(b)) => a.cmp(b),
                _ => class(self).cmp(&class(other)),
            },
        }
    }

    /// Three-valued-logic comparison; `None` when either side is null or the
    /// types are incomparable.
    pub fn try_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.try_cmp(other) == Some(Ordering::Equal)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_sql())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(
            Value::Int(3).try_cmp(&Value::Float(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(2.5).try_cmp(&Value::Int(3)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn null_is_incomparable() {
        assert_eq!(Value::Null.try_cmp(&Value::Int(1)), None);
        assert_ne!(Value::Null, Value::Null);
    }

    #[test]
    fn text_and_int_incomparable() {
        assert_eq!(Value::Text("1".into()).try_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn total_cmp_is_total_on_hostile_values() {
        // Regression: sorting mixed NaN/finite rows through
        // `try_cmp(..).unwrap_or(Equal)` is not transitive (NaN "equal" to
        // both 1 and 2 while 1 < 2) and panicked inside `slice::sort_by`.
        let hostile = [
            Value::Null,
            Value::Float(f64::NAN),
            Value::Float(f64::NEG_INFINITY),
            Value::Float(-0.0),
            Value::Int(0),
            Value::Int(7),
            Value::Float(7.5),
            Value::Text(String::new()),
            Value::Text("z".into()),
        ];
        for a in &hostile {
            assert_eq!(a.total_cmp(a), Ordering::Equal);
            for b in &hostile {
                assert_eq!(a.total_cmp(b), b.total_cmp(a).reverse());
                for c in &hostile {
                    if a.total_cmp(b) == Ordering::Less && b.total_cmp(c) == Ordering::Less {
                        assert_eq!(a.total_cmp(c), Ordering::Less, "{a} < {b} < {c}");
                    }
                }
            }
        }
        assert_eq!(
            Value::Null.total_cmp(&Value::Float(f64::NAN)),
            Ordering::Less
        );
        assert_eq!(
            Value::Float(f64::NAN).total_cmp(&Value::Float(f64::INFINITY)),
            Ordering::Greater
        );
        assert_eq!(Value::Int(7).total_cmp(&Value::Float(7.0)), Ordering::Equal);
    }

    #[test]
    fn sql_rendering_escapes_quotes() {
        assert_eq!(Value::Text("o'clock".into()).to_sql(), "'o''clock'");
        assert_eq!(Value::Int(-5).to_sql(), "-5");
        assert_eq!(Value::Float(2.0).to_sql(), "2.0");
        assert_eq!(Value::Null.to_sql(), "NULL");
    }

    #[test]
    fn data_type_numeric() {
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Float.is_numeric());
        assert!(!DataType::Text.is_numeric());
    }
}
