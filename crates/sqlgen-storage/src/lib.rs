//! In-memory relational storage substrate for LearnedSQLGen.
//!
//! The SIGMOD'22 paper evaluates on TPC-H (33 GB), JOB/IMDB (14 GB) and the
//! proprietary XueTang OLTP benchmark (24 GB). The reinforcement-learning
//! signal, however, only depends on the *estimated* cardinality/cost, which
//! is a function of schema topology and column statistics rather than raw
//! data volume. This crate therefore provides:
//!
//! * typed columnar tables ([`Table`], [`Column`]) and a [`Database`] catalog,
//! * deterministic, seeded data generators reproducing the *shape* of the
//!   paper's three benchmarks ([`gen::tpch`], [`gen::job`], [`gen::xuetang`]),
//! * per-column statistics (equi-depth histograms, distinct counts and
//!   most-common values) consumed by the cardinality estimator
//!   ([`stats`]),
//! * value sampling used to build the RL action space ([`sample`]).
//!
//! Everything is deterministic given a seed, which the experiment harness
//! relies on for reproducibility.

pub mod bufpool;
pub mod cursor;
pub mod database;
pub mod dist;
pub mod gen;
pub mod heap;
pub mod paged;
pub mod pager;
pub mod sample;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;

pub use bufpool::{BufferPool, PoolStats};
pub use cursor::{ColCursor, DbRead, TableRead};
pub use database::Database;
pub use gen::{DatabaseSink, RowSink};
pub use paged::{save_database, PagedDb, PagedDbWriter, PagedTable, DEFAULT_POOL_BYTES};
pub use pager::{Pager, StorageError, PAGE_SIZE};
pub use schema::{ColumnDef, ForeignKey, TableSchema};
pub use stats::{ColumnStats, Histogram, TableStats};
pub use table::{Column, Table};
pub use value::{DataType, Value};
