//! Fixed-capacity buffer pool with clock (second-chance) eviction.
//!
//! Frames hold validated full pages as `Arc<Vec<u8>>`. A pin is simply an
//! outstanding `Arc` clone: a frame whose strong count is above one is in
//! use by a cursor or executor and cannot be evicted, and dropping the
//! `Arc` is the unpin — there is no manual pin/unpin bookkeeping to get
//! wrong. The clock hand sweeps frames, clearing reference bits and
//! skipping pinned frames; a frame that is unreferenced, unpinned and
//! clean is recycled, and a dirty one is written back (checksum
//! recomputed) first.
//!
//! All state sits behind one `Mutex`; hit/miss/eviction counters are
//! atomics so concurrent readers observe stats without the lock. This is
//! deliberately simple — the serving and training paths share a pool per
//! open database, and the lock covers microsecond-scale work (a hash
//! lookup on hits, one 8 KiB read on misses).

use crate::pager::{crc32, verify_page, Pager, StorageError, PAGE_SIZE};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Minimum number of frames: one being filled plus one pinned.
pub const MIN_FRAMES: usize = 2;

struct Frame {
    page_no: u32,
    buf: Arc<Vec<u8>>,
    referenced: bool,
    dirty: bool,
}

struct PoolInner {
    pager: Pager,
    frames: Vec<Frame>,
    /// page_no → frame index.
    map: HashMap<u32, usize>,
    hand: usize,
    capacity: usize,
}

/// Cumulative pool counters (monotonic).
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub write_backs: u64,
}

impl PoolStats {
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A clock-eviction buffer pool over one [`Pager`].
pub struct BufferPool {
    inner: Mutex<PoolInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    write_backs: AtomicU64,
}

impl BufferPool {
    /// Takes ownership of the pager; `frames` is the fixed frame budget
    /// (clamped to [`MIN_FRAMES`]).
    pub fn new(pager: Pager, frames: usize) -> BufferPool {
        BufferPool {
            inner: Mutex::new(PoolInner {
                pager,
                frames: Vec::new(),
                map: HashMap::new(),
                hand: 0,
                capacity: frames.max(MIN_FRAMES),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            write_backs: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.inner.lock().unwrap().capacity
    }

    pub fn page_count(&self) -> u32 {
        self.inner.lock().unwrap().pager.page_count()
    }

    /// Fetches a page, validating its checksum on fill. The returned
    /// `Arc` pins the frame until dropped.
    pub fn get(&self, page_no: u32) -> Result<Arc<Vec<u8>>, StorageError> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(&idx) = inner.map.get(&page_no) {
            inner.frames[idx].referenced = true;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(inner.frames[idx].buf.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let buf = inner.pager.read_page(page_no)?;
        verify_page(page_no, &buf)?;
        let buf = Arc::new(buf);
        self.install(&mut inner, page_no, buf.clone(), false)?;
        Ok(buf)
    }

    /// Mutates a page in place through the pool: loads the frame, applies
    /// `f` to the full page buffer, recomputes the checksum and marks the
    /// frame dirty. Fails if the frame is pinned elsewhere (a mutation
    /// under a live reader would tear its snapshot).
    pub fn with_page_mut<F: FnOnce(&mut [u8])>(
        &self,
        page_no: u32,
        f: F,
    ) -> Result<(), StorageError> {
        let mut inner = self.inner.lock().unwrap();
        let idx = match inner.map.get(&page_no) {
            Some(&idx) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                idx
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let buf = inner.pager.read_page(page_no)?;
                verify_page(page_no, &buf)?;
                self.install(&mut inner, page_no, Arc::new(buf), false)?
            }
        };
        let frame = &mut inner.frames[idx];
        let buf = Arc::get_mut(&mut frame.buf).ok_or_else(|| {
            StorageError::Corrupt(format!("page {page_no} is pinned; cannot mutate"))
        })?;
        f(buf);
        let crc = crc32(&buf[4..]);
        buf[0..4].copy_from_slice(&crc.to_le_bytes());
        frame.dirty = true;
        frame.referenced = true;
        Ok(())
    }

    /// Writes every dirty frame back to disk and syncs the file.
    pub fn flush(&self) -> Result<(), StorageError> {
        let mut inner = self.inner.lock().unwrap();
        for i in 0..inner.frames.len() {
            if inner.frames[i].dirty {
                let (no, buf) = {
                    let f = &inner.frames[i];
                    (f.page_no, f.buf.clone())
                };
                inner.pager.write_page_raw(no, &buf)?;
                inner.frames[i].dirty = false;
                self.write_backs.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.pager.sync()
    }

    /// Number of frames currently pinned by outstanding `Arc`s.
    pub fn pinned(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        inner
            .frames
            .iter()
            .filter(|f| Arc::strong_count(&f.buf) > 1)
            .count()
    }

    /// Frames currently resident.
    pub fn resident(&self) -> usize {
        self.inner.lock().unwrap().frames.len()
    }

    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            write_backs: self.write_backs.load(Ordering::Relaxed),
        }
    }

    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.write_backs.store(0, Ordering::Relaxed);
    }

    /// Places a filled frame, evicting via the clock if at capacity.
    /// Returns the frame index used.
    fn install(
        &self,
        inner: &mut PoolInner,
        page_no: u32,
        buf: Arc<Vec<u8>>,
        dirty: bool,
    ) -> Result<usize, StorageError> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        if inner.frames.len() < inner.capacity {
            let idx = inner.frames.len();
            inner.frames.push(Frame {
                page_no,
                buf,
                referenced: true,
                dirty,
            });
            inner.map.insert(page_no, idx);
            return Ok(idx);
        }
        let idx = self.find_victim(inner)?;
        let old = &inner.frames[idx];
        if old.dirty {
            let (no, old_buf) = (old.page_no, old.buf.clone());
            inner.pager.write_page_raw(no, &old_buf)?;
            self.write_backs.fetch_add(1, Ordering::Relaxed);
        }
        let old_no = inner.frames[idx].page_no;
        inner.map.remove(&old_no);
        inner.frames[idx] = Frame {
            page_no,
            buf,
            referenced: true,
            dirty,
        };
        inner.map.insert(page_no, idx);
        self.evictions.fetch_add(1, Ordering::Relaxed);
        Ok(idx)
    }

    /// Clock sweep: clear reference bits, skip pinned frames, pick the
    /// first unreferenced unpinned frame. Two full sweeps guarantee a
    /// victim unless every frame is pinned.
    fn find_victim(&self, inner: &mut PoolInner) -> Result<usize, StorageError> {
        let n = inner.frames.len();
        for _ in 0..2 * n {
            let i = inner.hand;
            inner.hand = (inner.hand + 1) % n;
            let frame = &mut inner.frames[i];
            if Arc::strong_count(&frame.buf) > 1 {
                continue; // pinned
            }
            if frame.referenced {
                frame.referenced = false;
                continue; // second chance
            }
            return Ok(i);
        }
        Err(StorageError::Corrupt(
            "buffer pool exhausted: every frame is pinned".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::PageType;
    use std::path::PathBuf;

    fn temp_db(tag: &str, pages: usize) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("sqlgen-bufpool-{tag}-{}.db", std::process::id()));
        let mut pager = Pager::create(&path).unwrap();
        for i in 0..pages {
            pager
                .append_page(PageType::Heap, format!("payload-{i}").as_bytes())
                .unwrap();
        }
        pager.write_header(0, 0).unwrap();
        pager.sync().unwrap();
        path
    }

    fn payload_str(buf: &[u8]) -> &str {
        let len = u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize;
        std::str::from_utf8(&buf[12..12 + len]).unwrap()
    }

    #[test]
    fn hits_misses_and_eviction_cycle() {
        let path = temp_db("evict", 8);
        let (pager, _) = Pager::open(&path).unwrap();
        let pool = BufferPool::new(pager, 2);
        // Touch pages 1..=8 with only 2 frames: all misses, evictions kick in.
        for i in 1..=8u32 {
            let buf = pool.get(i).unwrap();
            assert_eq!(payload_str(&buf), format!("payload-{}", i - 1));
        }
        let s = pool.stats();
        assert_eq!(s.misses, 8);
        assert_eq!(s.evictions, 6);
        // Re-read the resident page: a hit.
        let resident = pool.get(8).unwrap();
        assert_eq!(pool.stats().hits, 1);
        drop(resident);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pinned_frames_survive_eviction_pressure() {
        let path = temp_db("pin", 8);
        let (pager, _) = Pager::open(&path).unwrap();
        let pool = BufferPool::new(pager, 2);
        let pinned = pool.get(1).unwrap(); // hold the Arc: frame is pinned
        for i in 2..=8u32 {
            pool.get(i).unwrap();
        }
        // The pinned page must still be resident and byte-identical.
        assert_eq!(payload_str(&pinned), "payload-0");
        assert_eq!(pool.pinned(), 1);
        let again = pool.get(1).unwrap();
        assert!(
            Arc::ptr_eq(&pinned, &again),
            "pinned frame was not recycled"
        );
        drop((pinned, again));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn all_pinned_pool_reports_exhaustion() {
        let path = temp_db("full", 8);
        let (pager, _) = Pager::open(&path).unwrap();
        let pool = BufferPool::new(pager, 2);
        let _a = pool.get(1).unwrap();
        let _b = pool.get(2).unwrap();
        assert!(pool.get(3).is_err());
        drop((_a, _b));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dirty_pages_write_back_on_eviction_and_flush() {
        let path = temp_db("dirty", 8);
        {
            let (pager, _) = Pager::open(&path).unwrap();
            let pool = BufferPool::new(pager, 2);
            pool.with_page_mut(1, |page| {
                page[12..17].copy_from_slice(b"MUTAT");
            })
            .unwrap();
            // Force eviction of the dirty frame.
            for i in 2..=5u32 {
                pool.get(i).unwrap();
            }
            assert!(pool.stats().write_backs >= 1);
            pool.with_page_mut(2, |page| {
                page[12..17].copy_from_slice(b"FLUSH");
            })
            .unwrap();
            pool.flush().unwrap();
        }
        // Reopen: both mutations persisted with valid checksums.
        let (mut pager, _) = Pager::open(&path).unwrap();
        let p1 = pager.read_page_checked(1).unwrap();
        assert_eq!(&p1[12..17], b"MUTAT");
        let p2 = pager.read_page_checked(2).unwrap();
        assert_eq!(&p2[12..17], b"FLUSH");
        std::fs::remove_file(&path).ok();
    }
}
