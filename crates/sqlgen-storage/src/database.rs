//! The database catalog: a set of named tables plus FK-join metadata.

use crate::schema::{ForeignKey, TableSchema};
use crate::table::Table;
use crate::value::DataType;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A join edge derived from a foreign key, in either direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinEdge {
    pub left_table: String,
    pub left_column: String,
    pub right_table: String,
    pub right_column: String,
}

/// An in-memory database: the "environment" the RL agent interacts with.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    pub fn new() -> Self {
        Database::default()
    }

    pub fn add_table(&mut self, table: Table) {
        self.tables.insert(table.name().to_string(), table);
    }

    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    pub fn schema(&self, name: &str) -> Option<&TableSchema> {
        self.tables.get(name).map(|t| &t.schema)
    }

    /// Table names in deterministic (sorted) order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::row_count).sum()
    }

    /// Data type of `table.column`, if both exist.
    pub fn column_type(&self, table: &str, column: &str) -> Option<DataType> {
        self.schema(table)?.column(column).map(|c| c.dtype)
    }

    /// All FK-derived join edges involving `table`, in both directions.
    ///
    /// This implements the paper's rule-based "meaningful checking": joins
    /// are only permitted along declared PK-FK relationships.
    pub fn join_edges(&self, table: &str) -> Vec<JoinEdge> {
        let mut edges = Vec::new();
        // Outgoing FKs of `table`.
        if let Some(schema) = self.schema(table) {
            for fk in &schema.foreign_keys {
                if self.tables.contains_key(&fk.ref_table) {
                    edges.push(JoinEdge {
                        left_table: table.to_string(),
                        left_column: fk.column.clone(),
                        right_table: fk.ref_table.clone(),
                        right_column: fk.ref_column.clone(),
                    });
                }
            }
        }
        // Incoming FKs from other tables referencing `table`.
        for (name, t) in &self.tables {
            if name == table {
                continue;
            }
            for fk in &t.schema.foreign_keys {
                if fk.ref_table == table {
                    edges.push(JoinEdge {
                        left_table: table.to_string(),
                        left_column: fk.ref_column.clone(),
                        right_table: name.clone(),
                        right_column: fk.column.clone(),
                    });
                }
            }
        }
        edges
    }

    /// The FK edge connecting two specific tables, if any.
    pub fn join_edge_between(&self, a: &str, b: &str) -> Option<JoinEdge> {
        self.join_edges(a).into_iter().find(|e| e.right_table == b)
    }

    /// All foreign keys declared anywhere in the catalog.
    pub fn all_foreign_keys(&self) -> Vec<(&str, &ForeignKey)> {
        self.tables
            .values()
            .flat_map(|t| t.schema.foreign_keys.iter().map(move |fk| (t.name(), fk)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::Value;

    /// The Score/Student example database from Figure 1 of the paper.
    pub fn score_student() -> Database {
        let student = TableSchema::new("student")
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::categorical("name", DataType::Text));
        let score = TableSchema::new("score")
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_foreign_key("student", "id")
            .with_column(ColumnDef::categorical("course", DataType::Text))
            .with_column(ColumnDef::new("grade", DataType::Float));
        let mut db = Database::new();
        let mut st = Table::new(student);
        for (i, name) in ["ann", "bob", "eve"].iter().enumerate() {
            st.push_row(vec![Value::Int(i as i64), Value::Text(name.to_string())]);
        }
        let mut sc = Table::new(score);
        for i in 0..3i64 {
            sc.push_row(vec![
                Value::Int(i),
                Value::Text("math".into()),
                Value::Float(90.0 + i as f64),
            ]);
        }
        db.add_table(st);
        db.add_table(sc);
        db
    }

    #[test]
    fn join_edges_are_bidirectional() {
        let db = score_student();
        let from_score = db.join_edges("score");
        assert_eq!(from_score.len(), 1);
        assert_eq!(from_score[0].right_table, "student");
        let from_student = db.join_edges("student");
        assert_eq!(from_student.len(), 1);
        assert_eq!(from_student[0].right_table, "score");
        assert_eq!(from_student[0].left_column, "id");
    }

    #[test]
    fn edge_between() {
        let db = score_student();
        assert!(db.join_edge_between("score", "student").is_some());
        assert!(db.join_edge_between("student", "student").is_none());
    }

    #[test]
    fn catalog_lookups() {
        let db = score_student();
        assert_eq!(db.len(), 2);
        assert_eq!(db.table_names(), vec!["score", "student"]);
        assert_eq!(db.column_type("score", "grade"), Some(DataType::Float));
        assert_eq!(db.column_type("score", "missing"), None);
        assert_eq!(db.total_rows(), 6);
    }
}
