//! Random value distributions used by the benchmark data generators.
//!
//! Hand-rolled (rather than pulling in `rand_distr`) to stay within the
//! session's allowed dependency list. Real benchmark data is skewed, and the
//! cardinality estimator's histograms only earn their keep on skewed data,
//! so the generators lean on [`Zipf`] heavily.

use rand::Rng;

/// A Zipf(n, s) sampler over ranks `0..n` using inverse-CDF lookup.
///
/// Precomputes the CDF once; sampling is a binary search, O(log n).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// `n` ranks with exponent `s` (s = 0 is uniform; s ≈ 1 is classic Zipf).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for p in &mut cdf {
            *p /= total;
        }
        Zipf { cdf }
    }

    /// Samples a rank in `0..n`; rank 0 is the most frequent.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&p| p < u).min(self.cdf.len() - 1)
    }

    pub fn n(&self) -> usize {
        self.cdf.len()
    }
}

/// Uniform integer in `[lo, hi]` inclusive.
pub fn uniform_int<R: Rng + ?Sized>(rng: &mut R, lo: i64, hi: i64) -> i64 {
    rng.random_range(lo..=hi)
}

/// Uniform float in `[lo, hi)`.
pub fn uniform_float<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.random::<f64>()
}

/// A rough normal sample via the central-limit trick (12 uniforms),
/// clamped to `[lo, hi]`. Good enough for generating plausible benchmark
/// column skew; nothing downstream depends on exact normality.
pub fn clamped_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64, lo: f64, hi: f64) -> f64 {
    let z: f64 = (0..12).map(|_| rng.random::<f64>()).sum::<f64>() - 6.0;
    (mean + std * z).clamp(lo, hi)
}

/// Picks a random element of a slice (deterministic given the RNG stream).
pub fn choose<'a, R: Rng + ?Sized, T>(rng: &mut R, items: &'a [T]) -> &'a T {
    &items[rng.random_range(0..items.len())]
}

/// Generates a deterministic pseudo-word for text columns: `prefix_<rank>`.
pub fn tagged_word(prefix: &str, rank: usize) -> String {
    format!("{prefix}_{rank:04}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let z = Zipf::new(100, 1.1);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[90]);
        // Rank 0 of Zipf(1.1) should hold a sizeable share.
        assert!(counts[0] as f64 / 20_000.0 > 0.15);
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "non-uniform bucket: {c}");
        }
    }

    #[test]
    fn zipf_sample_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn clamped_normal_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = clamped_normal(&mut rng, 50.0, 30.0, 0.0, 100.0);
            assert!((0.0..=100.0).contains(&x));
        }
    }

    #[test]
    fn uniform_int_inclusive() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            let v = uniform_int(&mut rng, 1, 3);
            assert!((1..=3).contains(&v));
            saw_lo |= v == 1;
            saw_hi |= v == 3;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn determinism_given_seed() {
        let z = Zipf::new(50, 1.0);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
