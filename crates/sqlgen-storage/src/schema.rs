//! Table schemas, primary keys and foreign-key relationships.
//!
//! The FSM's semantic rules (paper §5: "two columns can join, only if they
//! have Primary-key-Foreign-key relations or user-specified join relations")
//! are driven by the [`ForeignKey`] edges declared here.

use crate::value::DataType;
use serde::{Deserialize, Serialize};

/// A column definition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnDef {
    pub name: String,
    pub dtype: DataType,
    /// Categorical columns have a small distinct-value domain; the action
    /// space enumerates *all* of their values instead of sampling `k`.
    pub categorical: bool,
}

impl ColumnDef {
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            dtype,
            categorical: false,
        }
    }

    pub fn categorical(name: impl Into<String>, dtype: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            dtype,
            categorical: true,
        }
    }
}

/// A foreign-key edge: `table.column -> ref_table.ref_column`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForeignKey {
    pub column: String,
    pub ref_table: String,
    pub ref_column: String,
}

/// Schema of a single relation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<ColumnDef>,
    /// Index into `columns` of the primary key, if any.
    pub primary_key: Option<usize>,
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableSchema {
    pub fn new(name: impl Into<String>) -> Self {
        TableSchema {
            name: name.into(),
            columns: Vec::new(),
            primary_key: None,
            foreign_keys: Vec::new(),
        }
    }

    /// Builder-style column append.
    pub fn with_column(mut self, col: ColumnDef) -> Self {
        self.columns.push(col);
        self
    }

    /// Marks the most recently added column as primary key.
    pub fn with_primary_key(mut self) -> Self {
        assert!(!self.columns.is_empty(), "no column to mark as PK");
        self.primary_key = Some(self.columns.len() - 1);
        self
    }

    /// Adds a foreign key on the most recently added column.
    pub fn with_foreign_key(
        mut self,
        ref_table: impl Into<String>,
        ref_column: impl Into<String>,
    ) -> Self {
        let column = self
            .columns
            .last()
            .expect("no column to attach FK to")
            .name
            .clone();
        self.foreign_keys.push(ForeignKey {
            column,
            ref_table: ref_table.into(),
            ref_column: ref_column.into(),
        });
        self
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.columns.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new("score")
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::new("student_id", DataType::Int))
            .with_foreign_key("student", "id")
            .with_column(ColumnDef::new("grade", DataType::Float))
    }

    #[test]
    fn builder_sets_pk_and_fk() {
        let s = schema();
        assert_eq!(s.primary_key, Some(0));
        assert_eq!(s.foreign_keys.len(), 1);
        assert_eq!(s.foreign_keys[0].column, "student_id");
        assert_eq!(s.foreign_keys[0].ref_table, "student");
    }

    #[test]
    fn column_lookup() {
        let s = schema();
        assert_eq!(s.column_index("grade"), Some(2));
        assert_eq!(s.column_index("missing"), None);
        assert_eq!(s.column("grade").unwrap().dtype, DataType::Float);
    }
}
