//! Value sampling for the RL action space.
//!
//! The paper (§4.1): "for each numerical attribute, we randomly sample `k`
//! values from the attribute before training and encode them to a one-hot
//! vector"; categorical columns contribute *all* their distinct values, and
//! string columns are sampled like numerical ones. The paper's default is
//! `k = 100` and §7.7 studies sensitivity to the sample ratio η.

use crate::cursor::{ColCursor, DbRead, TableRead};
use crate::table::Column;
use crate::value::{DataType, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Configuration for value sampling.
#[derive(Debug, Clone)]
pub struct SampleConfig {
    /// Number of values sampled per non-categorical column (paper: k = 100).
    pub k: usize,
    /// Categorical columns with at most this many distinct values contribute
    /// their full domain.
    pub categorical_limit: usize,
    pub seed: u64,
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig {
            k: 100,
            categorical_limit: 64,
            seed: 0x5eed,
        }
    }
}

/// Sampled values for one column.
#[derive(Debug, Clone)]
pub struct ColumnSample {
    pub table: String,
    pub column: String,
    /// Distinct sampled values, sorted for determinism.
    pub values: Vec<Value>,
}

/// Draws the per-column value samples that become `Value` tokens in the
/// action space. Deterministic given `cfg.seed`, and generic over the
/// storage backend: on the in-memory [`crate::Database`] the table
/// order, RNG streams and value accesses are identical to the historic
/// concrete implementation, so the samples are bit-identical.
pub fn sample_database<D: DbRead>(db: &D, cfg: &SampleConfig) -> Vec<ColumnSample> {
    let mut out = Vec::new();
    for name in db.table_names() {
        let table = db.read_table(name).expect("listed table exists");
        let schema = table.schema();
        for (ci, def) in schema.columns.iter().enumerate() {
            // Distinct-value pool, deterministic order.
            let mut rng =
                StdRng::seed_from_u64(cfg.seed ^ hash_name(&schema.name) ^ hash_name(&def.name));
            let values = if def.categorical {
                distinct_values_read(table, ci, cfg.categorical_limit)
            } else {
                sample_column_read(table, ci, cfg.k, &mut rng)
            };
            out.push(ColumnSample {
                table: schema.name.clone(),
                column: def.name.clone(),
                values,
            });
        }
    }
    out
}

fn hash_name(s: &str) -> u64 {
    // FNV-1a; stable across runs (unlike `DefaultHasher` which is seeded).
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// All distinct values of a column, up to `limit`, in sorted order.
pub fn distinct_values(col: &Column, limit: usize) -> Vec<Value> {
    match col {
        Column::Int(v) => {
            let mut s = v.clone();
            s.sort_unstable();
            s.dedup();
            s.truncate(limit);
            s.into_iter().map(Value::Int).collect()
        }
        Column::Float(v) => {
            // NaN used to panic the comparator; it is useless as a probe
            // value anyway (it compares equal to nothing), so drop it.
            let mut s: Vec<f64> = v.iter().copied().filter(|x| !x.is_nan()).collect();
            s.sort_by(f64::total_cmp);
            s.dedup();
            s.truncate(limit);
            s.into_iter().map(Value::Float).collect()
        }
        Column::Text(v) => {
            let mut s = v.clone();
            s.sort();
            s.dedup();
            s.truncate(limit);
            s.into_iter().map(Value::Text).collect()
        }
    }
}

/// Samples up to `k` *distinct* values uniformly from the column.
pub fn sample_column<R: Rng + ?Sized>(col: &Column, k: usize, rng: &mut R) -> Vec<Value> {
    let n = col.len();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    // Sample 4k row positions, deduplicate by value, keep first k after sort.
    let mut picked = Vec::with_capacity(4 * k);
    for _ in 0..(4 * k).min(4 * n) {
        picked.push(col.get(rng.random_range(0..n)));
    }
    dedup_values(&mut picked);
    picked.truncate(k);
    picked
}

/// [`sample_column`] through the backend-neutral [`TableRead`] trait:
/// identical RNG draws and row accesses, so identical output on the
/// in-memory backend.
pub fn sample_column_read<T: TableRead, R: Rng + ?Sized>(
    table: &T,
    col: usize,
    k: usize,
    rng: &mut R,
) -> Vec<Value> {
    let n = table.row_count();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let mut picked = Vec::with_capacity(4 * k);
    for _ in 0..(4 * k).min(4 * n) {
        picked.push(table.value(col, rng.random_range(0..n)));
    }
    dedup_values(&mut picked);
    picked.truncate(k);
    picked
}

/// [`distinct_values`] through [`TableRead`], in bounded memory: one
/// streaming pass keeping only the `limit` smallest distinct values seen
/// so far, which is exactly what sort + dedup + truncate produces. For
/// floats, `PartialEq`-equal values that differ under `total_cmp`
/// (`-0.0` vs `0.0`) keep the `total_cmp`-smaller representative, again
/// matching dedup-keep-first on a `total_cmp`-sorted vector.
pub fn distinct_values_read<T: TableRead>(table: &T, col: usize, limit: usize) -> Vec<Value> {
    if limit == 0 {
        return Vec::new();
    }
    let mut cursor = table.scan_column(col);
    match table.schema().columns[col].dtype {
        DataType::Int => {
            let mut set: BTreeSet<i64> = BTreeSet::new();
            while let Some(Value::Int(x)) = cursor.next_value() {
                set.insert(x);
                if set.len() > limit {
                    let max = *set.iter().next_back().unwrap();
                    set.remove(&max);
                }
            }
            set.into_iter().map(Value::Int).collect()
        }
        DataType::Text => {
            let mut set: BTreeSet<String> = BTreeSet::new();
            while let Some(Value::Text(s)) = cursor.next_value() {
                if set.len() == limit {
                    match set.iter().next_back() {
                        Some(max) if *max <= s => continue,
                        _ => {}
                    }
                }
                set.insert(s);
                if set.len() > limit {
                    let max = set.iter().next_back().unwrap().clone();
                    set.remove(&max);
                }
            }
            set.into_iter().map(Value::Text).collect()
        }
        DataType::Float => {
            let mut kept: Vec<f64> = Vec::new();
            while let Some(Value::Float(x)) = cursor.next_value() {
                if x.is_nan() {
                    continue;
                }
                let pos = kept.partition_point(|y| y.total_cmp(&x) == std::cmp::Ordering::Less);
                if pos < kept.len() && kept[pos] == x {
                    // Same SQL value; keep the total_cmp-smaller bits.
                    if x.total_cmp(&kept[pos]) == std::cmp::Ordering::Less {
                        kept[pos] = x;
                    }
                    continue;
                }
                if pos > 0 && kept[pos - 1] == x {
                    continue; // existing representative already sorts first
                }
                kept.insert(pos, x);
                if kept.len() > limit {
                    kept.pop();
                }
            }
            kept.into_iter().map(Value::Float).collect()
        }
    }
}

fn dedup_values(vals: &mut Vec<Value>) {
    // NaN cannot match any predicate, so it is dropped rather than offered
    // as a literal. (`dedup_by` relies on SQL equality, under which NaN is
    // never equal to itself.)
    vals.retain(|v| !matches!(v, Value::Float(f) if f.is_nan()));
    vals.sort_by(Value::total_cmp);
    vals.dedup_by(|a, b| a == b);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::schema::{ColumnDef, TableSchema};
    use crate::table::Table;
    use crate::value::DataType;

    fn db() -> Database {
        let schema = TableSchema::new("t")
            .with_column(ColumnDef::new("num", DataType::Int))
            .with_column(ColumnDef::categorical("cat", DataType::Text));
        let mut t = Table::new(schema);
        for i in 0..500i64 {
            t.push_row(vec![
                Value::Int(i),
                Value::Text(if i % 2 == 0 { "even" } else { "odd" }.into()),
            ]);
        }
        let mut db = Database::new();
        db.add_table(t);
        db
    }

    #[test]
    fn sampling_respects_k_and_categorical_domains() {
        let samples = sample_database(
            &db(),
            &SampleConfig {
                k: 10,
                ..Default::default()
            },
        );
        let num = samples.iter().find(|s| s.column == "num").unwrap();
        assert_eq!(num.values.len(), 10);
        let cat = samples.iter().find(|s| s.column == "cat").unwrap();
        assert_eq!(cat.values.len(), 2); // full domain
    }

    #[test]
    fn samples_are_distinct_and_from_the_column() {
        let samples = sample_database(
            &db(),
            &SampleConfig {
                k: 50,
                ..Default::default()
            },
        );
        let num = &samples.iter().find(|s| s.column == "num").unwrap().values;
        for w in num.windows(2) {
            assert_ne!(w[0], w[1]);
        }
        for v in num {
            match v {
                Value::Int(x) => assert!((0..500).contains(x)),
                other => panic!("unexpected value {other:?}"),
            }
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let cfg = SampleConfig::default();
        let a = sample_database(&db(), &cfg);
        let b = sample_database(&db(), &cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.values.len(), y.values.len());
            for (u, v) in x.values.iter().zip(&y.values) {
                assert_eq!(u, v);
            }
        }
    }

    #[test]
    fn empty_column_yields_no_samples() {
        let schema = TableSchema::new("e").with_column(ColumnDef::new("x", DataType::Int));
        let mut db = Database::new();
        db.add_table(Table::new(schema));
        let samples = sample_database(&db, &SampleConfig::default());
        assert!(samples[0].values.is_empty());
    }

    #[test]
    fn read_based_helpers_match_column_helpers() {
        let schema = TableSchema::new("t")
            .with_column(ColumnDef::new("i", DataType::Int))
            .with_column(ColumnDef::new("f", DataType::Float))
            .with_column(ColumnDef::new("s", DataType::Text));
        let mut t = Table::new(schema);
        for i in 0..200i64 {
            t.push_row(vec![
                Value::Int(i % 37),
                Value::Float(if i % 11 == 0 {
                    f64::NAN
                } else {
                    (i % 13) as f64
                }),
                Value::Text(format!("v{}", i % 23)),
            ]);
        }
        // -0.0 / 0.0 edge: dedup keeps the total_cmp-smaller representative.
        t.push_row(vec![
            Value::Int(1),
            Value::Float(-0.0),
            Value::Text("z".into()),
        ]);
        for (ci, limit) in [(0, 10), (1, 8), (2, 5), (0, 1000)] {
            let old = distinct_values(&t.columns[ci], limit);
            let new = distinct_values_read(&t, ci, limit);
            assert_eq!(old.len(), new.len());
            for (a, b) in old.iter().zip(&new) {
                match (a, b) {
                    (Value::Float(x), Value::Float(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                    _ => assert_eq!(a, b),
                }
            }
        }
        for ci in 0..3 {
            let mut r1 = StdRng::seed_from_u64(99);
            let mut r2 = StdRng::seed_from_u64(99);
            let old = sample_column(&t.columns[ci], 20, &mut r1);
            let new = sample_column_read(&t, ci, 20, &mut r2);
            assert_eq!(old, new);
        }
    }

    /// Regression: NaN float data used to panic `distinct_values` and let
    /// `dedup_values` collapse unrelated values through the Equal fallback.
    #[test]
    fn nan_floats_are_dropped_not_fatal() {
        let col = Column::Float(vec![2.5, f64::NAN, 1.5, 2.5, f64::NAN]);
        let vals = distinct_values(&col, 10);
        assert_eq!(vals, vec![Value::Float(1.5), Value::Float(2.5)]);

        // Before the retain, the NaN compared "Equal" to both neighbours and
        // the sort could interleave it between equal keys, breaking dedup.
        let mut vals = vec![
            Value::Float(2.0),
            Value::Float(f64::NAN),
            Value::Float(2.0),
            Value::Float(1.0),
        ];
        dedup_values(&mut vals);
        assert_eq!(vals, vec![Value::Float(1.0), Value::Float(2.0)]);
    }
}
