//! Typed columnar tables.

use crate::schema::TableSchema;
use crate::value::{DataType, Value};
use serde::{Deserialize, Serialize};

/// Column storage. Nulls are not stored: the benchmark generators produce
/// complete data, and the executor treats out-of-range row indices as a bug.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Column {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Text(Vec<String>),
}

impl Column {
    pub fn new(dtype: DataType) -> Self {
        match dtype {
            DataType::Int => Column::Int(Vec::new()),
            DataType::Float => Column::Float(Vec::new()),
            DataType::Text => Column::Text(Vec::new()),
        }
    }

    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Text(_) => DataType::Text,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Text(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row access as a [`Value`]. Panics if `row` is out of bounds.
    pub fn get(&self, row: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[row]),
            Column::Float(v) => Value::Float(v[row]),
            Column::Text(v) => Value::Text(v[row].clone()),
        }
    }

    /// Appends a value; panics on a type mismatch (schema violations are
    /// programming errors in the generators, not runtime conditions).
    pub fn push(&mut self, value: Value) {
        match (self, value) {
            (Column::Int(v), Value::Int(x)) => v.push(x),
            (Column::Float(v), Value::Float(x)) => v.push(x),
            (Column::Float(v), Value::Int(x)) => v.push(x as f64),
            (Column::Text(v), Value::Text(x)) => v.push(x),
            (col, val) => panic!(
                "type mismatch: column is {:?}, value is {:?}",
                col.data_type(),
                val
            ),
        }
    }
}

/// A relation: schema plus columnar data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    pub schema: TableSchema,
    pub columns: Vec<Column>,
}

impl Table {
    /// Creates an empty table with storage matching the schema.
    pub fn new(schema: TableSchema) -> Self {
        let columns = schema
            .columns
            .iter()
            .map(|c| Column::new(c.dtype))
            .collect();
        Table { schema, columns }
    }

    pub fn name(&self) -> &str {
        &self.schema.name
    }

    pub fn row_count(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Appends one row; the row must have one value per column.
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row arity mismatch for table {}",
            self.schema.name
        );
        for (col, val) in self.columns.iter_mut().zip(row) {
            col.push(val);
        }
    }

    pub fn column(&self, name: &str) -> Option<&Column> {
        self.schema.column_index(name).map(|i| &self.columns[i])
    }

    /// Materializes row `row` as a vector of values (test/debug helper).
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(row)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn table() -> Table {
        let schema = TableSchema::new("t")
            .with_column(ColumnDef::new("a", DataType::Int))
            .with_column(ColumnDef::new("b", DataType::Text));
        Table::new(schema)
    }

    #[test]
    fn push_and_read_rows() {
        let mut t = table();
        t.push_row(vec![Value::Int(1), Value::Text("x".into())]);
        t.push_row(vec![Value::Int(2), Value::Text("y".into())]);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.column("a").unwrap().get(1), Value::Int(2));
        assert_eq!(t.row(0)[1], Value::Text("x".into()));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = table();
        t.push_row(vec![Value::Int(1)]);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        let mut t = table();
        t.push_row(vec![Value::Text("no".into()), Value::Text("x".into())]);
    }

    #[test]
    fn int_coerces_into_float_column() {
        let schema = TableSchema::new("t").with_column(ColumnDef::new("f", DataType::Float));
        let mut t = Table::new(schema);
        t.push_row(vec![Value::Int(3)]);
        assert_eq!(t.column("f").unwrap().get(0), Value::Float(3.0));
    }
}
