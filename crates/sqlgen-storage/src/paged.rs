//! The disk-backed database: catalog, streaming writer, and read side.
//!
//! A paged database file (see [`crate::pager`] for the page format) is
//! written once, front to back, and read many times:
//!
//! * [`PagedDbWriter`] streams rows table-by-table into heap pages in
//!   bounded memory (one page buffer in flight), then serializes the
//!   catalog — every table's schema plus its page directory — as JSON
//!   into trailing catalog pages and points the header at it.
//! * [`PagedDb`] opens the file, parses the catalog, and serves reads
//!   through a shared [`BufferPool`]; it implements [`DbRead`] so the
//!   executor, sampler, vocabulary and estimator all work against it
//!   unchanged.
//!
//! Rows are addressed by their global row number within a table: the
//! catalog stores per-page row counts, and a prefix-sum binary search
//! maps `row → (page, slot)` without touching disk.

use crate::bufpool::{BufferPool, PoolStats};
use crate::cursor::{join_edges_from_schemas, ColCursor, DbRead, TableRead};
use crate::database::{Database, JoinEdge};
use crate::gen::RowSink;
use crate::heap::{decode_cell, decode_row, HeapPage, HeapSegment, HeapWriter};
use crate::pager::{PageType, Pager, StorageError, PAGE_PAYLOAD};
use crate::schema::TableSchema;
use crate::stats::{TableStats, DEFAULT_STATS_ROW_CAP};
use crate::table::Table;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Default buffer-pool budget when callers do not choose one: 4 MiB.
pub const DEFAULT_POOL_BYTES: usize = 4 << 20;

#[derive(Debug, Serialize, Deserialize)]
struct TableCatalog {
    schema: TableSchema,
    pages: Vec<u32>,
    page_rows: Vec<u32>,
    row_count: u64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Catalog {
    tables: Vec<TableCatalog>,
}

/// Streams a database to disk table-by-table in bounded memory.
pub struct PagedDbWriter {
    pager: Pager,
    current: Option<HeapWriter>,
    done: Vec<HeapSegment>,
}

impl PagedDbWriter {
    pub fn create(path: &Path) -> Result<PagedDbWriter, StorageError> {
        Ok(PagedDbWriter {
            pager: Pager::create(path)?,
            current: None,
            done: Vec::new(),
        })
    }

    /// Starts a new table; the previous one (if any) is finalized first.
    pub fn begin_table(&mut self, schema: TableSchema) -> Result<(), StorageError> {
        self.finish_table()?;
        self.current = Some(HeapWriter::new(schema));
        Ok(())
    }

    pub fn push_row(&mut self, row: &[Value]) -> Result<(), StorageError> {
        let w = self.current.as_mut().expect("push_row before begin_table");
        w.push_row(&mut self.pager, row)
    }

    /// Flushes the in-progress table's trailing page.
    pub fn finish_table(&mut self) -> Result<(), StorageError> {
        if let Some(w) = self.current.take() {
            self.done.push(w.finish(&mut self.pager)?);
        }
        Ok(())
    }

    /// Writes the catalog and header, syncs, and closes the file.
    pub fn finish(mut self) -> Result<(), StorageError> {
        self.finish_table()?;
        // Sorted catalog order mirrors `Database`'s BTreeMap iteration.
        self.done.sort_by(|a, b| a.schema.name.cmp(&b.schema.name));
        let catalog = Catalog {
            tables: self
                .done
                .into_iter()
                .map(|seg| TableCatalog {
                    schema: seg.schema,
                    pages: seg.pages,
                    page_rows: seg.page_rows,
                    row_count: seg.row_count,
                })
                .collect(),
        };
        let bytes = serde_json::to_string(&catalog)
            .map_err(|e| StorageError::Corrupt(format!("catalog serialize: {e:?}")))?
            .into_bytes();
        let mut first_page = None;
        for chunk in bytes.chunks(PAGE_PAYLOAD) {
            let no = self.pager.append_page(PageType::Catalog, chunk)?;
            first_page.get_or_insert(no);
        }
        let first = match first_page {
            Some(no) => no,
            // Empty catalog still needs a page to point at.
            None => self.pager.append_page(PageType::Catalog, b"")?,
        };
        self.pager.write_header(first, bytes.len() as u64)?;
        self.pager.sync()
    }
}

impl RowSink for PagedDbWriter {
    type Error = StorageError;

    fn begin_table(&mut self, schema: TableSchema) -> Result<(), StorageError> {
        PagedDbWriter::begin_table(self, schema)
    }

    fn push_row(&mut self, row: Vec<Value>) -> Result<(), StorageError> {
        PagedDbWriter::push_row(self, &row)
    }

    fn finish_table(&mut self) -> Result<(), StorageError> {
        PagedDbWriter::finish_table(self)
    }
}

/// One table of an open paged database.
pub struct PagedTable {
    pool: Arc<BufferPool>,
    schema: TableSchema,
    pages: Vec<u32>,
    page_rows: Vec<u32>,
    /// `prefix[i]` = rows on pages before page `i`; `prefix.len() ==
    /// pages.len() + 1` so the last entry is the row count.
    prefix: Vec<u64>,
    row_count: u64,
}

impl PagedTable {
    /// Maps a global row number to `(page index, slot)`.
    fn locate(&self, row: usize) -> (usize, usize) {
        let row = row as u64;
        assert!(
            row < self.row_count,
            "row {row} out of range ({})",
            self.row_count
        );
        let page_idx = self.prefix.partition_point(|&p| p <= row) - 1;
        (page_idx, (row - self.prefix[page_idx]) as usize)
    }

    /// Fallible cell read (I/O or corruption surface as errors).
    pub fn try_value(&self, col: usize, row: usize) -> Result<Value, StorageError> {
        let (page_idx, slot) = self.locate(row);
        let buf = self.pool.get(self.pages[page_idx])?;
        let page = HeapPage::parse(&buf)?;
        Ok(decode_cell(&self.schema, page.row_bytes(slot), col))
    }

    /// Fallible full-row read.
    pub fn try_row(&self, row: usize) -> Result<Vec<Value>, StorageError> {
        let (page_idx, slot) = self.locate(row);
        let buf = self.pool.get(self.pages[page_idx])?;
        let page = HeapPage::parse(&buf)?;
        Ok(decode_row(&self.schema, page.row_bytes(slot)))
    }
}

impl TableRead for PagedTable {
    type Cursor<'c> = PagedColCursor<'c>;

    fn schema(&self) -> &TableSchema {
        &self.schema
    }

    fn row_count(&self) -> usize {
        self.row_count as usize
    }

    fn value(&self, col: usize, row: usize) -> Value {
        self.try_value(col, row).unwrap_or_else(|e| {
            panic!(
                "paged read failed for {}.{col}@{row}: {e}",
                self.schema.name
            )
        })
    }

    fn scan_column(&self, col: usize) -> PagedColCursor<'_> {
        PagedColCursor {
            table: self,
            col,
            page_idx: 0,
            slot: 0,
            page: None,
        }
    }
}

/// Sequential column scan over heap pages; pins one page at a time (the
/// held `Arc` is the pin), so a full-table scan through a tiny pool
/// works and evicts cleanly behind itself.
pub struct PagedColCursor<'t> {
    table: &'t PagedTable,
    col: usize,
    page_idx: usize,
    slot: usize,
    page: Option<Arc<Vec<u8>>>,
}

impl ColCursor for PagedColCursor<'_> {
    fn next_value(&mut self) -> Option<Value> {
        loop {
            if self.page_idx >= self.table.pages.len() {
                return None;
            }
            let rows = self.table.page_rows[self.page_idx] as usize;
            if self.slot >= rows {
                self.page = None;
                self.page_idx += 1;
                self.slot = 0;
                continue;
            }
            if self.page.is_none() {
                let buf = self
                    .table
                    .pool
                    .get(self.table.pages[self.page_idx])
                    .unwrap_or_else(|e| {
                        panic!("paged scan failed for {}: {e}", self.table.schema.name)
                    });
                self.page = Some(buf);
            }
            let buf = self.page.as_ref().unwrap();
            let page = HeapPage::parse(buf).unwrap_or_else(|e| {
                panic!("paged scan failed for {}: {e}", self.table.schema.name)
            });
            let v = decode_cell(&self.table.schema, page.row_bytes(self.slot), self.col);
            self.slot += 1;
            return Some(v);
        }
    }
}

/// An open paged database: catalog + shared buffer pool.
pub struct PagedDb {
    path: PathBuf,
    pool: Arc<BufferPool>,
    tables: BTreeMap<String, PagedTable>,
}

impl PagedDb {
    /// Opens a database file with a buffer pool of `pool_bytes` (frame
    /// count = `pool_bytes / PAGE_SIZE`, clamped to the pool minimum).
    pub fn open(path: &Path, pool_bytes: usize) -> Result<PagedDb, StorageError> {
        let (mut pager, header) = Pager::open(path)?;
        // Read catalog pages through the raw pager (checksum-verified);
        // they are parsed once and never needed again.
        let mut bytes = Vec::with_capacity(header.catalog_bytes as usize);
        let mut page_no = header.catalog_page;
        while (bytes.len() as u64) < header.catalog_bytes {
            let page = pager.read_page_checked(page_no)?;
            let len = u32::from_le_bytes(page[8..12].try_into().unwrap()) as usize;
            bytes.extend_from_slice(
                &page[crate::pager::PAGE_HEADER..crate::pager::PAGE_HEADER + len],
            );
            page_no += 1;
        }
        bytes.truncate(header.catalog_bytes as usize);
        let text = String::from_utf8(bytes)
            .map_err(|e| StorageError::Corrupt(format!("catalog not utf-8: {e}")))?;
        let catalog: Catalog = serde_json::from_str(&text)
            .map_err(|e| StorageError::Corrupt(format!("catalog parse: {e:?}")))?;
        let frames = pool_bytes / crate::pager::PAGE_SIZE;
        let pool = Arc::new(BufferPool::new(pager, frames));
        let mut tables = BTreeMap::new();
        for t in catalog.tables {
            let mut prefix = Vec::with_capacity(t.pages.len() + 1);
            let mut acc = 0u64;
            prefix.push(0);
            for &r in &t.page_rows {
                acc += r as u64;
                prefix.push(acc);
            }
            if acc != t.row_count || t.pages.len() != t.page_rows.len() {
                return Err(StorageError::Corrupt(format!(
                    "catalog row accounting mismatch for table {}",
                    t.schema.name
                )));
            }
            tables.insert(
                t.schema.name.clone(),
                PagedTable {
                    pool: pool.clone(),
                    schema: t.schema,
                    pages: t.pages,
                    page_rows: t.page_rows,
                    prefix,
                    row_count: t.row_count,
                },
            );
        }
        Ok(PagedDb {
            path: path.to_path_buf(),
            pool,
            tables,
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    pub fn reset_pool_stats(&self) {
        self.pool.reset_stats()
    }

    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> u64 {
        self.tables.values().map(|t| t.row_count).sum()
    }

    /// Walks every heap page of every table through the pool, verifying
    /// checksums (the pool validates on fill). Detects torn pages.
    pub fn verify(&self) -> Result<(), StorageError> {
        for t in self.tables.values() {
            for &p in &t.pages {
                let buf = self.pool.get(p)?;
                HeapPage::parse(&buf)?;
            }
        }
        Ok(())
    }

    /// Per-table statistics through the read interface, for estimator
    /// construction without materializing tables (columns over
    /// [`DEFAULT_STATS_ROW_CAP`] rows are stride-sampled).
    pub fn table_stats(&self) -> Vec<TableStats> {
        self.tables
            .values()
            .map(|t| TableStats::build_read(t, DEFAULT_STATS_ROW_CAP))
            .collect()
    }

    /// Materializes the whole database in memory (serving cold-start:
    /// load once from disk instead of regenerating from seed).
    pub fn load_database(&self) -> Result<Database, StorageError> {
        let mut db = Database::new();
        for t in self.tables.values() {
            let mut table = Table::new(t.schema.clone());
            for (pi, &page_no) in t.pages.iter().enumerate() {
                let buf = self.pool.get(page_no)?;
                let page = HeapPage::parse(&buf)?;
                for slot in 0..t.page_rows[pi] as usize {
                    table.push_row(decode_row(&t.schema, page.row_bytes(slot)));
                }
            }
            db.add_table(table);
        }
        Ok(db)
    }
}

impl DbRead for PagedDb {
    type Table = PagedTable;

    fn read_table(&self, name: &str) -> Option<&PagedTable> {
        self.tables.get(name)
    }

    fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    fn join_edges(&self, table: &str) -> Vec<JoinEdge> {
        join_edges_from_schemas(self.tables.values().map(|t| &t.schema), table)
    }
}

/// Persists an in-memory [`Database`] as a paged image.
pub fn save_database(db: &Database, path: &Path) -> Result<(), StorageError> {
    let mut w = PagedDbWriter::create(path)?;
    for name in db.table_names() {
        let table = db.table(name).expect("listed table exists");
        PagedDbWriter::begin_table(&mut w, table.schema.clone())?;
        let mut row = Vec::with_capacity(table.schema.columns.len());
        for r in 0..table.row_count() {
            row.clear();
            for c in &table.columns {
                row.push(c.get(r));
            }
            PagedDbWriter::push_row(&mut w, &row)?;
        }
        PagedDbWriter::finish_table(&mut w)?;
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::DataType;
    use std::sync::atomic::{AtomicU64, Ordering};

    static UNIQ: AtomicU64 = AtomicU64::new(0);

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "sqlgen-paged-{tag}-{}-{}.db",
            std::process::id(),
            UNIQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn sample_db(rows: i64) -> Database {
        let a = TableSchema::new("a")
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_primary_key()
            .with_column(ColumnDef::new("x", DataType::Float))
            .with_column(ColumnDef::categorical("tag", DataType::Text));
        let b = TableSchema::new("b")
            .with_column(ColumnDef::new("a_id", DataType::Int))
            .with_foreign_key("a", "id")
            .with_column(ColumnDef::new("y", DataType::Int));
        let mut db = Database::new();
        let mut ta = Table::new(a);
        for i in 0..rows {
            ta.push_row(vec![
                Value::Int(i),
                Value::Float(i as f64 * 0.25),
                Value::Text(format!("t{}", i % 7)),
            ]);
        }
        let mut tb = Table::new(b);
        for i in 0..rows * 2 {
            tb.push_row(vec![Value::Int(i % rows), Value::Int(i * 3)]);
        }
        db.add_table(ta);
        db.add_table(tb);
        db
    }

    #[test]
    fn save_open_roundtrip_is_bitwise_identical() {
        let db = sample_db(3000);
        let path = temp_path("roundtrip");
        save_database(&db, &path).unwrap();
        // Tiny pool (minimum frames) to force constant eviction.
        let paged = PagedDb::open(&path, 0).unwrap();
        assert_eq!(paged.table_names(), db.table_names());
        assert_eq!(paged.total_rows() as usize, db.total_rows());
        for name in db.table_names() {
            let mem = db.table(name).unwrap();
            let disk = paged.read_table(name).unwrap();
            assert_eq!(TableRead::row_count(disk), mem.row_count());
            assert_eq!(format!("{:?}", disk.schema()), format!("{:?}", mem.schema));
            for r in 0..mem.row_count() {
                for c in 0..mem.schema.columns.len() {
                    let a = mem.columns[c].get(r);
                    let b = disk.value(c, r);
                    match (&a, &b) {
                        (Value::Float(x), Value::Float(y)) => {
                            assert_eq!(x.to_bits(), y.to_bits())
                        }
                        _ => assert_eq!(a, b),
                    }
                }
            }
        }
        let stats = paged.pool_stats();
        assert!(stats.evictions > 0, "tiny pool must evict");
        assert!(paged.verify().is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cursor_scan_matches_random_access() {
        let db = sample_db(500);
        let path = temp_path("cursor");
        save_database(&db, &path).unwrap();
        let paged = PagedDb::open(&path, DEFAULT_POOL_BYTES).unwrap();
        let t = paged.read_table("b").unwrap();
        let mut cur = t.scan_column(1);
        let mut n = 0usize;
        while let Some(v) = cur.next_value() {
            assert_eq!(v, t.value(1, n));
            n += 1;
        }
        assert_eq!(n, TableRead::row_count(t));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn join_edges_match_in_memory() {
        let db = sample_db(50);
        let path = temp_path("edges");
        save_database(&db, &path).unwrap();
        let paged = PagedDb::open(&path, DEFAULT_POOL_BYTES).unwrap();
        for t in ["a", "b"] {
            assert_eq!(paged.join_edges(t), db.join_edges(t));
            assert_eq!(
                paged.join_edge_between(t, "a"),
                db.join_edge_between(t, "a")
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_database_reconstructs_identical_image() {
        let db = sample_db(800);
        let path = temp_path("load");
        save_database(&db, &path).unwrap();
        let paged = PagedDb::open(&path, DEFAULT_POOL_BYTES).unwrap();
        let loaded = paged.load_database().unwrap();
        assert_eq!(format!("{db:?}"), format!("{loaded:?}"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn table_stats_match_in_memory_build() {
        let db = sample_db(1200);
        let path = temp_path("stats");
        save_database(&db, &path).unwrap();
        let paged = PagedDb::open(&path, DEFAULT_POOL_BYTES).unwrap();
        let disk_stats = paged.table_stats();
        let mem_stats: Vec<TableStats> = db.tables().map(TableStats::build).collect();
        assert_eq!(
            format!("{disk_stats:?}"),
            format!("{mem_stats:?}"),
            "stats under the row cap must be bit-identical"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_heap_page_fails_verify() {
        use std::io::{Seek, SeekFrom, Write};
        let db = sample_db(2000);
        let path = temp_path("corrupt");
        save_database(&db, &path).unwrap();
        {
            let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            // Page 1 is the first heap page; flip bytes mid-payload.
            f.seek(SeekFrom::Start(crate::pager::PAGE_SIZE as u64 + 512))
                .unwrap();
            f.write_all(&[0x5a; 16]).unwrap();
        }
        let paged = PagedDb::open(&path, DEFAULT_POOL_BYTES).unwrap();
        assert!(matches!(paged.verify(), Err(StorageError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }
}
