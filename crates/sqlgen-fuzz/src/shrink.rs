//! Greedy shrinking of failing statements to minimal reproductions.
//!
//! Given a statement and a "still fails" closure, repeatedly try structural
//! reductions — drop clauses, replace predicates with their subtrees, drop
//! the last join, zero out literals — and keep any candidate that is still
//! valid for the database *and* still fails. Validity is re-checked because
//! a reduction can break well-formedness (e.g. dropping `GROUP BY` under a
//! mixed select list), which would change what the failure means.

use sqlgen_engine::{render, validate, Predicate, Rhs, SelectQuery, Statement};
use sqlgen_storage::{Database, Value};

/// Upper bound on candidate evaluations per shrink.
pub const DEFAULT_BUDGET: u32 = 200;

/// Shrinks `stmt` while `still_fails` holds. Returns the smallest failing
/// statement found (possibly the input itself).
pub fn shrink_statement(
    db: &Database,
    stmt: &Statement,
    budget: u32,
    still_fails: &mut dyn FnMut(&Statement) -> bool,
) -> Statement {
    let mut best = stmt.clone();
    let mut best_size = render(&best).len();
    let mut budget = budget;
    loop {
        let mut improved = false;
        for cand in candidates(&best) {
            if budget == 0 {
                return best;
            }
            budget -= 1;
            let size = render(&cand).len();
            if size >= best_size {
                continue;
            }
            if validate(db, &cand).is_ok() && still_fails(&cand) {
                best = cand;
                best_size = size;
                improved = true;
                break; // restart from the smaller statement
            }
        }
        if !improved {
            return best;
        }
    }
}

fn candidates(stmt: &Statement) -> Vec<Statement> {
    match stmt {
        Statement::Select(q) => select_candidates(q)
            .into_iter()
            .map(Statement::Select)
            .collect(),
        Statement::Insert(_) => Vec::new(),
        Statement::Update(u) => {
            let mut out = Vec::new();
            for p in pred_candidates(&u.predicate) {
                let mut c = u.clone();
                c.predicate = p;
                out.push(Statement::Update(c));
            }
            if u.sets.len() > 1 {
                let mut c = u.clone();
                c.sets.truncate(1);
                out.push(Statement::Update(c));
            }
            out
        }
        Statement::Delete(d) => pred_candidates(&d.predicate)
            .into_iter()
            .map(|p| {
                let mut c = d.clone();
                c.predicate = p;
                Statement::Delete(c)
            })
            .collect(),
    }
}

fn select_candidates(q: &SelectQuery) -> Vec<SelectQuery> {
    let mut out = Vec::new();
    let mut push = |f: &dyn Fn(&mut SelectQuery)| {
        let mut c = q.clone();
        f(&mut c);
        out.push(c);
    };
    if !q.order_by.is_empty() {
        push(&|c| c.order_by.clear());
    }
    if q.having.is_some() {
        push(&|c| c.having = None);
    }
    if !q.group_by.is_empty() {
        push(&|c| {
            c.group_by.clear();
            c.having = None;
        });
    }
    if q.select.len() > 1 {
        push(&|c| c.select.truncate(1));
    }
    if !q.from.joins.is_empty() {
        // References into the dropped table make the candidate invalid;
        // the validity re-check filters those out.
        push(&|c| {
            c.from.joins.pop();
        });
    }
    for p in pred_candidates(&q.predicate) {
        let mut c = q.clone();
        c.predicate = p;
        out.push(c);
    }
    out
}

/// `None` plus every direct subtree plus a literal-zeroing pass.
fn pred_candidates(p: &Option<Predicate>) -> Vec<Option<Predicate>> {
    let Some(p) = p else { return Vec::new() };
    let mut out = vec![None];
    match p {
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            out.push(Some((**a).clone()));
            out.push(Some((**b).clone()));
        }
        Predicate::Not(inner) => out.push(Some((**inner).clone())),
        _ => {}
    }
    let zeroed = zero_literals(p);
    if zeroed != *p {
        out.push(Some(zeroed));
    }
    out
}

fn zero_literals(p: &Predicate) -> Predicate {
    match p {
        Predicate::Cmp { col, op, rhs } => Predicate::Cmp {
            col: col.clone(),
            op: *op,
            rhs: match rhs {
                Rhs::Value(v) => Rhs::Value(match v {
                    Value::Int(_) => Value::Int(0),
                    Value::Float(_) => Value::Float(0.0),
                    Value::Text(_) => Value::Text(String::new()),
                    Value::Null => Value::Null,
                }),
                sub => sub.clone(),
            },
        },
        Predicate::Like { col, .. } => Predicate::Like {
            col: col.clone(),
            pattern: "%".into(),
        },
        Predicate::Not(inner) => Predicate::Not(Box::new(zero_literals(inner))),
        Predicate::And(a, b) => {
            Predicate::And(Box::new(zero_literals(a)), Box::new(zero_literals(b)))
        }
        Predicate::Or(a, b) => {
            Predicate::Or(Box::new(zero_literals(a)), Box::new(zero_literals(b)))
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlgen_engine::parse;
    use sqlgen_storage::{ColumnDef, DataType, Table, TableSchema};

    fn fixture() -> Database {
        let mut t = Table::new(
            TableSchema::new("student")
                .with_column(ColumnDef::new("id", DataType::Int))
                .with_primary_key()
                .with_column(ColumnDef::new("name", DataType::Text)),
        );
        for (i, name) in ["ann", "bob", "eve"].iter().enumerate() {
            t.push_row(vec![Value::Int(i as i64), Value::Text(name.to_string())]);
        }
        let mut db = Database::new();
        db.add_table(t);
        db
    }

    /// Shrinking a query that "fails" whenever it contains a LIKE keeps the
    /// LIKE but strips every other clause.
    #[test]
    fn shrinks_to_minimal_failing_statement() {
        let db = fixture();
        let sql = "SELECT student.name FROM student \
                   WHERE (student.name LIKE '%a%' OR student.id > 3) AND student.id < 9 \
                   ORDER BY student.name";
        let stmt = parse(sql).unwrap();
        let shrunk = shrink_statement(&db, &stmt, DEFAULT_BUDGET, &mut |s| {
            render(s).contains("LIKE")
        });
        let out = render(&shrunk);
        assert!(out.contains("LIKE"), "{out}");
        assert!(!out.contains("ORDER BY"), "{out}");
        assert!(!out.contains("AND"), "{out}");
        assert!(out.len() < sql.len(), "{out}");
        assert!(validate(&db, &shrunk).is_ok());
    }
}
