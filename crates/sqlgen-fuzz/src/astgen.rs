//! Schema-aware random statement generation.
//!
//! Unlike the FSM rollouts (which only emit what the masks allow), this
//! generator builds ASTs directly from the catalog, so it can reach corners
//! of the grammar the action space never samples: hostile literals, deep
//! predicate trees, `SELECT *`, aggregate subqueries and DML. Every
//! statement it produces is valid by construction under the rules in
//! `sqlgen_engine::validate` — the invariant checks assert as much, so a
//! generator bug shows up as a fuzz failure rather than silent noise.

use crate::dbgen::{grid_float, HOSTILE_TEXTS};
use rand::rngs::StdRng;
use rand::Rng;
use sqlgen_engine::{
    AggFunc, CmpOp, ColRef, DeleteStmt, FromClause, HavingClause, InsertSource, InsertStmt, Join,
    OrderBy, Predicate, Rhs, SelectItem, SelectQuery, Statement, UpdateStmt,
};
use sqlgen_storage::{DataType, Database, Value};

/// Knobs for statement generation.
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Restrict literals to values whose SQL text re-parses to the identical
    /// AST (no `NaN`, floats on the quarter grid). Required by the
    /// round-trip family; irrelevant when statements are executed directly.
    pub parseable_literals: bool,
    pub max_joins: usize,
    pub allow_subqueries: bool,
    /// Emit only `SELECT` (the estimator family wants monotonicity checks,
    /// which are defined on queries).
    pub select_only: bool,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            parseable_literals: false,
            max_joins: 2,
            allow_subqueries: true,
            select_only: false,
        }
    }
}

/// Generates one random statement, valid for `db` by construction.
pub fn random_statement(db: &Database, rng: &mut StdRng, opts: &GenOptions) -> Statement {
    let roll = if opts.select_only {
        0
    } else {
        rng.random_range(0..10)
    };
    match roll {
        7 => Statement::Insert(random_insert(db, rng, opts)),
        8 => Statement::Update(random_update(db, rng, opts)),
        9 => Statement::Delete(random_delete(db, rng, opts)),
        _ => Statement::Select(random_select(db, rng, opts, 0)),
    }
}

/// Generates one random `SELECT`. `depth` > 0 disables further subqueries.
pub fn random_select(
    db: &Database,
    rng: &mut StdRng,
    opts: &GenOptions,
    depth: usize,
) -> SelectQuery {
    let base = random_table(db, rng);
    let mut scope = vec![base.clone()];
    let mut joins = Vec::new();
    for _ in 0..rng.random_range(0..=opts.max_joins) {
        let left = scope[rng.random_range(0..scope.len())].clone();
        let edges: Vec<_> = db
            .join_edges(&left)
            .into_iter()
            .filter(|e| !scope.contains(&e.right_table))
            .collect();
        if edges.is_empty() {
            continue;
        }
        let e = &edges[rng.random_range(0..edges.len())];
        joins.push(Join {
            table: e.right_table.clone(),
            left: ColRef::new(&e.left_table, &e.left_column),
            right: ColRef::new(&e.right_table, &e.right_column),
        });
        scope.push(e.right_table.clone());
    }

    let (select, group_by) = random_projection(db, &scope, rng);

    let having = if !group_by.is_empty() && rng.random_range(0..10) < 3 {
        Some(random_having(db, &scope, rng, opts, depth))
    } else {
        None
    };

    let predicate = if rng.random_range(0..100) < 65 {
        Some(random_pred(db, &scope, rng, opts, depth, 2))
    } else {
        None
    };

    let plain: Vec<ColRef> = select
        .iter()
        .filter_map(|i| match i {
            SelectItem::Column(c) => Some(c.clone()),
            SelectItem::Agg(..) => None,
        })
        .collect();
    let order_by = if !plain.is_empty() && rng.random_range(0..10) < 3 {
        (0..rng.random_range(1..=2))
            .map(|_| OrderBy {
                col: plain[rng.random_range(0..plain.len())].clone(),
                desc: rng.random_range(0..2) == 0,
            })
            .collect()
    } else {
        Vec::new()
    };

    SelectQuery {
        from: FromClause { base, joins },
        select,
        predicate,
        group_by,
        having,
        order_by,
    }
}

fn random_projection(
    db: &Database,
    scope: &[String],
    rng: &mut StdRng,
) -> (Vec<SelectItem>, Vec<ColRef>) {
    match rng.random_range(0..100) {
        // Plain column list, occasionally SELECT *.
        r if r < 55 => {
            if rng.random_range(0..10) == 0 {
                (Vec::new(), Vec::new())
            } else {
                let items = (0..rng.random_range(1..=3))
                    .map(|_| SelectItem::Column(random_col(db, scope, rng).0))
                    .collect();
                (items, Vec::new())
            }
        }
        // GROUP BY: plain items must be drawn from the group keys.
        r if r < 80 => {
            let mut group_by: Vec<ColRef> = Vec::new();
            for _ in 0..rng.random_range(1..=2) {
                let c = random_col(db, scope, rng).0;
                if !group_by.contains(&c) {
                    group_by.push(c);
                }
            }
            let mut items = Vec::new();
            for g in &group_by {
                if rng.random_range(0..10) < 7 {
                    items.push(SelectItem::Column(g.clone()));
                }
            }
            for _ in 0..rng.random_range(0..=2) {
                items.push(random_agg_item(db, scope, rng));
            }
            if items.is_empty() {
                items.push(SelectItem::Column(group_by[0].clone()));
            }
            (items, group_by)
        }
        // Plain aggregate: one output row, no grouping.
        _ => {
            let items = (0..rng.random_range(1..=2))
                .map(|_| random_agg_item(db, scope, rng))
                .collect();
            (items, Vec::new())
        }
    }
}

fn random_agg_item(db: &Database, scope: &[String], rng: &mut StdRng) -> SelectItem {
    let (f, col) = random_agg(db, scope, rng);
    SelectItem::Agg(f, col)
}

/// An aggregate whose column satisfies the numeric requirement.
fn random_agg(db: &Database, scope: &[String], rng: &mut StdRng) -> (AggFunc, ColRef) {
    let f = AggFunc::ALL[rng.random_range(0..AggFunc::ALL.len())];
    if !f.requires_numeric() {
        return (f, random_col(db, scope, rng).0);
    }
    match random_numeric_col(db, scope, rng) {
        Some(col) => (f, col),
        None => (AggFunc::Count, random_col(db, scope, rng).0),
    }
}

fn random_having(
    db: &Database,
    scope: &[String],
    rng: &mut StdRng,
    opts: &GenOptions,
    depth: usize,
) -> HavingClause {
    let (agg, col) = random_agg(db, scope, rng);
    let op = random_op(rng);
    let rhs = if opts.allow_subqueries && depth == 0 && rng.random_range(0..4) == 0 {
        Rhs::Subquery(Box::new(scalar_subquery(db, rng, opts)))
    } else {
        Rhs::Value(numeric_literal(rng, opts))
    };
    HavingClause { agg, col, op, rhs }
}

fn random_pred(
    db: &Database,
    scope: &[String],
    rng: &mut StdRng,
    opts: &GenOptions,
    depth: usize,
    levels: usize,
) -> Predicate {
    if levels == 0 {
        return random_atom(db, scope, rng, opts, depth);
    }
    match rng.random_range(0..10) {
        6 => Predicate::And(
            Box::new(random_pred(db, scope, rng, opts, depth, levels - 1)),
            Box::new(random_pred(db, scope, rng, opts, depth, levels - 1)),
        ),
        7 => Predicate::Or(
            Box::new(random_pred(db, scope, rng, opts, depth, levels - 1)),
            Box::new(random_pred(db, scope, rng, opts, depth, levels - 1)),
        ),
        8 => Predicate::Not(Box::new(random_pred(
            db,
            scope,
            rng,
            opts,
            depth,
            levels - 1,
        ))),
        _ => random_atom(db, scope, rng, opts, depth),
    }
}

/// One atomic predicate over a column in `scope`, valid for `db`. Public so
/// the estimator-monotonicity check can append conjuncts to an existing
/// query's scope.
pub fn random_atom(
    db: &Database,
    scope: &[String],
    rng: &mut StdRng,
    opts: &GenOptions,
    depth: usize,
) -> Predicate {
    let (col, dtype) = random_col(db, scope, rng);
    let subs = opts.allow_subqueries && depth == 0;
    match dtype {
        DataType::Text => match rng.random_range(0..10) {
            0..=3 => Predicate::Like {
                pattern: random_pattern(db, &col, rng),
                col,
            },
            4 if subs => Predicate::In {
                col,
                sub: Box::new(in_subquery(db, rng, opts, false)),
            },
            _ => Predicate::Cmp {
                col,
                op: random_op(rng),
                rhs: Rhs::Value(text_literal(db, rng)),
            },
        },
        _ => match rng.random_range(0..10) {
            0 if subs => Predicate::Cmp {
                col,
                op: random_op(rng),
                rhs: Rhs::Subquery(Box::new(scalar_subquery(db, rng, opts))),
            },
            1 if subs => Predicate::In {
                col,
                sub: Box::new(in_subquery(db, rng, opts, true)),
            },
            2 if subs => Predicate::Exists {
                sub: Box::new(random_select(db, rng, opts, depth + 1)),
            },
            _ => Predicate::Cmp {
                col: col.clone(),
                op: random_op(rng),
                rhs: Rhs::Value(column_literal(db, &col, dtype, rng, opts)),
            },
        },
    }
}

/// A single-aggregate, non-grouped subquery — scalar by construction.
fn scalar_subquery(db: &Database, rng: &mut StdRng, opts: &GenOptions) -> SelectQuery {
    let table = random_table(db, rng);
    let scope = vec![table.clone()];
    let (f, col) = random_agg(db, &scope, rng);
    let predicate = (rng.random_range(0..2) == 0).then(|| random_atom(db, &scope, rng, opts, 1));
    SelectQuery {
        from: FromClause {
            base: table,
            joins: Vec::new(),
        },
        select: vec![SelectItem::Agg(f, col)],
        predicate,
        group_by: Vec::new(),
        having: None,
        order_by: Vec::new(),
    }
}

/// A single-column subquery for `IN`, type-compatible with the probe side.
fn in_subquery(db: &Database, rng: &mut StdRng, opts: &GenOptions, numeric: bool) -> SelectQuery {
    // Aggregate subqueries project a Float, which is comparable with any
    // numeric probe column.
    if numeric && rng.random_range(0..5) == 0 {
        return scalar_subquery(db, rng, opts);
    }
    let candidates: Vec<(String, String)> = db
        .table_names()
        .iter()
        .flat_map(|t| {
            let schema = db.schema(t).expect("listed table");
            schema
                .columns
                .iter()
                .filter(|c| {
                    if numeric {
                        c.dtype.is_numeric()
                    } else {
                        c.dtype == DataType::Text
                    }
                })
                .map(|c| (t.to_string(), c.name.clone()))
                .collect::<Vec<_>>()
        })
        .collect();
    match candidates.get(rng.random_range(0..candidates.len().max(1))) {
        Some((table, column)) => {
            let scope = vec![table.clone()];
            let predicate =
                (rng.random_range(0..2) == 0).then(|| random_atom(db, &scope, rng, opts, 1));
            SelectQuery {
                from: FromClause {
                    base: table.clone(),
                    joins: Vec::new(),
                },
                select: vec![SelectItem::Column(ColRef::new(table, column))],
                predicate,
                group_by: Vec::new(),
                having: None,
                order_by: Vec::new(),
            }
        }
        // No column of the requested type anywhere (numeric always exists
        // via `id`; text may not) — fall back to a scalar aggregate.
        None => scalar_subquery(db, rng, opts),
    }
}

fn random_insert(db: &Database, rng: &mut StdRng, opts: &GenOptions) -> InsertStmt {
    let table = random_table(db, rng);
    let schema = db.schema(&table).expect("listed table");
    let values = schema
        .columns
        .iter()
        .map(|c| exact_literal(c.dtype, rng, opts))
        .collect();
    InsertStmt {
        table,
        source: InsertSource::Values(values),
    }
}

fn random_update(db: &Database, rng: &mut StdRng, opts: &GenOptions) -> UpdateStmt {
    let table = random_table(db, rng);
    let schema = db.schema(&table).expect("listed table");
    let mut sets = Vec::new();
    for _ in 0..rng.random_range(1..=2) {
        let c = &schema.columns[rng.random_range(0..schema.columns.len())];
        if sets.iter().any(|(n, _)| n == &c.name) {
            continue;
        }
        sets.push((c.name.clone(), exact_literal(c.dtype, rng, opts)));
    }
    let scope = vec![table.clone()];
    let predicate = (rng.random_range(0..10) < 7).then(|| random_pred(db, &scope, rng, opts, 0, 1));
    UpdateStmt {
        table,
        sets,
        predicate,
    }
}

fn random_delete(db: &Database, rng: &mut StdRng, opts: &GenOptions) -> DeleteStmt {
    let table = random_table(db, rng);
    let scope = vec![table.clone()];
    let predicate = (rng.random_range(0..10) < 6).then(|| random_pred(db, &scope, rng, opts, 0, 1));
    DeleteStmt { table, predicate }
}

// --- literals and small pickers ----------------------------------------

fn random_table(db: &Database, rng: &mut StdRng) -> String {
    let names = db.table_names();
    names[rng.random_range(0..names.len())].to_string()
}

fn random_col(db: &Database, scope: &[String], rng: &mut StdRng) -> (ColRef, DataType) {
    let table = &scope[rng.random_range(0..scope.len())];
    let schema = db.schema(table).expect("scope table");
    let c = &schema.columns[rng.random_range(0..schema.columns.len())];
    (ColRef::new(table, &c.name), c.dtype)
}

fn random_numeric_col(db: &Database, scope: &[String], rng: &mut StdRng) -> Option<ColRef> {
    let all: Vec<ColRef> = scope
        .iter()
        .flat_map(|t| {
            let schema = db.schema(t).expect("scope table");
            schema
                .columns
                .iter()
                .filter(|c| c.dtype.is_numeric())
                .map(|c| ColRef::new(t, &c.name))
                .collect::<Vec<_>>()
        })
        .collect();
    if all.is_empty() {
        None
    } else {
        Some(all[rng.random_range(0..all.len())].clone())
    }
}

fn random_op(rng: &mut StdRng) -> CmpOp {
    CmpOp::ALL[rng.random_range(0..CmpOp::ALL.len())]
}

/// A literal to compare against `col`: usually a real value from the column
/// (so predicates actually select something), otherwise a fresh one.
fn column_literal(
    db: &Database,
    col: &ColRef,
    dtype: DataType,
    rng: &mut StdRng,
    opts: &GenOptions,
) -> Value {
    if rng.random_range(0..20) == 0 {
        // NULL literal: valid against any column, never satisfied.
        return Value::Null;
    }
    let table = db.table(&col.table).expect("scope table");
    if rng.random_range(0..10) < 6 && table.row_count() > 0 {
        let cidx = table.schema.column_index(&col.column).expect("scope col");
        let v = table.columns[cidx].get(rng.random_range(0..table.row_count()));
        match v {
            Value::Float(f) if opts.parseable_literals && !on_grid(f) => {
                Value::Float(grid_float(rng))
            }
            v => v,
        }
    } else {
        exact_literal(dtype, rng, opts)
    }
}

fn on_grid(f: f64) -> bool {
    f.is_finite() && (f * 4.0).trunc() == f * 4.0 && f.abs() <= 1e6
}

/// A literal of exactly `dtype` (INSERT/UPDATE slots are type-strict).
fn exact_literal(dtype: DataType, rng: &mut StdRng, opts: &GenOptions) -> Value {
    match dtype {
        DataType::Int => Value::Int(rng.random_range(-60..60)),
        DataType::Float => {
            if !opts.parseable_literals && rng.random_range(0..12) == 0 {
                Value::Float(f64::NAN)
            } else {
                Value::Float(grid_float(rng))
            }
        }
        DataType::Text => Value::Text(random_text_value(rng)),
    }
}

fn numeric_literal(rng: &mut StdRng, opts: &GenOptions) -> Value {
    match rng.random_range(0..10) {
        0..=4 => Value::Int(rng.random_range(-30..30)),
        9 => Value::Null,
        _ => exact_literal(DataType::Float, rng, opts),
    }
}

fn text_literal(db: &Database, rng: &mut StdRng) -> Value {
    // Sample from any text column's data half the time.
    if rng.random_range(0..2) == 0 {
        for t in db.tables() {
            for (def, col) in t.schema.columns.iter().zip(&t.columns) {
                if def.dtype == DataType::Text && t.row_count() > 0 {
                    return col.get(rng.random_range(0..t.row_count()));
                }
            }
        }
    }
    Value::Text(random_text_value(rng))
}

fn random_text_value(rng: &mut StdRng) -> String {
    if rng.random_range(0..3) == 0 {
        HOSTILE_TEXTS[rng.random_range(0..HOSTILE_TEXTS.len())].to_string()
    } else {
        let len = rng.random_range(0..5);
        (0..len)
            .map(|_| (b'a' + rng.random_range(0..4u8)) as char)
            .collect()
    }
}

/// A LIKE pattern built by mutating a real value of `col`: wildcard
/// injection, escapes and truncation. Sizes are capped so the naive
/// exponential oracle stays fast.
fn random_pattern(db: &Database, col: &ColRef, rng: &mut StdRng) -> String {
    let table = db.table(&col.table).expect("scope table");
    let base: String = if rng.random_range(0..2) == 0 && table.row_count() > 0 {
        let cidx = table.schema.column_index(&col.column).expect("scope col");
        match table.columns[cidx].get(rng.random_range(0..table.row_count())) {
            Value::Text(s) => s,
            _ => String::new(),
        }
    } else {
        HOSTILE_TEXTS[rng.random_range(0..HOSTILE_TEXTS.len())].to_string()
    };

    let mut out = String::new();
    let mut wildcards = 0;
    for c in base.chars().take(8) {
        match rng.random_range(0..10) {
            0 | 1 if wildcards < 4 => {
                out.push('%');
                wildcards += 1;
            }
            2 if wildcards < 4 => {
                out.push('_');
                wildcards += 1;
            }
            3 => {
                out.push('\\');
                out.push(c);
            }
            _ => out.push(c),
        }
    }
    if rng.random_range(0..10) < 3 && wildcards < 4 {
        out.insert(0, '%');
        out.push('%');
    }
    out
}
