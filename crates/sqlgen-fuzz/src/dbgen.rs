//! Random small databases for differential testing.
//!
//! The executor/oracle comparison only needs a handful of rows to exercise
//! every code path, and small relations keep the naive nested-loop oracle
//! cheap. The generator deliberately over-samples degenerate shapes — empty
//! tables, constant columns, dangling foreign keys — and hostile values:
//! strings containing LIKE metacharacters, quotes and multi-byte text, plus
//! `-0.0` and `NaN` floats when the profile allows them.

use rand::rngs::StdRng;
use rand::Rng;
use sqlgen_storage::{ColumnDef, DataType, Database, Table, TableSchema, Value};

/// Strings chosen to stress quoting, LIKE metacharacters and UTF-8 paths.
pub const HOSTILE_TEXTS: &[&str] = &[
    "",
    "a",
    "ab",
    "50%",
    "a_b",
    "c:\\tmp",
    "o'clock",
    "''",
    "%%__",
    "\\",
    "na\u{ef}ve",
    "\u{7d50}\u{679c}\u{1F389}",
    "  spaced  ",
    "NULL",
];

/// Shape constraints for [`random_database`].
#[derive(Debug, Clone)]
pub struct DbProfile {
    pub min_rows: usize,
    pub max_rows: usize,
    /// Inject `NaN` and `-0.0` into float columns.
    pub hostile_floats: bool,
    /// Restrict float data to a small grid whose SQL rendering parses back
    /// to the identical value (quarters: `k / 4.0`). Round-trip fuzzing
    /// needs this; execution fuzzing does not.
    pub parseable_floats: bool,
}

impl Default for DbProfile {
    fn default() -> Self {
        DbProfile {
            min_rows: 0,
            max_rows: 25,
            hostile_floats: true,
            parseable_floats: false,
        }
    }
}

impl DbProfile {
    /// Every table non-empty and all values render/parse losslessly — the
    /// profile for round-trip and FSM-closure fuzzing.
    pub fn parseable() -> Self {
        DbProfile {
            min_rows: 1,
            max_rows: 20,
            hostile_floats: false,
            parseable_floats: true,
        }
    }
}

/// A float drawn from the quarter grid; its `to_sql` text re-parses exactly.
pub fn grid_float(rng: &mut StdRng) -> f64 {
    rng.random_range(-60..=60) as f64 / 4.0
}

fn random_float(rng: &mut StdRng, profile: &DbProfile) -> f64 {
    if profile.parseable_floats {
        return grid_float(rng);
    }
    match rng.random_range(0..10) {
        0 if profile.hostile_floats => f64::NAN,
        1 if profile.hostile_floats => -0.0,
        2 => 0.0,
        3 => 1e9,
        4 => -3.5,
        _ => rng.random_range(-400..400) as f64 / 8.0,
    }
}

fn random_text(rng: &mut StdRng) -> String {
    if rng.random_range(0..3) == 0 {
        HOSTILE_TEXTS[rng.random_range(0..HOSTILE_TEXTS.len())].to_string()
    } else {
        let len = rng.random_range(0..6);
        (0..len)
            .map(|_| (b'a' + rng.random_range(0..4u8)) as char)
            .collect()
    }
}

fn random_value(dtype: DataType, rng: &mut StdRng, profile: &DbProfile) -> Value {
    match dtype {
        // Small magnitudes: join/group hashing goes through f64 bits, which
        // is only lossless below 2^53, and small domains force collisions.
        DataType::Int => Value::Int(rng.random_range(-50..50)),
        DataType::Float => Value::Float(random_float(rng, profile)),
        DataType::Text => Value::Text(random_text(rng)),
    }
}

/// Generates a random 2–4 table database under `profile`. Deterministic
/// given the RNG state. Every table gets an `id` primary key; later tables
/// may carry a foreign key into an earlier table's `id`, with some values
/// deliberately dangling.
pub fn random_database(rng: &mut StdRng, profile: &DbProfile) -> Database {
    let n_tables = rng.random_range(2..=4);
    let mut db = Database::new();
    let mut built: Vec<(String, usize)> = Vec::new(); // (name, row count)

    for ti in 0..n_tables {
        let name = format!("t{ti}");
        let mut schema = TableSchema::new(&name)
            .with_column(ColumnDef::new("id", DataType::Int))
            .with_primary_key();

        let fk = if !built.is_empty() && rng.random_range(0..10) < 7 {
            let (parent, parent_rows) = built[rng.random_range(0..built.len())].clone();
            schema = schema
                .with_column(ColumnDef::new(format!("{parent}_id"), DataType::Int))
                .with_foreign_key(parent, "id");
            Some(parent_rows)
        } else {
            None
        };

        let n_extra = rng.random_range(1..=3);
        let mut extra_types = Vec::with_capacity(n_extra);
        for ci in 0..n_extra {
            let dtype = match rng.random_range(0..3) {
                0 => DataType::Int,
                1 => DataType::Float,
                _ => DataType::Text,
            };
            let def = if dtype == DataType::Text && rng.random_range(0..2) == 0 {
                ColumnDef::categorical(format!("c{ci}"), dtype)
            } else {
                ColumnDef::new(format!("c{ci}"), dtype)
            };
            schema = schema.with_column(def);
            extra_types.push(dtype);
        }

        let rows = if rng.random_range(0..4) == 0 {
            profile.min_rows
        } else {
            rng.random_range(profile.min_rows..=profile.max_rows)
        };
        // A constant column makes every predicate on it all-or-nothing.
        let constants: Vec<Option<Value>> = extra_types
            .iter()
            .map(|&t| (rng.random_range(0..7) == 0).then(|| random_value(t, rng, profile)))
            .collect();

        let mut table = Table::new(schema);
        for r in 0..rows {
            let mut row = vec![Value::Int(r as i64)];
            if let Some(parent_rows) = fk {
                // Mostly matching keys, some dangling on either side.
                let hi = parent_rows as i64 + 2;
                row.push(Value::Int(rng.random_range(-2..hi.max(1))));
            }
            for (ci, &t) in extra_types.iter().enumerate() {
                row.push(match &constants[ci] {
                    Some(v) => v.clone(),
                    None => random_value(t, rng, profile),
                });
            }
            table.push_row(row);
        }
        db.add_table(table);
        built.push((name, rows));
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generation_is_deterministic() {
        let a = random_database(&mut StdRng::seed_from_u64(7), &DbProfile::default());
        let b = random_database(&mut StdRng::seed_from_u64(7), &DbProfile::default());
        assert_eq!(a.table_names(), b.table_names());
        assert_eq!(a.total_rows(), b.total_rows());
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn parseable_profile_keeps_tables_nonempty_and_floats_on_grid() {
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let db = random_database(&mut rng, &DbProfile::parseable());
            for t in db.tables() {
                assert!(t.row_count() >= 1, "{} is empty", t.name());
                for col in &t.columns {
                    for r in 0..t.row_count() {
                        if let Value::Float(f) = col.get(r) {
                            assert_eq!(f * 4.0, (f * 4.0).trunc(), "off-grid float {f}");
                        }
                    }
                }
            }
        }
    }
}
