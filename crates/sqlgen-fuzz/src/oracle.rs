//! A naive reference implementation of query evaluation.
//!
//! The production executor hash-joins, pre-compiles predicates and indexes
//! columns; this oracle does none of that. It materializes joined tuples
//! with nested loops, evaluates predicates row by row and aggregates with
//! the same fold the executor uses, in the same tuple order — so float
//! results are bit-identical and cardinalities must agree exactly. Any
//! divergence is a bug in one of the two.
//!
//! Equality rules are mirrored deliberately: joins, `IN` and `GROUP BY` in
//! the executor go through a hashed normalization where `Int` and `Float`
//! share a key space, `-0.0` keys like `0.0`, and `NaN` matches nothing in
//! joins/`IN` but forms a single `GROUP BY` group.

use sqlgen_engine::{
    AggFunc, ColRef, InsertSource, Predicate, Rhs, SelectItem, SelectQuery, Statement,
};
use sqlgen_storage::{Database, Table, Value};

/// Oracle-side evaluation error (message only; the differential check only
/// compares *whether* the two sides fail, not the exact error).
pub type OracleError = String;

/// Cardinality by naive evaluation: result rows for `SELECT`, affected rows
/// for DML (dry run, like `Executor::cardinality`).
pub fn cardinality(db: &Database, stmt: &Statement) -> Result<u64, OracleError> {
    match stmt {
        Statement::Select(q) => Ok(select_rows(db, q)?.len() as u64),
        Statement::Insert(i) => match &i.source {
            InsertSource::Values(_) => {
                db.table(&i.table).ok_or("unknown table")?;
                Ok(1)
            }
            InsertSource::Query(q) => Ok(select_rows(db, q)?.len() as u64),
        },
        Statement::Update(u) => matching_count(db, &u.table, u.predicate.as_ref()),
        Statement::Delete(d) => matching_count(db, &d.table, d.predicate.as_ref()),
    }
}

/// Fully materialized `SELECT` result (unordered; `ORDER BY` never changes
/// the row multiset).
pub fn select_rows(db: &Database, q: &SelectQuery) -> Result<Vec<Vec<Value>>, OracleError> {
    let table_names = q.from.tables();
    let tables: Vec<&Table> = table_names
        .iter()
        .map(|t| db.table(t).ok_or_else(|| format!("unknown table {t}")))
        .collect::<Result<_, _>>()?;

    // Nested-loop join in the executor's tuple order: base rows ascending,
    // each join appending matching right rows ascending.
    let mut tuples: Vec<Vec<usize>> = (0..tables[0].row_count()).map(|i| vec![i]).collect();
    for (join_no, join) in q.from.joins.iter().enumerate() {
        let right_slot = join_no + 1;
        let left_slot = table_names[..right_slot]
            .iter()
            .position(|t| *t == join.left.table)
            .ok_or("join left table not in scope")?;
        let left_col = column_of(tables[left_slot], &join.left.column)?;
        let right_col = column_of(tables[right_slot], &join.right.column)?;
        let mut next = Vec::new();
        for t in &tuples {
            let lv = left_col.get(t[left_slot]);
            for r in 0..tables[right_slot].row_count() {
                if eq_vals(&lv, &right_col.get(r)) {
                    let mut nt = t.clone();
                    nt.push(r);
                    next.push(nt);
                }
            }
        }
        tuples = next;
    }

    // Subqueries evaluate once per query, before any row is filtered — the
    // executor compiles them eagerly, so e.g. a non-scalar subquery errors
    // even under a short-circuiting OR.
    let pred = match &q.predicate {
        Some(p) => Some(compile(db, p, &table_names)?),
        None => None,
    };
    let kept: Vec<&Vec<usize>> = tuples
        .iter()
        .filter(|t| pred.as_ref().is_none_or(|p| eval(p, t, &tables)))
        .collect();

    if q.is_aggregate() {
        aggregate(db, q, &table_names, &tables, &kept)
    } else {
        let items = resolve_items(q, &table_names, &tables)?;
        Ok(kept
            .iter()
            .map(|t| {
                items
                    .iter()
                    .map(|&(slot, c)| tables[slot].columns[c].get(t[slot]))
                    .collect()
            })
            .collect())
    }
}

fn matching_count(
    db: &Database,
    table: &str,
    pred: Option<&Predicate>,
) -> Result<u64, OracleError> {
    let t = db
        .table(table)
        .ok_or_else(|| format!("unknown table {table}"))?;
    let names = [table];
    let compiled = match pred {
        Some(p) => Some(compile(db, p, &names)?),
        None => None,
    };
    let tables = vec![t];
    let mut n = 0;
    for row in 0..t.row_count() {
        let tup = vec![row];
        if compiled.as_ref().is_none_or(|p| eval(p, &tup, &tables)) {
            n += 1;
        }
    }
    Ok(n)
}

// --- value equality ------------------------------------------------------

/// Numeric key bits, mirroring the executor's hashed normalization.
/// `None` for NaN (equal to nothing) and for non-numeric values.
fn num_bits(v: &Value) -> Option<u64> {
    match v {
        Value::Int(i) => Some((*i as f64).to_bits()),
        Value::Float(f) if f.is_nan() => None,
        Value::Float(f) => Some(if *f == 0.0 { 0.0f64 } else { *f }.to_bits()),
        _ => None,
    }
}

/// Join/`IN` equality: the relation induced by the executor's hash keys.
fn eq_vals(a: &Value, b: &Value) -> bool {
    if let (Some(x), Some(y)) = (num_bits(a), num_bits(b)) {
        return x == y;
    }
    match (a, b) {
        (Value::Text(x), Value::Text(y)) => x == y,
        (Value::Null, Value::Null) => true,
        _ => false,
    }
}

/// `GROUP BY` key, where (unlike joins) every NaN lands in one group.
#[derive(PartialEq)]
enum GroupKey {
    Null,
    Num(u64),
    Text(String),
}

fn group_key(v: &Value) -> GroupKey {
    match v {
        Value::Null => GroupKey::Null,
        Value::Text(s) => GroupKey::Text(s.clone()),
        Value::Int(_) | Value::Float(_) => match num_bits(v) {
            Some(bits) => GroupKey::Num(bits),
            None => GroupKey::Num(f64::NAN.to_bits()),
        },
    }
}

// --- predicates ----------------------------------------------------------

enum OPred {
    Cmp {
        slot: usize,
        col: usize,
        op: sqlgen_engine::CmpOp,
        value: Option<Value>,
    },
    In {
        slot: usize,
        col: usize,
        set: Vec<Value>,
    },
    Like {
        slot: usize,
        col: usize,
        pattern: String,
    },
    Const(bool),
    Not(Box<OPred>),
    And(Box<OPred>, Box<OPred>),
    Or(Box<OPred>, Box<OPred>),
}

fn compile(db: &Database, p: &Predicate, tables: &[&str]) -> Result<OPred, OracleError> {
    Ok(match p {
        Predicate::Cmp { col, op, rhs } => {
            let (slot, cidx) = resolve(db, col, tables)?;
            let value = match rhs {
                Rhs::Value(v) => Some(v.clone()),
                Rhs::Subquery(sub) => scalar(db, sub)?,
            };
            OPred::Cmp {
                slot,
                col: cidx,
                op: *op,
                value,
            }
        }
        Predicate::In { col, sub } => {
            let (slot, cidx) = resolve(db, col, tables)?;
            let rows = select_rows(db, sub)?;
            let mut set = Vec::new();
            for row in rows {
                if row.len() != 1 {
                    return Err("subquery must return a single column".into());
                }
                set.push(row.into_iter().next().expect("checked len"));
            }
            OPred::In {
                slot,
                col: cidx,
                set,
            }
        }
        Predicate::Like { col, pattern } => {
            let (slot, cidx) = resolve(db, col, tables)?;
            OPred::Like {
                slot,
                col: cidx,
                pattern: pattern.clone(),
            }
        }
        Predicate::Exists { sub } => OPred::Const(!select_rows(db, sub)?.is_empty()),
        Predicate::Not(inner) => OPred::Not(Box::new(compile(db, inner, tables)?)),
        Predicate::And(a, b) => OPred::And(
            Box::new(compile(db, a, tables)?),
            Box::new(compile(db, b, tables)?),
        ),
        Predicate::Or(a, b) => OPred::Or(
            Box::new(compile(db, a, tables)?),
            Box::new(compile(db, b, tables)?),
        ),
    })
}

fn scalar(db: &Database, sub: &SelectQuery) -> Result<Option<Value>, OracleError> {
    let rows = select_rows(db, sub)?;
    if rows.is_empty() {
        return Ok(None); // SQL NULL
    }
    if rows.len() > 1 {
        return Err("scalar subquery returned more than one row".into());
    }
    if rows[0].len() != 1 {
        return Err("subquery must return a single column".into());
    }
    Ok(Some(rows[0][0].clone()))
}

fn eval(p: &OPred, tuple: &[usize], tables: &[&Table]) -> bool {
    match p {
        OPred::Cmp {
            slot,
            col,
            op,
            value,
        } => match value {
            Some(v) => {
                let lhs = tables[*slot].columns[*col].get(tuple[*slot]);
                op.eval(lhs.try_cmp(v))
            }
            None => false,
        },
        OPred::In { slot, col, set } => {
            let lhs = tables[*slot].columns[*col].get(tuple[*slot]);
            set.iter().any(|v| eq_vals(&lhs, v))
        }
        OPred::Like { slot, col, pattern } => match tables[*slot].columns[*col].get(tuple[*slot]) {
            Value::Text(s) => like_oracle(pattern, &s),
            _ => false,
        },
        OPred::Const(b) => *b,
        OPred::Not(inner) => !eval(inner, tuple, tables),
        OPred::And(a, b) => eval(a, tuple, tables) && eval(b, tuple, tables),
        OPred::Or(a, b) => eval(a, tuple, tables) || eval(b, tuple, tables),
    }
}

// --- projection / aggregation -------------------------------------------

fn aggregate(
    db: &Database,
    q: &SelectQuery,
    table_names: &[&str],
    tables: &[&Table],
    kept: &[&Vec<usize>],
) -> Result<Vec<Vec<Value>>, OracleError> {
    let group_cols: Vec<(usize, usize)> = q
        .group_by
        .iter()
        .map(|c| resolve(db, c, table_names))
        .collect::<Result<_, _>>()?;

    // Insertion-ordered grouping; members stay in kept order so aggregate
    // folds visit values exactly as the executor does.
    let mut groups: Vec<(Vec<GroupKey>, Vec<&Vec<usize>>)> = Vec::new();
    if group_cols.is_empty() {
        groups.push((Vec::new(), kept.to_vec()));
    } else {
        for t in kept {
            let key: Vec<GroupKey> = group_cols
                .iter()
                .map(|&(slot, c)| group_key(&tables[slot].columns[c].get(t[slot])))
                .collect();
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(t),
                None => groups.push((key, vec![t])),
            }
        }
    }

    let having = match &q.having {
        Some(h) => {
            let (slot, col) = resolve(db, &h.col, table_names)?;
            let value = match &h.rhs {
                Rhs::Value(v) => Some(v.clone()),
                Rhs::Subquery(sub) => scalar(db, sub)?,
            };
            Some((h.agg, slot, col, h.op, value))
        }
        None => None,
    };

    let mut rows = Vec::new();
    for (_key, members) in &groups {
        if let Some((agg, slot, col, op, rhs)) = &having {
            let v = compute_agg(*agg, *slot, *col, members, tables)?;
            let pass = match rhs {
                Some(r) => op.eval(v.try_cmp(r)),
                None => false,
            };
            if !pass {
                continue;
            }
        }
        let mut row = Vec::with_capacity(q.select.len());
        for item in &q.select {
            let (slot, col) = resolve(db, item.col_ref(), table_names)?;
            row.push(match item {
                SelectItem::Agg(f, _) => compute_agg(*f, slot, col, members, tables)?,
                SelectItem::Column(_) => members
                    .first()
                    .map(|t| tables[slot].columns[col].get(t[slot]))
                    .unwrap_or(Value::Null),
            });
        }
        rows.push(row);
    }
    Ok(rows)
}

/// Same fold, same order as the executor's `compute_agg`, so float sums are
/// bit-identical.
fn compute_agg(
    f: AggFunc,
    slot: usize,
    col: usize,
    members: &[&Vec<usize>],
    tables: &[&Table],
) -> Result<Value, OracleError> {
    if f == AggFunc::Count {
        return Ok(Value::Int(members.len() as i64));
    }
    let mut acc: Option<f64> = None;
    let mut sum = 0.0;
    for t in members {
        let v = tables[slot].columns[col].get(t[slot]);
        let x = v
            .as_f64()
            .ok_or_else(|| format!("{} over non-numeric column", f.name()))?;
        sum += x;
        acc = Some(match (acc, f) {
            (None, _) => x,
            (Some(a), AggFunc::Max) => a.max(x),
            (Some(a), AggFunc::Min) => a.min(x),
            (Some(a), _) => a,
        });
    }
    let n = members.len();
    Ok(match f {
        AggFunc::Count => unreachable!("handled above"),
        AggFunc::Max | AggFunc::Min => acc.map(Value::Float).unwrap_or(Value::Null),
        AggFunc::Sum if n == 0 => Value::Null,
        AggFunc::Sum => Value::Float(sum),
        AggFunc::Avg if n == 0 => Value::Null,
        AggFunc::Avg => Value::Float(sum / n as f64),
    })
}

fn resolve(db: &Database, col: &ColRef, tables: &[&str]) -> Result<(usize, usize), OracleError> {
    let slot = tables
        .iter()
        .position(|t| *t == col.table)
        .ok_or_else(|| format!("table {} not in scope", col.table))?;
    let cidx = db
        .schema(&col.table)
        .and_then(|s| s.column_index(&col.column))
        .ok_or_else(|| format!("unknown column {col}"))?;
    Ok((slot, cidx))
}

fn resolve_items(
    q: &SelectQuery,
    table_names: &[&str],
    tables: &[&Table],
) -> Result<Vec<(usize, usize)>, OracleError> {
    if q.select.is_empty() {
        // SELECT *
        let mut out = Vec::new();
        for (slot, t) in tables.iter().enumerate() {
            for c in 0..t.schema.columns.len() {
                out.push((slot, c));
            }
        }
        return Ok(out);
    }
    q.select
        .iter()
        .map(|item| {
            let col = item.col_ref();
            let slot = table_names
                .iter()
                .position(|t| *t == col.table)
                .ok_or_else(|| format!("table {} not in scope", col.table))?;
            let cidx = tables[slot]
                .schema
                .column_index(&col.column)
                .ok_or_else(|| format!("unknown column {col}"))?;
            Ok((slot, cidx))
        })
        .collect()
}

fn column_of<'a>(table: &'a Table, name: &str) -> Result<&'a sqlgen_storage::Column, OracleError> {
    table
        .column(name)
        .ok_or_else(|| format!("unknown column {}.{}", table.name(), name))
}

// --- LIKE ----------------------------------------------------------------

/// Naive recursive `LIKE` matcher, escape-aware: `\x` matches `x` literally
/// (a trailing lone `\` matches itself), `%` any run, `_` one char.
/// Exponential in the worst case — fine for fuzz-sized inputs — and written
/// independently of the iterative production matcher it cross-checks.
pub fn like_oracle(pattern: &str, text: &str) -> bool {
    #[derive(Clone, Copy)]
    enum Tok {
        Lit(char),
        One,
        Any,
    }
    let mut toks = Vec::new();
    let mut it = pattern.chars();
    while let Some(c) = it.next() {
        toks.push(match c {
            '\\' => Tok::Lit(it.next().unwrap_or('\\')),
            '%' => Tok::Any,
            '_' => Tok::One,
            c => Tok::Lit(c),
        });
    }
    let text: Vec<char> = text.chars().collect();

    fn rec(p: &[Tok], t: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some(Tok::Any) => rec(&p[1..], t) || (!t.is_empty() && rec(p, &t[1..])),
            Some(Tok::One) => !t.is_empty() && rec(&p[1..], &t[1..]),
            Some(Tok::Lit(c)) => t.first() == Some(c) && rec(&p[1..], &t[1..]),
        }
    }
    rec(&toks, &text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_oracle_basics() {
        assert!(like_oracle("a%", "abc"));
        assert!(like_oracle("%b%", "abc"));
        assert!(like_oracle("a_c", "abc"));
        assert!(!like_oracle("a_c", "abxc"));
        assert!(like_oracle("", ""));
        assert!(!like_oracle("", "x"));
        assert!(like_oracle("%%", ""));
    }

    #[test]
    fn like_oracle_escapes() {
        assert!(like_oracle(r"50\%", "50%"));
        assert!(!like_oracle(r"50\%", "500"));
        assert!(like_oracle(r"a\_b", "a_b"));
        assert!(!like_oracle(r"a\_b", "axb"));
        assert!(like_oracle(r"c:\\tmp", r"c:\tmp"));
        assert!(like_oracle("ab\\", "ab\\"));
    }

    #[test]
    fn nan_matches_nothing_but_groups_once() {
        let nan = Value::Float(f64::NAN);
        assert!(!eq_vals(&nan, &nan));
        assert!(!eq_vals(&nan, &Value::Float(1.0)));
        assert!(group_key(&nan) == group_key(&Value::Float(f64::NAN)));
        assert!(eq_vals(&Value::Float(-0.0), &Value::Float(0.0)));
        assert!(eq_vals(&Value::Int(3), &Value::Float(3.0)));
    }
}
