//! Differential fuzzing and invariant harness for the SQL substrate.
//!
//! The generation pipeline (FSM → render → parse → validate → execute →
//! estimate) has many independently implemented components that must agree
//! with each other. This crate stress-tests those agreements with twelve
//! invariant families over randomly generated schemas, data and statements:
//!
//! * **round-trip** — `parse(render(ast)) == ast`, rendering is a fixpoint,
//! * **estimator** — cardinality/cost estimates finite and non-negative,
//!   selectivities in `[0, 1]`, conjuncts never raise estimates,
//! * **differential** — `Executor::cardinality` matches a naive
//!   nested-loop oracle; `like_match` matches a naive recursive matcher,
//! * **fsm-closure** — every masked rollout parses, validates, executes,
//! * **nn-numerics** — softmax/sampling/argmax survive non-finite logits,
//! * **batch-equivalence** — batched lockstep generation at B∈{2,4,8}
//!   yields per-lane token streams identical to serial runs with the same
//!   lane seeds, and every emitted query passes the fsm-closure checks,
//! * **serve-equivalence** — dynamic-batcher windows produce episodes
//!   bitwise-identical to each request served alone, and the HTTP parser
//!   survives truncated/oversized/hostile bytes with correct 400/413,
//! * **trace-header** — the `traceparent`/`X-Request-Id` parser survives
//!   hostile bytes without panicking, rejects malformed headers, and any
//!   accepted or minted identity echoes as a canonical header,
//! * **quant-error** — int8 per-output-channel quantization honors its
//!   theoretical error envelope on random weights and hostile activation
//!   magnitudes (NaN/±inf excluded), and masked argmax over quantized
//!   logits agrees with f32 argmax on ≥99% of decisive trials (f32
//!   margin beyond the summed row error bounds), with non-decisive flips
//!   bounded by the error envelope,
//! * **refine-validity** — every step of constraint-miss refinement
//!   (DESIGN.md §12) parses, re-renders to a fixpoint, validates, and
//!   executes; accepted-step rewards strictly increase toward the
//!   constraint interval; an accepted result satisfies the constraint and
//!   re-measures bit-identically; the search is deterministic,
//! * **cache-equivalence** — the sharded LRU result cache behaves as a
//!   pure map under random interleavings; under eviction a hit is always
//!   the exact last body for that key and held bytes stay within budget;
//!   a cached response body is bitwise identical to fresh generation at a
//!   different batch width; keys ignore `timeout_ms` but miss on seed or
//!   model-version changes (hot-swap invalidation),
//! * **paged-equivalence** — a random database saved as a paged image and
//!   read back through a minimum-size (two-frame, constantly evicting)
//!   buffer pool is bitwise-identical to the in-memory original: schemas,
//!   every cell, cursor scans, and executor cardinalities on random
//!   statements; a deliberately damaged file (torn final page or a random
//!   byte flip) must be rejected by the checksummed open/verify path.
//!
//! Everything is deterministic: case `i` of a run with seed `s` derives its
//! own RNG from `s ^ (i + 1) * GOLDEN`, so any failure reproduces from the
//! printed case seed alone (`fuzz_smoke --family <f> --case-seed <hex>`).
//! Failing statements are shrunk greedily to a minimal reproduction.

pub mod astgen;
pub mod dbgen;
pub mod invariants;
pub mod oracle;
pub mod shrink;

pub use astgen::GenOptions;
pub use dbgen::DbProfile;
pub use invariants::CheckFail;

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Mix constant for per-case seeds (the 64-bit golden ratio, as used by
/// splitmix64).
pub const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// The twelve invariant families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    Roundtrip,
    Estimator,
    Differential,
    FsmClosure,
    NnNumerics,
    BatchEquivalence,
    ServeEquivalence,
    TraceHeader,
    QuantError,
    RefineValidity,
    CacheEquivalence,
    PagedEquivalence,
}

impl Family {
    pub const ALL: [Family; 12] = [
        Family::Roundtrip,
        Family::Estimator,
        Family::Differential,
        Family::FsmClosure,
        Family::NnNumerics,
        Family::BatchEquivalence,
        Family::ServeEquivalence,
        Family::TraceHeader,
        Family::QuantError,
        Family::RefineValidity,
        Family::CacheEquivalence,
        Family::PagedEquivalence,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Family::Roundtrip => "roundtrip",
            Family::Estimator => "estimator",
            Family::Differential => "differential",
            Family::FsmClosure => "fsm-closure",
            Family::NnNumerics => "nn-numerics",
            Family::BatchEquivalence => "batch-equivalence",
            Family::ServeEquivalence => "serve-equivalence",
            Family::TraceHeader => "trace-header",
            Family::QuantError => "quant-error",
            Family::RefineValidity => "refine-validity",
            Family::CacheEquivalence => "cache-equivalence",
            Family::PagedEquivalence => "paged-equivalence",
        }
    }

    pub fn from_name(name: &str) -> Option<Family> {
        Family::ALL.iter().copied().find(|f| f.name() == name)
    }

    fn index(self) -> usize {
        Family::ALL.iter().position(|f| *f == self).expect("listed")
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of cases; family `i % ALL.len()` runs on case `i`, so a
    /// multiple of the family count exercises all families equally.
    pub iters: u64,
    pub seed: u64,
    /// Stop after this many failures (shrinking is not free).
    pub max_failures: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            iters: 500,
            seed: 0,
            max_failures: 5,
        }
    }
}

/// One recorded invariant violation.
#[derive(Debug, Clone)]
pub struct Failure {
    pub family: Family,
    pub iter: u64,
    /// Seed that reproduces this exact case in isolation.
    pub case_seed: u64,
    pub detail: String,
    pub sql: Option<String>,
    pub shrunk_sql: Option<String>,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] case {} (seed {:#x}): {}",
            self.family, self.iter, self.case_seed, self.detail
        )?;
        if let Some(sql) = &self.sql {
            write!(f, "\n  sql:    {sql}")?;
        }
        if let Some(sql) = &self.shrunk_sql {
            write!(f, "\n  shrunk: {sql}")?;
        }
        Ok(())
    }
}

/// Outcome of a fuzzing run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    pub iters_run: u64,
    /// Total individual assertions that passed.
    pub checks: u64,
    /// Passed assertions per family, indexed like [`Family::ALL`].
    pub checks_per_family: [u64; 12],
    pub failures: Vec<Failure>,
}

impl FuzzReport {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    pub fn summary(&self) -> String {
        let per: Vec<String> = Family::ALL
            .iter()
            .map(|f| format!("{}={}", f.name(), self.checks_per_family[f.index()]))
            .collect();
        format!(
            "{} cases, {} checks ({}), {} failure(s)",
            self.iters_run,
            self.checks,
            per.join(" "),
            self.failures.len()
        )
    }
}

/// The per-case seed for case `iter` of a run seeded with `seed`.
pub fn case_seed(seed: u64, iter: u64) -> u64 {
    seed ^ (iter + 1).wrapping_mul(GOLDEN)
}

/// Runs one case of `family` from an explicit case seed (reproduction
/// entry point).
pub fn run_case(family: Family, case_seed: u64) -> Result<u64, CheckFail> {
    let mut rng = StdRng::seed_from_u64(case_seed);
    match family {
        Family::Roundtrip => invariants::check_roundtrip(&mut rng),
        Family::Estimator => invariants::check_estimator(&mut rng),
        Family::Differential => invariants::check_differential(&mut rng),
        Family::FsmClosure => invariants::check_fsm_closure(&mut rng),
        Family::NnNumerics => invariants::check_nn_numerics(&mut rng),
        Family::BatchEquivalence => invariants::check_batch_equivalence(&mut rng),
        Family::ServeEquivalence => invariants::check_serve_equivalence(&mut rng),
        Family::TraceHeader => invariants::check_trace_header(&mut rng),
        Family::QuantError => invariants::check_quant_error(&mut rng),
        Family::RefineValidity => invariants::check_refine_validity(&mut rng),
        Family::CacheEquivalence => invariants::check_cache_equivalence(&mut rng),
        Family::PagedEquivalence => invariants::check_paged_equivalence(&mut rng),
    }
}

/// Runs the harness: `cfg.iters` cases, rotating through the families.
pub fn run(cfg: &FuzzConfig) -> FuzzReport {
    run_with(cfg, &Family::ALL)
}

/// Runs the harness over a chosen subset of families (e.g. a whole budget
/// on one family via `fuzz_smoke --family <f>`), rotating through them.
pub fn run_with(cfg: &FuzzConfig, families: &[Family]) -> FuzzReport {
    assert!(!families.is_empty(), "at least one family required");
    let mut report = FuzzReport::default();
    for iter in 0..cfg.iters {
        let family = families[(iter % families.len() as u64) as usize];
        let seed = case_seed(cfg.seed, iter);
        report.iters_run += 1;
        match run_case(family, seed) {
            Ok(checks) => {
                report.checks += checks;
                report.checks_per_family[family.index()] += checks;
            }
            Err(fail) => {
                report.failures.push(Failure {
                    family,
                    iter,
                    case_seed: seed,
                    detail: fail.detail,
                    sql: fail.sql,
                    shrunk_sql: fail.shrunk_sql,
                });
                if report.failures.len() >= cfg.max_failures {
                    break;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlgen_engine::{parse, Executor};
    use sqlgen_storage::{ColumnDef, DataType, Database, Table, TableSchema, Value};

    /// The library's own smoke test: a short run across all families must
    /// come back clean. (CI runs a longer budget via `fuzz_smoke`.)
    #[test]
    fn short_run_is_clean() {
        let report = run(&FuzzConfig {
            iters: 100,
            seed: 0xF0222,
            max_failures: 3,
        });
        for f in &report.failures {
            eprintln!("{f}");
        }
        assert!(report.ok(), "{}", report.summary());
        assert_eq!(report.iters_run, 100);
        for (i, f) in Family::ALL.iter().enumerate() {
            assert!(
                report.checks_per_family[i] > 0,
                "family {} never checked anything",
                f.name()
            );
        }
    }

    #[test]
    fn case_seeds_are_distinct_and_deterministic() {
        assert_eq!(case_seed(7, 3), case_seed(7, 3));
        assert_ne!(case_seed(7, 3), case_seed(7, 4));
        assert_ne!(case_seed(7, 3), case_seed(8, 3));
    }

    fn students_scores() -> Database {
        let mut db = Database::new();
        let mut students = Table::new(
            TableSchema::new("students")
                .with_column(ColumnDef::new("id", DataType::Int))
                .with_primary_key()
                .with_column(ColumnDef::new("age", DataType::Int))
                .with_column(ColumnDef::new("name", DataType::Text)),
        );
        for i in 0..8 {
            students.push_row(vec![
                Value::Int(i),
                Value::Int(18 + (i % 4)),
                Value::Text(format!("s{}%", i % 3)),
            ]);
        }
        let mut scores = Table::new(
            TableSchema::new("scores")
                .with_column(ColumnDef::new("sid", DataType::Int))
                .with_foreign_key("students", "id")
                .with_column(ColumnDef::new("points", DataType::Float)),
        );
        for i in 0..16 {
            scores.push_row(vec![
                Value::Int(i % 9), // one dangling key
                Value::Float(if i == 5 { f64::NAN } else { 50.0 + i as f64 }),
            ]);
        }
        db.add_table(students);
        db.add_table(scores);
        db
    }

    /// The oracle agrees with the executor on handcrafted statements that
    /// hit joins, grouping, HAVING, IN, LIKE and NaN data.
    #[test]
    fn oracle_matches_executor_on_known_queries() {
        let db = students_scores();
        let ex = Executor::new(&db);
        for sql in [
            "SELECT students.id FROM students",
            "SELECT * FROM students",
            "SELECT students.id FROM students WHERE students.age < 20",
            "SELECT scores.points FROM scores JOIN students ON scores.sid = students.id",
            "SELECT students.age, COUNT(students.id) FROM students GROUP BY students.age",
            "SELECT students.age FROM students GROUP BY students.age \
             HAVING SUM(students.id) > 5.0",
            "SELECT SUM(scores.points) FROM scores",
            "SELECT students.id FROM students WHERE students.id IN \
             (SELECT scores.sid FROM scores WHERE scores.points > 55.0)",
            "SELECT students.name FROM students WHERE students.name LIKE 's1%'",
            "SELECT students.name FROM students WHERE students.name LIKE 's1\\%'",
            "SELECT students.id FROM students WHERE students.age > \
             (SELECT AVG(students.age) FROM students)",
            "DELETE FROM scores WHERE scores.points < 60.0",
            "UPDATE students SET age = 21 WHERE students.age = 19",
            "INSERT INTO students VALUES (99, 30, 'zz')",
        ] {
            let stmt = parse(sql).unwrap();
            let got = ex.cardinality(&stmt).expect(sql);
            let want = oracle::cardinality(&db, &stmt).expect(sql);
            assert_eq!(got, want, "{sql}");
        }
    }
}
